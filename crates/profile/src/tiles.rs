//! Tiling of lowered weight matrices into k×n PE-array residencies.

use tempus_models::QuantizedLayer;

/// One k×n tile of quantized weights (edge tiles may be smaller).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tile {
    /// Rows actually present (≤ k).
    pub rows: usize,
    /// Columns actually present (≤ n).
    pub cols: usize,
    /// Capacity of the full tile (k × n lanes).
    pub capacity: usize,
    /// The weights, row-major, `rows × cols` entries.
    pub weights: Vec<i8>,
}

impl Tile {
    /// Largest weight magnitude in the tile — what bottlenecks the tub
    /// array window.
    #[must_use]
    pub fn max_magnitude(&self) -> u32 {
        self.weights
            .iter()
            .map(|w| u32::from(w.unsigned_abs()))
            .max()
            .unwrap_or(0)
    }

    /// Window length in cycles under 2s-unary encoding.
    #[must_use]
    pub fn latency_cycles(&self) -> u32 {
        self.max_magnitude().div_ceil(2)
    }

    /// Silent PEs: zero weights plus lanes left unmapped by an edge
    /// tile (both stay clock-gated for the whole window).
    #[must_use]
    pub fn silent_pes(&self) -> usize {
        let zeros = self.weights.iter().filter(|&&w| w == 0).count();
        zeros + (self.capacity - self.weights.len())
    }

    /// `true` when the tile maps fewer weights than lanes.
    #[must_use]
    pub fn is_partial(&self) -> bool {
        self.weights.len() < self.capacity
    }
}

/// Iterates the k×n tiles of a layer's lowered weight matrix,
/// row-major over the tile grid.
pub fn layer_tiles<'a>(
    layer: &'a QuantizedLayer,
    k: usize,
    n: usize,
) -> impl Iterator<Item = Tile> + 'a {
    assert!(k > 0 && n > 0, "tile dimensions must be nonzero");
    let (rows, cols) = layer.lowered_dims();
    let tile_rows = rows.div_ceil(k);
    let tile_cols = cols.div_ceil(n);
    (0..tile_rows * tile_cols).map(move |t| {
        let tr = t / tile_cols;
        let tc = t % tile_cols;
        let r0 = tr * k;
        let c0 = tc * n;
        let r1 = (r0 + k).min(rows);
        let c1 = (c0 + n).min(cols);
        let mut weights = Vec::with_capacity((r1 - r0) * (c1 - c0));
        for r in r0..r1 {
            for c in c0..c1 {
                weights.push(layer.get(r, c));
            }
        }
        Tile {
            rows: r1 - r0,
            cols: c1 - c0,
            capacity: k * n,
            weights,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempus_models::ConvLayerSpec;

    fn layer(rows: usize, cols_channels: usize, f: impl Fn(usize) -> i8) -> QuantizedLayer {
        let spec = ConvLayerSpec::new("t", rows, cols_channels, 1, 1, 1);
        let count = spec.weight_count();
        QuantizedLayer {
            spec,
            weights: (0..count).map(f).collect(),
        }
    }

    #[test]
    fn exact_tiling_covers_all_weights() {
        let l = layer(32, 32, |i| (i % 100) as i8);
        let tiles: Vec<Tile> = layer_tiles(&l, 16, 16).collect();
        assert_eq!(tiles.len(), 4);
        assert!(tiles.iter().all(|t| !t.is_partial()));
        let total: usize = tiles.iter().map(|t| t.weights.len()).sum();
        assert_eq!(total, 32 * 32);
    }

    #[test]
    fn partial_edge_tiles() {
        let l = layer(20, 18, |_| 1);
        let tiles: Vec<Tile> = layer_tiles(&l, 16, 16).collect();
        assert_eq!(tiles.len(), 4);
        assert_eq!(tiles[0].weights.len(), 256);
        assert_eq!(tiles[1].weights.len(), 16 * 2);
        assert_eq!(tiles[3].weights.len(), 4 * 2);
        assert!(tiles[3].is_partial());
        // Unmapped lanes count as silent.
        assert_eq!(tiles[3].silent_pes(), 256 - 8);
    }

    #[test]
    fn tile_max_and_latency() {
        let l = layer(16, 16, |i| if i == 37 { -128i8 } else { 3 });
        let t: Vec<Tile> = layer_tiles(&l, 16, 16).collect();
        assert_eq!(t[0].max_magnitude(), 128);
        assert_eq!(t[0].latency_cycles(), 64);
    }

    #[test]
    fn silent_pes_count_zeros() {
        let l = layer(16, 16, |i| if i % 4 == 0 { 0 } else { 5 });
        let t: Vec<Tile> = layer_tiles(&l, 16, 16).collect();
        assert_eq!(t[0].silent_pes(), 64);
    }

    #[test]
    fn all_zero_tile_has_zero_latency() {
        let l = layer(16, 16, |_| 0);
        let t: Vec<Tile> = layer_tiles(&l, 16, 16).collect();
        assert_eq!(t[0].latency_cycles(), 0);
    }
}
