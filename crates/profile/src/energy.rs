//! §V-C: workload-dependent energy evaluation.
//!
//! Energy per 16×16 array window: the binary array produces its k
//! partial sums in one 4 ns cycle; the tub array runs for the profiled
//! average window. `E = P · cycles · 4 ns` (1 mW · 1 ns = 1 pJ).

use tempus_arith::IntPrecision;
use tempus_hwmodel::{Family, SynthModel};

/// Energy comparison for one workload at one precision.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadEnergy {
    /// Workload (model) name.
    pub workload: String,
    /// Precision evaluated.
    pub precision: IntPrecision,
    /// Average tub window in cycles (1 for the binary array).
    pub tub_cycles: f64,
    /// Binary 16×16 array power in mW.
    pub binary_power_mw: f64,
    /// tub 16×16 array power in mW.
    pub tub_power_mw: f64,
    /// Binary energy per window in pJ.
    pub binary_energy_pj: f64,
    /// tub energy per window in pJ.
    pub tub_energy_pj: f64,
}

impl WorkloadEnergy {
    /// Energy gap `tub / binary` — the paper reports 11.7× at INT8
    /// shrinking to 2.3× at INT4.
    #[must_use]
    pub fn energy_gap(&self) -> f64 {
        self.tub_energy_pj / self.binary_energy_pj
    }
}

/// Clock period at the paper's 250 MHz evaluation clock.
const PERIOD_NS: f64 = 4.0;

/// Evaluates the energy comparison for a workload whose profiled
/// average window is `tub_cycles` (from
/// [`crate::magnitude::MagnitudeProfile::average_latency_cycles`]).
#[must_use]
pub fn evaluate(
    hw: &SynthModel,
    workload: &str,
    precision: IntPrecision,
    tub_cycles: f64,
) -> WorkloadEnergy {
    let binary_power_mw = hw.pe_array(Family::Binary, precision, 16, 16).power_mw;
    let tub_power_mw = hw.pe_array(Family::Tub, precision, 16, 16).power_mw;
    WorkloadEnergy {
        workload: workload.to_string(),
        precision,
        tub_cycles,
        binary_power_mw,
        tub_power_mw,
        binary_energy_pj: binary_power_mw * PERIOD_NS,
        tub_energy_pj: tub_power_mw * tub_cycles * PERIOD_NS,
    }
}

/// The INT4 worst-case evaluation of §V-C: 4-cycle windows.
#[must_use]
pub fn evaluate_int4_worst_case(hw: &SynthModel) -> WorkloadEnergy {
    evaluate(
        hw,
        "worst-case",
        IntPrecision::Int4,
        f64::from(IntPrecision::Int4.worst_case_tub_cycles()),
    )
}

/// §V-C's proposed refinement: the baseline energy "assumes that all
/// 256 PEs in the tile is active ... which is an overestimate"; silent
/// PEs can be clock-gated for the whole window. This variant subtracts
/// the silent PEs' per-multiplier power slice from the tub array power.
#[derive(Debug, Clone, PartialEq)]
pub struct GatedEnergy {
    /// The all-PEs-active evaluation.
    pub baseline: WorkloadEnergy,
    /// Average silent PEs per 16×16 tile (from Fig. 8 profiling).
    pub silent_pes: f64,
    /// Per-multiplier power slice in mW (slope of the calibrated tub
    /// cell power in n, scaled by the array factor).
    pub per_pe_power_mw: f64,
    /// tub energy per window with silent PEs gated, in pJ.
    pub tub_energy_gated_pj: f64,
}

impl GatedEnergy {
    /// Energy gap after gating.
    #[must_use]
    pub fn gated_energy_gap(&self) -> f64 {
        self.tub_energy_gated_pj / self.baseline.binary_energy_pj
    }
}

/// Evaluates the silent-PE-gated energy for a 16×16 tub array.
///
/// # Panics
///
/// Panics if `silent_pes` is outside `0..=256`.
#[must_use]
pub fn evaluate_gated(
    hw: &SynthModel,
    workload: &str,
    precision: IntPrecision,
    tub_cycles: f64,
    silent_pes: f64,
) -> GatedEnergy {
    assert!(
        (0.0..=256.0).contains(&silent_pes),
        "silent PEs out of range"
    );
    let baseline = evaluate(hw, workload, precision, tub_cycles);
    // Per-multiplier slope of the calibrated tub cell power, then the
    // array calibration factor on top (array = 16 cells x factor).
    let p16 = hw.pe_array(Family::Tub, precision, 16, 16).power_mw;
    let p8 = hw.pe_array(Family::Tub, precision, 16, 8).power_mw;
    let per_pe = ((p16 - p8) / (16.0 * 8.0)).max(0.0);
    let gated_power = baseline.tub_power_mw - silent_pes * per_pe;
    GatedEnergy {
        tub_energy_gated_pj: gated_power * tub_cycles * PERIOD_NS,
        baseline,
        silent_pes,
        per_pe_power_mw: per_pe,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int8_mobilenet_energy_matches_paper() {
        // Paper: binary 15 pJ, tub 187 pJ at 33 cycles.
        let hw = SynthModel::nangate45();
        let e = evaluate(&hw, "MobileNetV2", IntPrecision::Int8, 33.0);
        assert!(
            (e.binary_energy_pj - 15.2).abs() < 1.0,
            "{}",
            e.binary_energy_pj
        );
        assert!((e.tub_energy_pj - 187.0).abs() < 6.0, "{}", e.tub_energy_pj);
    }

    #[test]
    fn int8_resnext_energy_matches_paper() {
        // Paper: 176 pJ at 31 cycles.
        let hw = SynthModel::nangate45();
        let e = evaluate(&hw, "ResNeXt101", IntPrecision::Int8, 31.0);
        assert!((e.tub_energy_pj - 176.0).abs() < 6.0, "{}", e.tub_energy_pj);
    }

    #[test]
    fn int4_worst_case_matches_paper() {
        // Paper: binary 7.48 pJ, tub 17.76 pJ, gap 2.3x.
        let hw = SynthModel::nangate45();
        let e = evaluate_int4_worst_case(&hw);
        assert!(
            (e.binary_energy_pj - 7.48).abs() < 0.4,
            "{}",
            e.binary_energy_pj
        );
        assert!((e.tub_energy_pj - 17.76).abs() < 0.9, "{}", e.tub_energy_pj);
        assert!((e.energy_gap() - 2.3).abs() < 0.3, "{}", e.energy_gap());
    }

    #[test]
    fn gating_reduces_energy_proportionally_to_silence() {
        let hw = SynthModel::nangate45();
        // MobileNetV2: ~5.8 silent PEs of 256 -> a small but real saving.
        let g = evaluate_gated(&hw, "MobileNetV2", IntPrecision::Int8, 33.0, 5.8);
        assert!(g.tub_energy_gated_pj < g.baseline.tub_energy_pj);
        let saving = 1.0 - g.tub_energy_gated_pj / g.baseline.tub_energy_pj;
        assert!(saving > 0.001 && saving < 0.10, "saving {saving}");
        // All-silent array saves the whole per-PE share.
        let all = evaluate_gated(&hw, "x", IntPrecision::Int8, 33.0, 256.0);
        assert!(all.tub_energy_gated_pj < g.tub_energy_gated_pj);
        assert!(all.gated_energy_gap() < g.gated_energy_gap());
    }

    #[test]
    fn energy_gap_shrinks_from_int8_to_int4() {
        // Paper: 11.7x (INT8, MobileNetV2 window) -> 2.3x (INT4).
        let hw = SynthModel::nangate45();
        let int8 = evaluate(&hw, "MobileNetV2", IntPrecision::Int8, 33.0);
        let int4 = evaluate_int4_worst_case(&hw);
        assert!(
            (int8.energy_gap() - 11.7).abs() < 1.5,
            "{}",
            int8.energy_gap()
        );
        assert!(int4.energy_gap() < int8.energy_gap() / 3.0);
    }
}
