//! Latency-adjusted iso-area throughput.
//!
//! The paper's iso-area throughput (§V-D, Fig. 9) counts how many tub
//! arrays fit in the binary array's silicon, "assuming the same m
//! cycles" on both sides. This module computes the stronger,
//! workload-aware statement: fold in the *measured* multi-cycle window
//! from Fig. 7 profiling, so the comparison is
//! `ops/s/mm² = arrays-per-area × (1 / window)`. It quantifies §V-D's
//! "throughput improvements can transcend the latency increase" — true
//! at INT4 (short windows) and at large arrays, not yet at INT8 with
//! a 16×16 array.

use tempus_arith::IntPrecision;
use tempus_hwmodel::{Family, SynthModel};

/// Latency-adjusted iso-area throughput comparison at one precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputComparison {
    /// Precision evaluated.
    pub precision: IntPrecision,
    /// Average tub window in cycles (1 for the binary array).
    pub tub_window_cycles: f64,
    /// Area ratio binary/tub (how many tub arrays fit per binary
    /// array) — the paper's iso-area factor.
    pub area_ratio: f64,
    /// Binary atomic ops per second per mm² (millions).
    pub binary_mops_per_mm2: f64,
    /// tub atomic ops per second per mm² (millions), with the window
    /// folded in.
    pub tub_mops_per_mm2: f64,
}

impl ThroughputComparison {
    /// Net iso-area throughput gain with latency included:
    /// `area_ratio / window`. Above 1.0 the tub side wins outright.
    #[must_use]
    pub fn net_gain(&self) -> f64 {
        self.tub_mops_per_mm2 / self.binary_mops_per_mm2
    }

    /// Window length (cycles) at which the two sides break even for
    /// this area ratio.
    #[must_use]
    pub fn break_even_window(&self) -> f64 {
        self.area_ratio
    }
}

/// Clock frequency of the evaluation, MHz.
const FREQ_MHZ: f64 = 250.0;

/// Compares 16×16 arrays at `precision` with a profiled average window
/// of `tub_window_cycles` (from Fig. 7 profiling; use the worst case
/// `precision.worst_case_tub_cycles()` for a bound).
///
/// # Panics
///
/// Panics if `tub_window_cycles < 1`.
#[must_use]
pub fn compare_16x16(
    hw: &SynthModel,
    precision: IntPrecision,
    tub_window_cycles: f64,
) -> ThroughputComparison {
    assert!(tub_window_cycles >= 1.0, "window must be at least 1 cycle");
    let binary = hw.pe_array(Family::Binary, precision, 16, 16);
    let tub = hw.pe_array(Family::Tub, precision, 16, 16);
    let area_ratio = binary.area_mm2 / tub.area_mm2;
    // One atomic op per cycle for the binary array; one per window for
    // the tub array. Normalise per mm².
    let binary_mops_per_mm2 = FREQ_MHZ / binary.area_mm2 / 1e3;
    let tub_mops_per_mm2 = FREQ_MHZ / tub_window_cycles / tub.area_mm2 / 1e3;
    ThroughputComparison {
        precision,
        tub_window_cycles,
        area_ratio,
        binary_mops_per_mm2,
        tub_mops_per_mm2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int8_with_profiled_window_does_not_yet_win() {
        // 16x16 INT8 with the MobileNetV2 window (~33 cycles): the 5x
        // area advantage cannot cover a 33x window — net gain ~0.15.
        let hw = SynthModel::nangate45();
        let c = compare_16x16(&hw, IntPrecision::Int8, 33.0);
        assert!(c.net_gain() < 0.2, "net {}", c.net_gain());
        assert!((c.area_ratio - 5.0).abs() < 0.3);
        assert!((c.break_even_window() - c.area_ratio).abs() < 1e-12);
    }

    #[test]
    fn int4_worst_case_wins_outright() {
        // INT4: the window is at most 4 cycles against a ~5x area
        // advantage — tub delivers more ops/s/mm² even at worst case.
        let hw = SynthModel::nangate45();
        let c = compare_16x16(
            &hw,
            IntPrecision::Int4,
            f64::from(IntPrecision::Int4.worst_case_tub_cycles()),
        );
        assert!(c.net_gain() > 1.0, "net {}", c.net_gain());
    }

    #[test]
    fn int2_wins_by_a_wide_margin() {
        let hw = SynthModel::nangate45();
        let c = compare_16x16(
            &hw,
            IntPrecision::Int2,
            f64::from(IntPrecision::Int2.worst_case_tub_cycles()),
        );
        assert!(c.net_gain() > 2.0, "net {}", c.net_gain());
    }

    #[test]
    fn net_gain_is_area_ratio_over_window() {
        let hw = SynthModel::nangate45();
        let c = compare_16x16(&hw, IntPrecision::Int8, 10.0);
        assert!((c.net_gain() - c.area_ratio / 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least 1 cycle")]
    fn sub_cycle_window_rejected() {
        let hw = SynthModel::nangate45();
        let _ = compare_16x16(&hw, IntPrecision::Int8, 0.5);
    }
}
