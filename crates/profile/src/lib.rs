//! Weight-tile profiling and workload-dependent energy analysis
//! (paper §IV "weight-value profiling" and §V-C).
//!
//! The paper max-pools convolution weights in 16×16 tiles — one tile
//! per PE-array residency — because the largest weight magnitude in a
//! tile bottlenecks the tub array's compute window. This crate
//! reproduces that methodology over the synthetic quantized models:
//!
//! * [`tiles`] — tiling of lowered weight matrices into k×n arrays;
//! * [`magnitude`] — Fig. 7: tile-max histograms and the average
//!   workload latency;
//! * [`sparsity`] — Fig. 8: silent-PE (zero weight) histograms;
//! * [`energy`] — §V-C: workload energy for binary vs tub arrays and
//!   the INT8 → INT4 energy-gap shrink (plus the silent-PE-gated
//!   refinement);
//! * [`throughput`] — latency-adjusted iso-area throughput, making
//!   §V-D's "throughput improvements can transcend the latency
//!   increase" quantitative;
//! * [`table`] — markdown/CSV emitters shared by the report harness.
//!
//! # Example
//!
//! ```no_run
//! use tempus_models::zoo::Model;
//! use tempus_models::QuantizedModel;
//! use tempus_profile::magnitude;
//! use tempus_arith::IntPrecision;
//!
//! let model = QuantizedModel::generate(Model::MobileNetV2, IntPrecision::Int8, 42);
//! let profile = magnitude::profile_model(&model, 16, 16);
//! // §V-C: "MobileNetV2 incurs 33 cycles ... on average".
//! assert!((profile.average_latency_cycles() - 33.0).abs() < 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod energy;
pub mod magnitude;
pub mod sparsity;
pub mod table;
pub mod throughput;
pub mod tiles;
