//! **tempus-fleet**: a deterministic multi-device fleet scheduler
//! above the per-device array ledger.
//!
//! One simulated Tempus device tops out at its `num_arrays` PE
//! arrays. Serving millions of users takes a scheduling layer that
//! multiplexes work across *replicas* of that fixed-resource core —
//! the two-level scheduler this crate supplies:
//!
//! ```text
//!              ┌──────────────── FleetScheduler ────────────────┐
//!   request ──▶│ deadline admission → device picker → backfill? │
//!              └──┬──────────────┬──────────────┬───────────────┘
//!                 ▼              ▼              ▼
//!            ArrayLedger    ArrayLedger    ArrayLedger   (one per
//!            dev 0          dev 1          dev 2          device)
//! ```
//!
//! * **Device picker** — every job is previewed on every active
//!   device ([`ArrayLedger::preview`], pure) and committed to the one
//!   with the earliest finish time (ties prefer the lowest device
//!   id). Placement order fixes everything: the fleet replays
//!   cycle-for-cycle from the admission sequence.
//! * **Look-ahead backfilling** ([`FleetConfig::backfill`]) — narrow
//!   jobs may jump into recorded idle gaps
//!   ([`ArrayLedger::preview_backfill`]) when the backfilled finish
//!   is no later than the best normal placement. A backfill moves no
//!   busy-until clock, so it provably delays no already-granted job.
//! * **Deadline-aware admission** — a request may carry a deadline in
//!   device cycles (derived from its class SLO). When the picked
//!   placement would finish past `arrival + deadline`, the scheduler
//!   searches narrower fixed widths on every device
//!   ([`ArrayLedger::preview_width`]) — narrowing trades critical
//!   path for gather wait — and rejects at admission when no width
//!   anywhere meets the deadline, instead of letting the job time out
//!   in the queue.
//! * **Power-capped Pareto admission**
//!   ([`FleetConfig::with_power_cap`]) — under a fleet-wide average
//!   power budget the picker walks every (device, width, DVFS
//!   ladder level) candidate, prices it from the plan's closed-form
//!   energy split, and commits the **lowest-energy** placement that
//!   meets the deadline and keeps concurrent power under the cap.
//! * **Per-array DVFS governor**
//!   ([`FleetConfig::with_freq_governor`]) — the occupancy-driven
//!   governor is threaded into every device ledger (elastic joins
//!   included); its frequency transitions surface as
//!   [`FleetEvent::FreqChange`]s.
//! * **Elastic sizing** ([`ElasticPolicy`]) — on ledger-clock
//!   boundaries the fleet compares backlog per active device against
//!   grow/shrink thresholds and joins (or revives) a device at the
//!   current clock ([`ArrayLedger::starting_at`]) or drains one, under
//!   a hard device budget. At most one action per boundary, all
//!   deterministic.
//!
//! **Bit-identity contract**: a 1-device fleet with backfilling off
//! and no deadlines makes exactly the placements of the single-device
//! `ArrayLedger` path — same grants, starts, waits, and device
//! account. Arrivals are pinned to the fleet *floor* (the earliest
//! cycle any active device frees), which on one device equals the
//! ledger horizon the single-device path already clamps to.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tempus_core::freq;
use tempus_core::shard::BudgetPlan;
use tempus_runtime::stats::PERIOD_NS;
use tempus_runtime::{ArrayLedger, DeviceSummary, GovernorPolicy, Placement};

/// Fleet shape and policy switches.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Devices at start-up (clamped to ≥ 1).
    pub devices: usize,
    /// PE arrays per device — every replica models the same silicon.
    pub arrays_per_device: usize,
    /// Allow narrow jobs to jump into recorded idle gaps when doing
    /// so finishes no later than the best normal placement.
    pub backfill: bool,
    /// Resize the fleet against backlog; `None` keeps it fixed.
    pub elastic: Option<ElasticPolicy>,
    /// Fleet-wide average-power budget in milli-mW (µW). `None` (the
    /// default) admits on finish time alone — the pre-DVFS picker
    /// bit-for-bit. `Some(cap)` switches admission to the
    /// energy-Pareto path: every (device, width, ladder-level)
    /// candidate is priced and the cheapest deadline- and
    /// power-feasible one wins.
    pub power_cap_milli_mw: Option<u64>,
    /// Per-array DVFS governor threaded into every device ledger
    /// (joins included); `None` keeps every array at the nominal
    /// clock.
    pub governor: Option<GovernorPolicy>,
}

impl FleetConfig {
    /// A fixed fleet of `devices` replicas with `arrays_per_device`
    /// arrays each, backfilling off.
    #[must_use]
    pub fn new(devices: usize, arrays_per_device: usize) -> Self {
        FleetConfig {
            devices: devices.max(1),
            arrays_per_device: arrays_per_device.max(1),
            backfill: false,
            elastic: None,
            power_cap_milli_mw: None,
            governor: None,
        }
    }

    /// Enables look-ahead backfilling (builder style).
    #[must_use]
    pub fn with_backfill(mut self) -> Self {
        self.backfill = true;
        self
    }

    /// Enables elastic sizing under `policy` (builder style).
    #[must_use]
    pub fn with_elastic(mut self, policy: ElasticPolicy) -> Self {
        self.elastic = Some(policy);
        self
    }

    /// Caps fleet-wide average power at `cap_mw` milliwatts (builder
    /// style): admission walks the (width × frequency-level) Pareto
    /// frontier and commits the lowest-energy placement whose
    /// concurrent power stays under the cap.
    #[must_use]
    pub fn with_power_cap(mut self, cap_mw: f64) -> Self {
        self.power_cap_milli_mw = Some((cap_mw.max(0.0) * 1000.0).round() as u64);
        self
    }

    /// Threads the occupancy-driven DVFS governor into every device
    /// ledger (builder style).
    #[must_use]
    pub fn with_freq_governor(mut self, governor: GovernorPolicy) -> Self {
        self.governor = Some(governor);
        self
    }
}

/// Elastic-sizing thresholds on the fleet's **backlog signal**: the
/// smoothed admission latency (device cycles from the fleet floor to
/// each admitted job's predicted finish, folded through an integer
/// EWMA). Above `grow_backlog_cycles` a device joins (reviving a
/// draining one first), below `shrink_backlog_cycles` one drains.
/// `min_devices ≤ active ≤ max_devices` always holds — `max_devices`
/// is the device budget.
#[derive(Debug, Clone, Copy)]
pub struct ElasticPolicy {
    /// Fewest devices the fleet may shrink to (clamped to ≥ 1).
    pub min_devices: usize,
    /// Device budget: most devices that may be live at once.
    pub max_devices: usize,
    /// Backlog signal above which a device joins.
    pub grow_backlog_cycles: u64,
    /// Backlog signal below which a device drains.
    pub shrink_backlog_cycles: u64,
}

/// A device's lifecycle within the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceStatus {
    /// Taking new grants.
    Active,
    /// Finishing what it has; retires when the fleet clock passes its
    /// makespan.
    Draining,
    /// Drained and left the fleet; its account remains in the summary.
    Retired,
    /// Circuit-broken after consecutive failures: taking no grants
    /// until a floor-boundary probe reports it healthy again.
    Quarantined,
}

/// Consecutive failures before the circuit breaker quarantines a
/// device (Healthy → Suspect on the first, Quarantined at this
/// count). The last active device is never quarantined — a degraded
/// fleet that still answers beats one that cannot.
pub const QUARANTINE_THRESHOLD: u32 = 3;

/// Where a device sits in the failure circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthPhase {
    /// No failures outstanding.
    Healthy,
    /// 1 to [`QUARANTINE_THRESHOLD`]`- 1` consecutive failures: still
    /// taking grants, one bad streak from quarantine.
    Suspect,
    /// Circuit open: excluded from admission until a probe heals it.
    Quarantined,
}

/// Per-device breaker bookkeeping (all deterministic counts — no
/// wall-clock timers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceHealth {
    /// Failures since the last success on this device.
    pub consecutive_failures: u32,
    /// Probes sent while quarantined (resets on revival).
    pub probes: u32,
    /// Fleet floor when the device was quarantined.
    pub quarantined_at: Option<u64>,
    /// Fleet floor of the last probe — one probe per floor boundary.
    pub last_probe_floor: Option<u64>,
}

/// One device: its ledger plus lifecycle state.
#[derive(Debug, Clone)]
pub struct DeviceState {
    /// The device's array-slot ledger.
    pub ledger: ArrayLedger,
    /// Lifecycle state.
    pub status: DeviceStatus,
    /// Fleet clock at which the device joined.
    pub joined_at_cycle: u64,
    /// Circuit-breaker state.
    pub health: DeviceHealth,
}

impl DeviceState {
    /// The breaker phase this device is in.
    #[must_use]
    pub fn health_phase(&self) -> HealthPhase {
        if self.status == DeviceStatus::Quarantined {
            HealthPhase::Quarantined
        } else if self.health.consecutive_failures > 0 {
            HealthPhase::Suspect
        } else {
            HealthPhase::Healthy
        }
    }
}

/// A committed fleet placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetPlacement {
    /// Index of the device that took the job.
    pub device: usize,
    /// The device-local placement (grant, start, duration, arrays).
    pub placement: Placement,
    /// The cycle deadlines and latencies are measured from: the fleet
    /// floor under [`FleetScheduler::admit`] (whose placements are
    /// previewed at arrival 0 — the queue semantics of the
    /// single-device path, which is also what lets a backfill land in
    /// a gap behind the floor), or the explicit arrival under
    /// [`FleetScheduler::admit_at`].
    pub arrival_cycle: u64,
}

impl FleetPlacement {
    /// Device cycles from admission to predicted finish — the latency
    /// a deadline is checked against. A backfilled job can finish
    /// behind the floor (it reclaims already-idle device time), which
    /// saturates to zero.
    #[must_use]
    pub fn latency_cycles(&self) -> u64 {
        self.placement
            .finish_cycle()
            .saturating_sub(self.arrival_cycle)
    }
}

/// Why (and by how much) an admission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineMiss {
    /// The deadline the request carried, in device cycles.
    pub deadline_cycles: u64,
    /// The best achievable latency over every device, width and
    /// backfill candidate — always greater than the deadline.
    pub best_latency_cycles: u64,
}

/// Outcome of [`FleetScheduler::admit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetOutcome {
    /// The job was placed (and the ledger committed).
    Placed(FleetPlacement),
    /// No device at any width can meet the request's deadline.
    Rejected(DeadlineMiss),
}

impl FleetOutcome {
    /// The committed placement, when admitted.
    #[must_use]
    pub fn placement(&self) -> Option<&FleetPlacement> {
        match self {
            FleetOutcome::Placed(p) => Some(p),
            FleetOutcome::Rejected(_) => None,
        }
    }
}

/// One recorded scheduling decision, emitted (when recording is on)
/// in the order the scheduler made it. The fleet stays free of any
/// telemetry dependency: the serving layer drains these with
/// [`FleetScheduler::drain_events`] and lowers them onto its trace
/// tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetEvent {
    /// A device was previewed for the job with this predicted finish.
    Preview {
        /// Device index previewed.
        device: usize,
        /// Predicted finish cycle of the normal placement there.
        finish_cycle: u64,
    },
    /// The job was committed to a device.
    Route {
        /// Device that took the job.
        device: usize,
        /// Device cycle the job starts at.
        start_cycle: u64,
        /// Arrays granted.
        granted: usize,
    },
    /// The backfill take-rule fired: an idle-gap placement beat the
    /// normal pick and was chosen instead.
    Backfill {
        /// Device whose gap the job fills.
        device: usize,
        /// Device cycle the backfilled job starts at.
        start_cycle: u64,
    },
    /// Admission refused: no device at any width met the deadline.
    Reject {
        /// The deadline the request carried.
        deadline_cycles: u64,
        /// Best achievable latency across the fleet.
        best_latency_cycles: u64,
    },
    /// Elastic sizing put a device into draining.
    Drain {
        /// Device drained.
        device: usize,
        /// Fleet floor at the decision.
        cycle: u64,
    },
    /// Elastic sizing activated a device (revival or fresh join), or
    /// a healthy probe returned a quarantined device to service.
    Revive {
        /// Device activated.
        device: usize,
        /// Fleet floor at the decision.
        cycle: u64,
    },
    /// The circuit breaker quarantined a device after consecutive
    /// failures.
    Quarantine {
        /// Device quarantined.
        device: usize,
        /// Fleet floor at the decision.
        cycle: u64,
    },
    /// A quarantined device was probed.
    Probe {
        /// Device probed.
        device: usize,
        /// Fleet floor at the probe.
        cycle: u64,
        /// Whether the probe reported the device healthy.
        healthy: bool,
    },
    /// A quarantined device's grant was rolled back so the work could
    /// re-route.
    Rollback {
        /// Device whose ledger was unwound.
        device: usize,
        /// Start cycle of the reverted placement.
        start_cycle: u64,
    },
    /// A device array's clock domain stepped on the DVFS ladder (the
    /// occupancy governor committed a transition).
    FreqChange {
        /// Device whose array stepped.
        device: usize,
        /// Array whose clock domain stepped.
        array: usize,
        /// The new ladder level.
        level: u8,
        /// Device cycle the step takes effect.
        cycle: u64,
    },
}

/// Point-in-time fleet account: per-device summaries plus fleet-level
/// counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetSummary {
    /// One summary per device ever in the fleet (retired included).
    pub devices: Vec<DeviceSummary>,
    /// Devices currently taking grants.
    pub active_devices: usize,
    /// Most devices ever live at once.
    pub peak_devices: usize,
    /// Elastic joins (including revivals of draining devices).
    pub joins: u64,
    /// Elastic drains.
    pub drains: u64,
    /// Admissions refused on deadline.
    pub rejections: u64,
    /// Devices circuit-broken into quarantine.
    pub quarantines: u64,
    /// Probes sent to quarantined devices.
    pub probes: u64,
    /// Quarantined-device grants rolled back for re-routing.
    pub rollbacks: u64,
    /// Quarantined devices returned to service by a healthy probe.
    pub revivals: u64,
    /// Highest concurrent average power any committed placement ever
    /// saw, in mW (0.0 until a placement carried an energy-annotated
    /// plan). The figure a cap is set against.
    pub peak_power_mw: f64,
    /// Closed-form energy (pJ) summed over every committed placement
    /// at its chosen ladder level — gross of rollbacks, so it prices
    /// the work the fleet *scheduled*, not what finally ran.
    pub planned_energy_pj: u64,
}

impl FleetSummary {
    /// The fleet viewed as one device: arrays sum, makespan is the
    /// max, counters sum. For a 1-device fleet this is bit-identical
    /// to that device's own [`DeviceSummary`].
    #[must_use]
    pub fn combined(&self) -> DeviceSummary {
        let mut combined = DeviceSummary::default();
        for d in &self.devices {
            combined.num_arrays += d.num_arrays;
            combined.makespan_cycles = combined.makespan_cycles.max(d.makespan_cycles);
            combined.busy_cycles += d.busy_cycles;
            combined.wait_cycles += d.wait_cycles;
            combined.placements += d.placements;
            combined.granted_sum += d.granted_sum;
            combined.idle_gap_count += d.idle_gap_count;
            combined.idle_gap_cycles += d.idle_gap_cycles;
            combined.backfills += d.backfills;
            for (slot, cycles) in d.level_residency.iter().enumerate() {
                combined.level_residency[slot] += cycles;
            }
            combined.freq_changes += d.freq_changes;
        }
        combined
    }

    /// Backfills committed across the fleet.
    #[must_use]
    pub fn backfills(&self) -> u64 {
        self.devices.iter().map(|d| d.backfills).sum()
    }
}

/// The two-level scheduler: a device picker over per-device ledgers.
#[derive(Debug, Clone)]
pub struct FleetScheduler {
    config: FleetConfig,
    devices: Vec<DeviceState>,
    /// Fleet floor at the last elastic action — one action per
    /// clock boundary.
    last_boundary: Option<u64>,
    /// The backlog signal: admission latency folded through a 3/4
    /// integer EWMA. Rejections feed in their best achievable latency
    /// (overload must register even when nothing is placed).
    recent_latency: u64,
    peak_devices: usize,
    joins: u64,
    drains: u64,
    rejections: u64,
    quarantines: u64,
    probes: u64,
    rollbacks: u64,
    revivals: u64,
    /// Committed placements still holding device time, as
    /// `(start, finish, power_milli_mw)` — the concurrency set the
    /// power cap is checked against. Entries whose finish has passed
    /// the fleet floor are pruned at every admission.
    active_power: Vec<(u64, u64, u64)>,
    peak_power_milli_mw: u64,
    planned_energy_pj: u64,
    /// Emit [`FleetEvent`]s into `events`; off by default so cloned
    /// what-if schedulers cost nothing.
    record: bool,
    events: Vec<FleetEvent>,
}

impl FleetScheduler {
    /// A fleet per `config`, all devices idle at cycle 0.
    #[must_use]
    pub fn new(config: FleetConfig) -> Self {
        let devices: Vec<DeviceState> = (0..config.devices.max(1))
            .map(|_| DeviceState {
                ledger: Self::build_ledger(&config, 0),
                status: DeviceStatus::Active,
                joined_at_cycle: 0,
                health: DeviceHealth::default(),
            })
            .collect();
        let peak = devices.len();
        FleetScheduler {
            config,
            devices,
            last_boundary: None,
            recent_latency: 0,
            peak_devices: peak,
            joins: 0,
            drains: 0,
            rejections: 0,
            quarantines: 0,
            probes: 0,
            rollbacks: 0,
            revivals: 0,
            active_power: Vec::new(),
            peak_power_milli_mw: 0,
            planned_energy_pj: 0,
            record: false,
            events: Vec::new(),
        }
    }

    /// A device ledger with all arrays free at `cycle`, with the
    /// configured DVFS governor (if any) threaded in — used for the
    /// start-up devices and every elastic join alike.
    fn build_ledger(config: &FleetConfig, cycle: u64) -> ArrayLedger {
        let ledger = ArrayLedger::starting_at(config.arrays_per_device, cycle);
        match config.governor {
            Some(g) => ledger.with_governor(g),
            None => ledger,
        }
    }

    /// Turns [`FleetEvent`] recording on or off. Recording changes no
    /// scheduling decision — it only appends to the event log.
    pub fn set_recording(&mut self, on: bool) {
        self.record = on;
        if !on {
            self.events.clear();
        }
    }

    /// Takes every event recorded since the last drain, in decision
    /// order.
    pub fn drain_events(&mut self) -> Vec<FleetEvent> {
        std::mem::take(&mut self.events)
    }

    fn emit(&mut self, event: FleetEvent) {
        if self.record {
            self.events.push(event);
        }
    }

    /// The single-device fleet the serve dispatcher uses by default —
    /// bit-identical to driving one [`ArrayLedger`] directly.
    #[must_use]
    pub fn single_device(num_arrays: usize) -> Self {
        FleetScheduler::new(FleetConfig::new(1, num_arrays))
    }

    /// Every device ever in the fleet, retired ones included.
    #[must_use]
    pub fn devices(&self) -> &[DeviceState] {
        &self.devices
    }

    /// Devices currently taking grants.
    #[must_use]
    pub fn active_devices(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| d.status == DeviceStatus::Active)
            .count()
    }

    /// The fleet floor: the earliest cycle any active device frees an
    /// array. Admissions arrive at the floor, so deadlines are
    /// relative to the first cycle the fleet could possibly start the
    /// job. Monotone non-decreasing across admissions.
    #[must_use]
    pub fn floor(&self) -> u64 {
        self.devices
            .iter()
            .filter(|d| d.status == DeviceStatus::Active)
            .map(|d| d.ledger.horizon())
            .min()
            .unwrap_or(0)
    }

    /// The fleet account.
    #[must_use]
    pub fn summary(&self) -> FleetSummary {
        FleetSummary {
            devices: self.devices.iter().map(|d| d.ledger.summary()).collect(),
            active_devices: self.active_devices(),
            peak_devices: self.peak_devices,
            joins: self.joins,
            drains: self.drains,
            rejections: self.rejections,
            quarantines: self.quarantines,
            probes: self.probes,
            rollbacks: self.rollbacks,
            revivals: self.revivals,
            peak_power_mw: self.peak_power_milli_mw as f64 / 1000.0,
            planned_energy_pj: self.planned_energy_pj,
        }
    }

    /// Admits one job: elastic step, device pick, backfill, deadline
    /// check — then commits the winning placement. `deadline_cycles`
    /// is measured from the fleet floor at admission; `None` admits
    /// unconditionally. Placements are previewed at arrival 0 — the
    /// single-device queue semantics — so a 1-device fleet replays
    /// the `ArrayLedger` path bit-for-bit.
    pub fn admit(&mut self, plan: &BudgetPlan, deadline_cycles: Option<u64>) -> FleetOutcome {
        self.elastic_step();
        let floor = self.floor();
        self.admit_inner(plan, deadline_cycles, 0, floor)
    }

    /// Admits one job that **arrives** at `arrival_cycle` of device
    /// time (open-loop traffic): no placement starts before the
    /// arrival, and deadlines and
    /// [`FleetPlacement::latency_cycles`] are measured from it — so
    /// queueing delay behind a backlog counts against the SLO, which
    /// [`admit`](Self::admit)'s floor-relative clock deliberately
    /// excludes.
    pub fn admit_at(
        &mut self,
        plan: &BudgetPlan,
        deadline_cycles: Option<u64>,
        arrival_cycle: u64,
    ) -> FleetOutcome {
        self.elastic_step();
        self.admit_inner(plan, deadline_cycles, arrival_cycle, arrival_cycle)
    }

    /// The shared admission body: previews at `arrival`, measures
    /// latency from `reference`.
    fn admit_inner(
        &mut self,
        plan: &BudgetPlan,
        deadline_cycles: Option<u64>,
        arrival: u64,
        reference: u64,
    ) -> FleetOutcome {
        // Placements whose finish has passed the floor can no longer
        // overlap anything new (every new start is at or past the
        // floor): drop them from the power concurrency set.
        let power_floor = self.floor();
        self.active_power
            .retain(|&(_, finish, _)| finish > power_floor);
        if let Some(cap) = self.config.power_cap_milli_mw {
            return self.admit_capped(plan, deadline_cycles, arrival, reference, cap);
        }
        // Normal path: earliest finish across active devices, ties to
        // the lowest id (strict `<` on the scan keeps the first).
        let mut chosen: Option<(usize, Placement)> = None;
        let mut previews: Vec<FleetEvent> = Vec::new();
        for (idx, dev) in self.active_iter() {
            let p = dev.ledger.preview(plan, arrival);
            if self.record {
                previews.push(FleetEvent::Preview {
                    device: idx,
                    finish_cycle: p.finish_cycle(),
                });
            }
            if chosen
                .as_ref()
                .is_none_or(|(_, best)| p.finish_cycle() < best.finish_cycle())
            {
                chosen = Some((idx, p));
            }
        }
        self.events.extend(previews);
        let mut chosen = chosen.expect("fleet always has an active device");

        // Backfill: taken when it finishes no later than the normal
        // pick — strictly better use of the same device-time, and it
        // cannot delay any granted job.
        if self.config.backfill {
            let mut best_fill: Option<(usize, Placement)> = None;
            for (idx, dev) in self.active_iter() {
                if let Some(p) = dev.ledger.preview_backfill(plan, arrival) {
                    if best_fill
                        .as_ref()
                        .is_none_or(|(_, b)| p.finish_cycle() < b.finish_cycle())
                    {
                        best_fill = Some((idx, p));
                    }
                }
            }
            if let Some(fill) = best_fill {
                if fill.1.finish_cycle() <= chosen.1.finish_cycle() {
                    self.emit(FleetEvent::Backfill {
                        device: fill.0,
                        start_cycle: fill.1.start_cycle,
                    });
                    chosen = fill;
                }
            }
        }

        // Deadline admission: when the pick blows the deadline, walk
        // narrower fixed widths on every device — narrowing shortens
        // the gather wait at the price of critical path — and reject
        // outright when nothing anywhere meets it.
        if let Some(deadline) = deadline_cycles {
            if chosen.1.finish_cycle().saturating_sub(reference) > deadline {
                let mut best = chosen.clone();
                for (idx, dev) in self.active_iter() {
                    for width in 1..=plan.arrays.max(1) {
                        let p = dev.ledger.preview_width(plan, width, arrival);
                        if p.finish_cycle() < best.1.finish_cycle() {
                            best = (idx, p);
                        }
                    }
                }
                let best_latency = best.1.finish_cycle().saturating_sub(reference);
                if best_latency > deadline {
                    self.rejections += 1;
                    self.observe_latency(best_latency);
                    self.emit(FleetEvent::Reject {
                        deadline_cycles: deadline,
                        best_latency_cycles: best_latency,
                    });
                    return FleetOutcome::Rejected(DeadlineMiss {
                        deadline_cycles: deadline,
                        best_latency_cycles: best_latency,
                    });
                }
                chosen = best;
            }
        }

        let (device, placement) = chosen;
        self.emit(FleetEvent::Route {
            device,
            start_cycle: placement.start_cycle,
            granted: placement.assignment.granted,
        });
        self.devices[device].ledger.apply(&placement);
        self.track_committed(plan, &placement);
        self.lower_freq_changes(device);
        let placed = FleetPlacement {
            device,
            placement,
            arrival_cycle: reference,
        };
        self.observe_latency(placed.latency_cycles());
        FleetOutcome::Placed(placed)
    }

    /// The power-capped admission body: every active device × fixed
    /// width × DVFS ladder level is previewed and priced, and the
    /// **lowest-energy** candidate that meets the deadline (measured
    /// from `reference`) *and* keeps concurrent fleet power at or
    /// under `cap` over its interval wins — energy-first where the
    /// uncapped picker is finish-first. Ties break to the earlier
    /// finish, then scan order (lower device id, shallower level).
    /// The ladder walk supersedes any governor level on the previewed
    /// arrays: under a cap the admission decision owns the operating
    /// point. On rejection, `best_latency_cycles` reports the best
    /// latency over every candidate irrespective of power — it can
    /// sit below the deadline when power alone blocked admission.
    fn admit_capped(
        &mut self,
        plan: &BudgetPlan,
        deadline_cycles: Option<u64>,
        arrival: u64,
        reference: u64,
        cap: u64,
    ) -> FleetOutcome {
        let mut chosen: Option<(usize, Placement, u64)> = None;
        let mut best_latency = u64::MAX;
        let max_width = plan.arrays.max(1);
        let device_ids: Vec<usize> = self.active_iter().map(|(idx, _)| idx).collect();
        for idx in device_ids {
            for width in 1..=max_width {
                let base = self.devices[idx].ledger.preview_width(plan, width, arrival);
                if width == max_width {
                    self.emit(FleetEvent::Preview {
                        device: idx,
                        finish_cycle: base.finish_cycle(),
                    });
                }
                for lvl in 0..freq::NUM_LEVELS as u8 {
                    let p = base.at_level(lvl);
                    let finish = p.finish_cycle();
                    let latency = finish.saturating_sub(reference);
                    best_latency = best_latency.min(latency);
                    if deadline_cycles.is_some_and(|d| latency > d) {
                        continue;
                    }
                    let energy = plan.cost_at(p.assignment.granted).energy_at(lvl);
                    let power = Self::power_milli_of(energy, p.duration_cycles);
                    if power > 0 && self.overlap_power(p.start_cycle, finish) + power > cap {
                        continue;
                    }
                    let better = chosen.as_ref().is_none_or(|(_, best, best_energy)| {
                        energy < *best_energy
                            || (energy == *best_energy && finish < best.finish_cycle())
                    });
                    if better {
                        chosen = Some((idx, p, energy));
                    }
                }
            }
        }
        let Some((device, placement, _)) = chosen else {
            let best_latency = if best_latency == u64::MAX {
                0
            } else {
                best_latency
            };
            let deadline = deadline_cycles.unwrap_or(0);
            self.rejections += 1;
            self.observe_latency(best_latency);
            self.emit(FleetEvent::Reject {
                deadline_cycles: deadline,
                best_latency_cycles: best_latency,
            });
            return FleetOutcome::Rejected(DeadlineMiss {
                deadline_cycles: deadline,
                best_latency_cycles: best_latency,
            });
        };
        self.emit(FleetEvent::Route {
            device,
            start_cycle: placement.start_cycle,
            granted: placement.assignment.granted,
        });
        self.devices[device].ledger.apply(&placement);
        self.track_committed(plan, &placement);
        self.lower_freq_changes(device);
        let placed = FleetPlacement {
            device,
            placement,
            arrival_cycle: reference,
        };
        self.observe_latency(placed.latency_cycles());
        FleetOutcome::Placed(placed)
    }

    /// Closed-form average power of `energy_pj` spread over
    /// `duration_cycles` device cycles, in milli-mW (pJ over ns is
    /// mW exactly). Zero for zero-energy plans — the planner-free
    /// paths carry no annotation and never register cap pressure.
    fn power_milli_of(energy_pj: u64, duration_cycles: u64) -> u64 {
        if energy_pj == 0 || duration_cycles == 0 {
            0
        } else {
            (energy_pj as f64 * 1000.0 / (duration_cycles as f64 * PERIOD_NS)).round() as u64
        }
    }

    /// Sum of tracked placement powers overlapping `[start, finish)`,
    /// in milli-mW — a conservative concurrency reading (placements
    /// overlapping anywhere in the window count in full).
    fn overlap_power(&self, start: u64, finish: u64) -> u64 {
        self.active_power
            .iter()
            .filter(|&&(s, f, _)| s < finish && f > start)
            .map(|&(_, _, p)| p)
            .sum()
    }

    /// Books a committed placement's energy and power into the fleet
    /// account and the cap concurrency set. Pure bookkeeping — no
    /// scheduling decision reads it until a cap is configured.
    fn track_committed(&mut self, plan: &BudgetPlan, placement: &Placement) {
        let energy = plan
            .cost_at(placement.assignment.granted)
            .energy_at(placement.freq_level);
        self.planned_energy_pj += energy;
        let power = Self::power_milli_of(energy, placement.duration_cycles);
        if power > 0 {
            let concurrent =
                self.overlap_power(placement.start_cycle, placement.finish_cycle()) + power;
            self.peak_power_milli_mw = self.peak_power_milli_mw.max(concurrent);
            self.active_power
                .push((placement.start_cycle, placement.finish_cycle(), power));
        }
    }

    /// Drains the device ledger's committed governor transitions and
    /// lowers them into [`FleetEvent::FreqChange`]s (drained even
    /// when recording is off so the pending list stays bounded).
    fn lower_freq_changes(&mut self, device: usize) {
        for fc in self.devices[device].ledger.drain_freq_changes() {
            self.emit(FleetEvent::FreqChange {
                device,
                array: fc.array,
                level: fc.level,
                cycle: fc.cycle,
            });
        }
    }

    /// Folds one admission's latency into the backlog signal.
    fn observe_latency(&mut self, latency: u64) {
        self.recent_latency = (self.recent_latency * 3 + latency) / 4;
    }

    /// Active devices with their indices, in deterministic id order.
    fn active_iter(&self) -> impl Iterator<Item = (usize, &DeviceState)> {
        self.devices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.status == DeviceStatus::Active)
    }

    /// Retires drained devices and takes at most one elastic action
    /// (join or drain) per fleet-clock boundary.
    fn elastic_step(&mut self) {
        let floor = self.floor();
        for dev in &mut self.devices {
            if dev.status == DeviceStatus::Draining && dev.ledger.makespan() <= floor {
                dev.status = DeviceStatus::Retired;
            }
        }
        let Some(policy) = self.config.elastic else {
            return;
        };
        // One action per boundary: act only when the floor has moved
        // past the last action's clock (or on the very first look).
        if self.last_boundary.is_some_and(|b| floor <= b) {
            return;
        }
        let active: Vec<usize> = self
            .devices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.status == DeviceStatus::Active)
            .map(|(i, _)| i)
            .collect();
        let backlog = self.recent_latency;
        let min = policy.min_devices.max(1);
        let max = policy.max_devices.max(min);
        if backlog > policy.grow_backlog_cycles && active.len() < max {
            // Revive the lowest-id draining device, else a fresh
            // ledger joins with its arrays free at the current clock.
            let joined = if let Some(idx) = self
                .devices
                .iter()
                .position(|d| d.status == DeviceStatus::Draining)
            {
                self.devices[idx].status = DeviceStatus::Active;
                idx
            } else {
                self.devices.push(DeviceState {
                    ledger: Self::build_ledger(&self.config, floor),
                    status: DeviceStatus::Active,
                    joined_at_cycle: floor,
                    health: DeviceHealth::default(),
                });
                self.devices.len() - 1
            };
            self.emit(FleetEvent::Revive {
                device: joined,
                cycle: floor,
            });
            self.joins += 1;
            self.peak_devices = self.peak_devices.max(self.active_devices());
            self.last_boundary = Some(floor);
        } else if backlog < policy.shrink_backlog_cycles && active.len() > min {
            // Drain the highest-id active device (the latest joiner):
            // it takes no new grants and retires at its makespan.
            let idx = *active.last().expect("active.len() > min >= 1");
            self.devices[idx].status = DeviceStatus::Draining;
            self.emit(FleetEvent::Drain {
                device: idx,
                cycle: floor,
            });
            self.drains += 1;
            self.last_boundary = Some(floor);
        } else {
            self.last_boundary = Some(floor);
        }
    }

    /// Records a successful execution on `device`: the circuit
    /// breaker resets to Healthy. Quarantined devices are untouched —
    /// only a probe revives them.
    pub fn report_success(&mut self, device: usize) {
        if let Some(dev) = self.devices.get_mut(device) {
            if dev.status != DeviceStatus::Quarantined {
                dev.health.consecutive_failures = 0;
            }
        }
    }

    /// Records a failed execution attempt on `device`. At
    /// [`QUARANTINE_THRESHOLD`] consecutive failures the breaker
    /// opens: the device is quarantined and takes no new grants until
    /// a probe heals it — unless it is the fleet's last active
    /// device, which stays Suspect so the fleet can still answer.
    /// Returns `true` when this call quarantined the device.
    pub fn report_failure(&mut self, device: usize) -> bool {
        let floor = self.floor();
        let Some(dev) = self.devices.get_mut(device) else {
            return false;
        };
        if dev.status != DeviceStatus::Active {
            return false;
        }
        dev.health.consecutive_failures = dev.health.consecutive_failures.saturating_add(1);
        if dev.health.consecutive_failures < QUARANTINE_THRESHOLD {
            return false;
        }
        if self.active_devices() <= 1 {
            return false;
        }
        let dev = &mut self.devices[device];
        dev.status = DeviceStatus::Quarantined;
        dev.health.quarantined_at = Some(floor);
        dev.health.last_probe_floor = None;
        dev.health.probes = 0;
        self.quarantines += 1;
        self.emit(FleetEvent::Quarantine {
            device,
            cycle: floor,
        });
        true
    }

    /// Unwinds a committed placement on `device` so the work can
    /// re-route (used when the device is quarantined with the grant
    /// still pending). Delegates to [`ArrayLedger::revert`]; returns
    /// its cleanliness flag. The device account stays an exact census
    /// of live grants either way.
    pub fn rollback(&mut self, device: usize, placement: &Placement) -> bool {
        let Some(dev) = self.devices.get_mut(device) else {
            return false;
        };
        let clean = dev.ledger.revert(placement);
        // The reverted grant no longer holds device time: release its
        // entry in the power concurrency set (peak and planned energy
        // stay gross — they record what was scheduled).
        if let Some(pos) = self
            .active_power
            .iter()
            .position(|&(s, f, _)| s == placement.start_cycle && f == placement.finish_cycle())
        {
            self.active_power.remove(pos);
        }
        self.rollbacks += 1;
        self.emit(FleetEvent::Rollback {
            device,
            start_cycle: placement.start_cycle,
        });
        clean
    }

    /// Quarantined devices due a probe: at most one probe per device
    /// per fleet-floor boundary, so the cadence is deterministic and
    /// driven by the fleet making progress elsewhere. Report each
    /// probe's outcome with [`record_probe`](Self::record_probe).
    #[must_use]
    pub fn probe_candidates(&self) -> Vec<usize> {
        let floor = self.floor();
        self.devices
            .iter()
            .enumerate()
            .filter(|(_, d)| {
                d.status == DeviceStatus::Quarantined
                    && d.health.last_probe_floor.is_none_or(|b| floor > b)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Records a probe outcome for a quarantined device. A healthy
    /// probe revives it: status back to Active, breaker reset, a
    /// [`FleetEvent::Revive`] emitted. An unhealthy probe leaves it
    /// quarantined until the next floor boundary.
    pub fn record_probe(&mut self, device: usize, healthy: bool) {
        let floor = self.floor();
        let Some(dev) = self.devices.get_mut(device) else {
            return;
        };
        if dev.status != DeviceStatus::Quarantined {
            return;
        }
        dev.health.probes = dev.health.probes.saturating_add(1);
        dev.health.last_probe_floor = Some(floor);
        self.probes += 1;
        self.emit(FleetEvent::Probe {
            device,
            cycle: floor,
            healthy,
        });
        if healthy {
            let dev = &mut self.devices[device];
            dev.status = DeviceStatus::Active;
            dev.health = DeviceHealth::default();
            self.revivals += 1;
            self.peak_devices = self.peak_devices.max(self.active_devices());
            self.emit(FleetEvent::Revive {
                device,
                cycle: floor,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempus_core::shard::WidthCost;

    /// A perfectly scaling cost curve: `total / w` cycles at width w.
    fn linear_plan(arrays: usize, max: usize, total: u64) -> BudgetPlan {
        let widths: Vec<WidthCost> = (1..=max)
            .map(|w| WidthCost {
                arrays: w,
                used: w,
                critical_path_cycles: total / w as u64,
                reduction_cycles: 0,
                total_array_cycles: total,
                dynamic_energy_pj: 0,
                static_energy_pj: 0,
            })
            .collect();
        BudgetPlan {
            arrays,
            critical_path_cycles: widths[arrays - 1].critical_path_cycles,
            widths,
        }
    }

    fn place(fleet: &mut FleetScheduler, plan: &BudgetPlan) -> FleetPlacement {
        match fleet.admit(plan, None) {
            FleetOutcome::Placed(p) => p,
            FleetOutcome::Rejected(m) => panic!("unexpected rejection: {m:?}"),
        }
    }

    #[test]
    fn one_device_fleet_matches_the_ledger_exactly() {
        let mut fleet = FleetScheduler::single_device(4);
        let mut ledger = ArrayLedger::new(4);
        let plans = [
            BudgetPlan::single(300),
            linear_plan(4, 4, 2000),
            BudgetPlan::single(50),
            linear_plan(2, 3, 600),
            linear_plan(3, 3, 1200),
        ];
        for plan in &plans {
            let fleet_p = place(&mut fleet, plan);
            let direct = ledger.place(plan, 0);
            assert_eq!(fleet_p.device, 0);
            assert_eq!(fleet_p.placement, direct);
        }
        assert_eq!(fleet.summary().combined(), ledger.summary());
    }

    #[test]
    fn picker_routes_to_the_earliest_finishing_device() {
        let mut fleet = FleetScheduler::new(FleetConfig::new(2, 2));
        // Fill device 0, then the picker must send the next job to
        // the idle device 1.
        let a = place(&mut fleet, &linear_plan(2, 2, 1000));
        assert_eq!(a.device, 0, "ties break to the lowest id");
        let b = place(&mut fleet, &linear_plan(2, 2, 1000));
        assert_eq!(b.device, 1);
        assert_eq!(b.placement.start_cycle, 0);
        // Both busy until 500 — back to device 0 on the tie.
        let c = place(&mut fleet, &linear_plan(2, 2, 1000));
        assert_eq!(c.device, 0);
        assert_eq!(c.placement.start_cycle, 500);
    }

    #[test]
    fn backfill_reclaims_gaps_without_delaying_grants() {
        let config = FleetConfig::new(1, 4).with_backfill();
        let mut fleet = FleetScheduler::new(config);
        // Open a gather gap: three short jobs, one long, then a wide
        // job that waits for all four arrays.
        for _ in 0..3 {
            let _ = place(&mut fleet, &BudgetPlan::single(100));
        }
        let _ = place(&mut fleet, &BudgetPlan::single(400));
        let _ = place(&mut fleet, &linear_plan(4, 4, 4000));
        let clocks: Vec<u64> = fleet.devices()[0].ledger.busy_clocks().to_vec();
        let idle_before = fleet.summary().combined().idle_gap_cycles;
        // A 200-cycle job fits the [100, 400) gaps: it backfills and
        // no granted job's finish moves.
        let p = place(&mut fleet, &BudgetPlan::single(200));
        assert!(p.placement.backfilled);
        assert_eq!(p.placement.start_cycle, 100);
        assert_eq!(fleet.devices()[0].ledger.busy_clocks(), clocks.as_slice());
        let summary = fleet.summary();
        assert_eq!(summary.backfills(), 1);
        assert_eq!(summary.combined().idle_gap_cycles, idle_before - 200);
    }

    #[test]
    fn deadline_admission_narrows_or_rejects() {
        let mut fleet = FleetScheduler::new(FleetConfig::new(1, 4));
        // Array clocks 0,0,0,1000: a wide job gathering all 4 starts
        // at 1000.
        let _ = place(&mut fleet, &BudgetPlan::single(1000));
        // Unconstrained, the 1200-cycle job shrinks to 3 arrays and
        // finishes at 400 — comfortably inside a 500-cycle deadline.
        let plan = linear_plan(4, 4, 1200);
        match fleet.clone().admit(&plan, Some(500)) {
            FleetOutcome::Placed(p) => {
                assert_eq!(p.placement.assignment.granted, 3);
                assert!(p.latency_cycles() <= 500);
            }
            FleetOutcome::Rejected(m) => panic!("should narrow, got {m:?}"),
        }
        // A 300-cycle deadline is unattainable at any width: width 4
        // waits 1000 cycles, widths 1-3 run ≥ 400 cycles.
        match fleet.admit(&plan, Some(300)) {
            FleetOutcome::Placed(p) => panic!("should reject, got {p:?}"),
            FleetOutcome::Rejected(m) => {
                assert_eq!(m.deadline_cycles, 300);
                assert_eq!(m.best_latency_cycles, 400);
            }
        }
        assert_eq!(fleet.summary().rejections, 1);
    }

    #[test]
    fn elastic_grows_on_backlog_and_drains_when_idle() {
        let policy = ElasticPolicy {
            min_devices: 1,
            max_devices: 3,
            grow_backlog_cycles: 500,
            shrink_backlog_cycles: 100,
        };
        let mut fleet = FleetScheduler::new(FleetConfig::new(1, 2).with_elastic(policy));
        // Pile on backlog: each 1000-cycle single-array job stacks.
        for _ in 0..6 {
            let _ = place(&mut fleet, &BudgetPlan::single(1000));
        }
        // The floor has advanced and backlog/device is deep: the next
        // admissions trigger joins up to the budget.
        for _ in 0..6 {
            let _ = place(&mut fleet, &BudgetPlan::single(1000));
        }
        let summary = fleet.summary();
        assert!(summary.joins >= 1, "backlog should grow the fleet");
        assert!(summary.peak_devices >= 2);
        assert!(summary.active_devices <= 3, "device budget holds");
        // Joined devices start at the fleet clock, not at zero.
        for dev in &fleet.devices()[1..] {
            assert!(dev.joined_at_cycle > 0);
            assert!(dev.ledger.horizon() >= dev.joined_at_cycle);
        }
        // Light traffic drains the extras back toward the minimum:
        // trickle tiny jobs so boundaries keep advancing.
        for _ in 0..40 {
            let _ = place(&mut fleet, &BudgetPlan::single(10));
        }
        assert!(fleet.summary().drains >= 1, "idle fleet should shrink");
    }

    #[test]
    fn open_loop_arrivals_charge_queueing_delay_to_the_slo() {
        let mut fleet = FleetScheduler::new(FleetConfig::new(1, 1));
        // Overload: 1000-cycle jobs arriving every 400 cycles. The
        // first meets its 1500-cycle deadline; by the third the
        // backlog alone blows it, and `admit_at` rejects while
        // `admit`'s floor-relative clock would have admitted forever.
        let plan = BudgetPlan::single(1000);
        let mut arrival = 0;
        let mut placed = 0u64;
        let mut rejected = 0u64;
        for _ in 0..8 {
            match fleet.admit_at(&plan, Some(1500), arrival) {
                FleetOutcome::Placed(p) => {
                    assert!(p.placement.start_cycle >= arrival);
                    assert!(p.latency_cycles() <= 1500);
                    placed += 1;
                }
                FleetOutcome::Rejected(m) => {
                    assert!(m.best_latency_cycles > 1500);
                    rejected += 1;
                }
            }
            arrival += 400;
        }
        assert!(placed >= 2, "an empty fleet must admit");
        assert!(rejected >= 1, "overload must reject");
        // A late arrival into an idle fleet starts at its arrival,
        // not at the ledger horizon.
        let makespan = fleet.devices()[0].ledger.makespan();
        let p = match fleet.admit_at(&plan, None, makespan + 5000) {
            FleetOutcome::Placed(p) => p,
            FleetOutcome::Rejected(m) => panic!("{m:?}"),
        };
        assert_eq!(p.placement.start_cycle, makespan + 5000);
        assert_eq!(p.latency_cycles(), 1000);
    }

    #[test]
    fn recording_logs_decisions_without_changing_them() {
        let config = FleetConfig::new(2, 4).with_backfill();
        let mut silent = FleetScheduler::new(config.clone());
        let mut recorded = FleetScheduler::new(config);
        recorded.set_recording(true);
        let plans = [
            BudgetPlan::single(100),
            BudgetPlan::single(400),
            linear_plan(4, 4, 4000),
            BudgetPlan::single(200),
        ];
        for plan in &plans {
            let a = place(&mut silent, plan);
            let b = place(&mut recorded, plan);
            assert_eq!(a, b, "recording must not perturb placement");
        }
        assert!(silent.drain_events().is_empty(), "off by default");
        let events = recorded.drain_events();
        // Every admission previews both devices and routes once.
        let previews = events
            .iter()
            .filter(|e| matches!(e, FleetEvent::Preview { .. }))
            .count();
        let routes = events
            .iter()
            .filter(|e| matches!(e, FleetEvent::Route { .. }))
            .count();
        assert_eq!(previews, plans.len() * 2);
        assert_eq!(routes, plans.len());
        assert!(recorded.drain_events().is_empty(), "drain takes all");
        // A deadline miss logs a rejection.
        let miss = linear_plan(4, 4, 4000);
        let _ = recorded.admit(&miss, Some(1));
        assert!(recorded
            .drain_events()
            .iter()
            .any(|e| matches!(e, FleetEvent::Reject { .. })));
    }

    #[test]
    fn circuit_breaker_quarantines_after_consecutive_failures() {
        let mut fleet = FleetScheduler::new(FleetConfig::new(2, 2));
        fleet.set_recording(true);
        // Two failures leave the device Suspect and still routable.
        assert!(!fleet.report_failure(1));
        assert!(!fleet.report_failure(1));
        assert_eq!(fleet.devices()[1].health_phase(), HealthPhase::Suspect);
        assert_eq!(fleet.active_devices(), 2);
        // A success in between resets the breaker.
        fleet.report_success(1);
        assert_eq!(fleet.devices()[1].health_phase(), HealthPhase::Healthy);
        // Three consecutive failures open the circuit.
        assert!(!fleet.report_failure(1));
        assert!(!fleet.report_failure(1));
        assert!(fleet.report_failure(1));
        assert_eq!(fleet.devices()[1].health_phase(), HealthPhase::Quarantined);
        assert_eq!(fleet.active_devices(), 1);
        assert_eq!(fleet.summary().quarantines, 1);
        // All new work routes around the quarantined device.
        for _ in 0..4 {
            assert_eq!(place(&mut fleet, &BudgetPlan::single(100)).device, 0);
        }
        assert!(fleet
            .drain_events()
            .iter()
            .any(|e| matches!(e, FleetEvent::Quarantine { device: 1, .. })));
    }

    #[test]
    fn last_active_device_is_never_quarantined() {
        let mut fleet = FleetScheduler::single_device(2);
        for _ in 0..10 {
            assert!(!fleet.report_failure(0), "last device must keep serving");
        }
        assert_eq!(fleet.devices()[0].health_phase(), HealthPhase::Suspect);
        assert_eq!(fleet.active_devices(), 1);
        let _ = place(&mut fleet, &BudgetPlan::single(100));
    }

    #[test]
    fn rollback_reopens_capacity_for_rerouting() {
        let mut fleet = FleetScheduler::new(FleetConfig::new(2, 2));
        // Park both devices at cycle 500, then land one more job on
        // device 0 (the tie-break winner).
        let _ = place(&mut fleet, &linear_plan(2, 2, 1000));
        let _ = place(&mut fleet, &linear_plan(2, 2, 1000));
        let victim = place(&mut fleet, &linear_plan(2, 2, 1000));
        assert_eq!(victim.device, 0);
        let census_before = fleet.summary().combined().placements;
        // Quarantine device 0 and unwind its pending grant.
        for _ in 0..QUARANTINE_THRESHOLD {
            fleet.report_failure(0);
        }
        assert!(fleet.rollback(victim.device, &victim.placement));
        let summary = fleet.summary();
        assert_eq!(summary.combined().placements, census_before - 1);
        assert_eq!(summary.rollbacks, 1);
        // The re-routed job lands on the surviving device at the same
        // start its sibling got there — no capacity was orphaned.
        let rerouted = place(&mut fleet, &linear_plan(2, 2, 1000));
        assert_eq!(rerouted.device, 1);
        assert_eq!(rerouted.placement.start_cycle, 500);
    }

    #[test]
    fn quarantine_probe_revive_cycle_is_deterministic() {
        let mut fleet = FleetScheduler::new(FleetConfig::new(2, 2));
        fleet.set_recording(true);
        for _ in 0..QUARANTINE_THRESHOLD {
            fleet.report_failure(1);
        }
        assert_eq!(fleet.devices()[1].status, DeviceStatus::Quarantined);
        // First probe is due immediately; a sick probe holds the
        // quarantine and blocks re-probing until the floor moves.
        assert_eq!(fleet.probe_candidates(), vec![1]);
        fleet.record_probe(1, false);
        assert!(fleet.probe_candidates().is_empty());
        // Work on the healthy device advances the floor → probe due.
        let _ = place(&mut fleet, &linear_plan(2, 2, 1000));
        let _ = place(&mut fleet, &linear_plan(2, 2, 1000));
        assert_eq!(fleet.probe_candidates(), vec![1]);
        fleet.record_probe(1, true);
        assert_eq!(fleet.devices()[1].status, DeviceStatus::Active);
        assert_eq!(fleet.devices()[1].health_phase(), HealthPhase::Healthy);
        let summary = fleet.summary();
        assert_eq!(summary.probes, 2);
        assert_eq!(summary.revivals, 1);
        // The trace tells the whole story in order.
        let events = fleet.drain_events();
        let tale: Vec<&FleetEvent> = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    FleetEvent::Quarantine { .. }
                        | FleetEvent::Probe { .. }
                        | FleetEvent::Revive { .. }
                )
            })
            .collect();
        assert!(matches!(tale[0], FleetEvent::Quarantine { device: 1, .. }));
        assert!(matches!(
            tale[1],
            FleetEvent::Probe {
                device: 1,
                healthy: false,
                ..
            }
        ));
        assert!(matches!(
            tale[2],
            FleetEvent::Probe {
                device: 1,
                healthy: true,
                ..
            }
        ));
        assert!(matches!(tale[3], FleetEvent::Revive { device: 1, .. }));
        // Revived, the device takes work again.
        let p = place(&mut fleet, &BudgetPlan::single(100));
        assert_eq!(p.device, 1);
    }

    /// A single-width plan annotated with the closed-form energy
    /// split: 1000 critical-path cycles, 97 nJ dynamic + 3 nJ static
    /// — 25 mW average power at the nominal clock (100 000 pJ over
    /// 4000 ns).
    fn energy_plan() -> BudgetPlan {
        let mut plan = BudgetPlan::single(1000);
        plan.widths[0].dynamic_energy_pj = 97_000;
        plan.widths[0].static_energy_pj = 3_000;
        plan
    }

    #[test]
    fn uncapped_fleet_tracks_peak_power_without_changing_placements() {
        let mut fleet = FleetScheduler::new(FleetConfig::new(1, 1));
        let p = place(&mut fleet, &energy_plan());
        assert_eq!(p.placement.freq_level, 0, "no cap, no governor: nominal");
        assert_eq!(p.placement.duration_cycles, 1000);
        let summary = fleet.summary();
        assert!((summary.peak_power_mw - 25.0).abs() < 1e-9);
        assert_eq!(summary.planned_energy_pj, 100_000);
    }

    #[test]
    fn power_cap_picks_the_cheapest_feasible_ladder_level() {
        // Cap at 60% of the 25 mW nominal peak. L0 (25 mW) and L1
        // (~16.4 mW) blow the 15 mW budget; L3 meets it but its 2×
        // stretch blows the 1.5× deadline; L2 (~10.9 mW, 1500
        // cycles) is the unique feasible point — and the admission
        // must find it.
        let mut fleet = FleetScheduler::new(FleetConfig::new(1, 1).with_power_cap(15.0));
        fleet.set_recording(true);
        let plan = energy_plan();
        let p = match fleet.admit(&plan, Some(1500)) {
            FleetOutcome::Placed(p) => p,
            FleetOutcome::Rejected(m) => panic!("should downclock to fit the cap, got {m:?}"),
        };
        assert_eq!(p.placement.freq_level, 2);
        assert_eq!(p.placement.duration_cycles, 1500);
        assert_eq!(p.placement.nominal_duration_cycles, 1000);
        // L2 energy: 97 000 × 0.8² + 3 000 × 1.5 × 0.8 = 65 680 pJ —
        // a 34% saving over nominal, under a 25% latency-bounded cap.
        let summary = fleet.summary();
        assert_eq!(summary.planned_energy_pj, 65_680);
        assert!(summary.peak_power_mw < 15.0 + 1e-9);
        assert!(fleet
            .drain_events()
            .iter()
            .any(|e| matches!(e, FleetEvent::Route { .. })));
    }

    #[test]
    fn power_cap_rejects_when_no_ladder_point_is_feasible() {
        let mut fleet = FleetScheduler::new(FleetConfig::new(1, 1).with_power_cap(15.0));
        let plan = energy_plan();
        let _ = place(&mut fleet, &plan);
        // A 1200-cycle deadline leaves only L0/L1 fast enough, and
        // both blow the cap: the admission must reject, reporting the
        // best latency irrespective of power (L0's 1000 cycles — the
        // cap, not the clock, blocked it).
        match fleet.admit(&plan, Some(1200)) {
            FleetOutcome::Placed(p) => panic!("should reject under the cap, got {p:?}"),
            FleetOutcome::Rejected(m) => {
                assert_eq!(m.deadline_cycles, 1200);
                assert_eq!(m.best_latency_cycles, 1000);
            }
        }
        assert_eq!(fleet.summary().rejections, 1);
    }

    #[test]
    fn cap_admission_without_deadline_or_pressure_stays_nominal() {
        // Energy-first picking never pays latency for nothing: with
        // the cap slack (50 mW > 25 mW) the lowest-energy point is
        // still the deepest level, so a *deadline equal to the
        // nominal latency* must pin the pick back to L0.
        let mut fleet = FleetScheduler::new(FleetConfig::new(1, 1).with_power_cap(50.0));
        let p = match fleet.admit(&energy_plan(), Some(1000)) {
            FleetOutcome::Placed(p) => p,
            FleetOutcome::Rejected(m) => panic!("{m:?}"),
        };
        assert_eq!(p.placement.freq_level, 0);
        assert_eq!(p.placement.duration_cycles, 1000);
    }

    #[test]
    fn governor_threads_into_every_device_ledger_and_surfaces_events() {
        let policy = tempus_runtime::GovernorPolicy::edge_default();
        let config = FleetConfig::new(1, 1).with_freq_governor(policy);
        let mut fleet = FleetScheduler::new(config);
        fleet.set_recording(true);
        assert!(fleet.devices()[0].ledger.governor().is_some());
        // Sparse open-loop arrivals: the lone array idles ~900 of
        // every 1000 cycles, so the idle EWMA crosses the governor's
        // down-threshold (the ledger test's trace, driven through the
        // fleet).
        for i in 0..10u64 {
            match fleet.admit_at(&BudgetPlan::single(100), None, i * 1000) {
                FleetOutcome::Placed(_) => {}
                FleetOutcome::Rejected(m) => panic!("{m:?}"),
            }
        }
        let combined = fleet.summary().combined();
        assert!(
            combined.freq_changes >= 1,
            "idle-heavy array should downclock"
        );
        assert!(combined.level_residency[1..].iter().sum::<u64>() > 0);
        assert!(fleet
            .drain_events()
            .iter()
            .any(|e| matches!(e, FleetEvent::FreqChange { device: 0, .. })));
    }

    #[test]
    fn golden_multi_device_placements_replay() {
        // Deterministic replay: the same admission sequence yields
        // the same (device, start, granted) triples, run after run.
        let run = || {
            let mut fleet = FleetScheduler::new(FleetConfig::new(3, 2).with_backfill());
            let plans = [
                linear_plan(2, 2, 800),
                BudgetPlan::single(100),
                linear_plan(2, 2, 600),
                BudgetPlan::single(900),
                linear_plan(2, 2, 1000),
                BudgetPlan::single(50),
            ];
            plans
                .iter()
                .map(|p| {
                    let placed = match fleet.admit(p, None) {
                        FleetOutcome::Placed(placed) => placed,
                        FleetOutcome::Rejected(m) => panic!("{m:?}"),
                    };
                    (
                        placed.device,
                        placed.placement.start_cycle,
                        placed.placement.assignment.granted,
                    )
                })
                .collect::<Vec<_>>()
        };
        let first = run();
        assert_eq!(first, run());
        // Jobs spread across the three devices.
        let devices: std::collections::BTreeSet<usize> = first.iter().map(|&(d, _, _)| d).collect();
        assert_eq!(devices.len(), 3);
    }
}
