//! Integer precisions, 2s-unary temporal encoding and golden arithmetic
//! models for the Tempus Core reproduction.
//!
//! This crate is the arithmetic foundation of the workspace. It defines:
//!
//! * [`IntPrecision`] — the low integer precisions the paper evaluates
//!   (INT2 / INT4 / INT8) together with their ranges and worst-case
//!   temporal latencies;
//! * [`TwosUnaryStream`] — the *2s-unary* temporal encoding of
//!   tubGEMM / Tempus Core, where every pulse carries a value of 2
//!   (except a final odd pulse of 1), halving stream length relative to
//!   plain unary;
//! * golden (combinational) models of the [`tub`] multiplier and the
//!   binary multiplier, plus [`dot`] products and [`adder_tree`]
//!   reductions used as bit-exact references by the cycle-accurate
//!   simulators in `tempus-nvdla` and `tempus-core`.
//!
//! # Example
//!
//! ```
//! use tempus_arith::{IntPrecision, TwosUnaryStream, tub};
//!
//! # fn main() -> Result<(), tempus_arith::ArithError> {
//! let prec = IntPrecision::Int8;
//! let stream = TwosUnaryStream::encode(-37, prec)?;
//! // ceil(37 / 2) pulses: eighteen 2-valued pulses and one 1-valued pulse.
//! assert_eq!(stream.cycles(), 19);
//! assert_eq!(stream.decode(), -37);
//!
//! // The tub multiplier accumulates the binary operand once per pulse.
//! assert_eq!(tub::multiply(113, -37, prec)?, 113 * -37);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adder_tree;
pub mod binary;
pub mod dot;
mod error;
pub mod plain_unary;
mod precision;
pub mod tub;
mod twos_unary;

pub use error::ArithError;
pub use precision::IntPrecision;
pub use twos_unary::{Pulse, PulseIter, Sign, TwosUnaryStream};
