use std::error::Error;
use std::fmt;

use crate::IntPrecision;

/// Error type for arithmetic operations in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithError {
    /// A value does not fit in the requested integer precision.
    OutOfRange {
        /// The offending value.
        value: i64,
        /// The precision whose range was violated.
        precision: IntPrecision,
    },
    /// An accumulation overflowed the accumulator width.
    AccumulatorOverflow {
        /// Width of the accumulator in bits.
        acc_bits: u32,
    },
    /// Operand slices passed to a dot product differ in length.
    LengthMismatch {
        /// Length of the left operand.
        lhs: usize,
        /// Length of the right operand.
        rhs: usize,
    },
}

impl fmt::Display for ArithError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArithError::OutOfRange { value, precision } => write!(
                f,
                "value {value} does not fit in {precision} (range {}..={})",
                precision.min_value(),
                precision.max_value()
            ),
            ArithError::AccumulatorOverflow { acc_bits } => {
                write!(f, "accumulation overflowed a {acc_bits}-bit accumulator")
            }
            ArithError::LengthMismatch { lhs, rhs } => {
                write!(f, "operand lengths differ: {lhs} vs {rhs}")
            }
        }
    }
}

impl Error for ArithError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_value_and_range() {
        let err = ArithError::OutOfRange {
            value: 300,
            precision: IntPrecision::Int8,
        };
        let msg = err.to_string();
        assert!(msg.contains("300"));
        assert!(msg.contains("-128"));
        assert!(msg.contains("127"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArithError>();
    }

    #[test]
    fn length_mismatch_display() {
        let err = ArithError::LengthMismatch { lhs: 3, rhs: 5 };
        assert_eq!(err.to_string(), "operand lengths differ: 3 vs 5");
    }
}
