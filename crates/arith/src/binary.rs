//! Golden model of the binary (conventional two's complement) multiply
//! path used by NVDLA's CMAC unit.
//!
//! In silicon this is a DesignWare-elaborated array/Booth multiplier; the
//! functional contract is simply the exact signed product, so the golden
//! model is trivial — its value is in the validation and in mirroring the
//! RTL's wrap/saturate behaviours at reduced output widths.

use crate::{ArithError, IntPrecision};

/// Exact signed product of two operands validated at `precision`.
///
/// ```
/// use tempus_arith::{binary, IntPrecision};
///
/// # fn main() -> Result<(), tempus_arith::ArithError> {
/// assert_eq!(binary::multiply(-128, 127, IntPrecision::Int8)?, -16256);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`ArithError::OutOfRange`] when either operand exceeds
/// `precision`.
pub fn multiply(a: i32, b: i32, precision: IntPrecision) -> Result<i32, ArithError> {
    precision.check(a)?;
    precision.check(b)?;
    Ok(a * b)
}

/// Product truncated (two's complement wrap) to `out_bits`, mirroring an
/// RTL datapath whose product bus is narrower than `2w`.
///
/// # Errors
///
/// Returns [`ArithError::OutOfRange`] when either operand exceeds
/// `precision`.
pub fn multiply_wrapping(
    a: i32,
    b: i32,
    precision: IntPrecision,
    out_bits: u32,
) -> Result<i32, ArithError> {
    let exact = i64::from(multiply(a, b, precision)?);
    let mask = (1i64 << out_bits) - 1;
    let v = exact & mask;
    Ok(if v >= (1i64 << (out_bits - 1)) {
        (v - (1i64 << out_bits)) as i32
    } else {
        v as i32
    })
}

/// Saturating accumulation into a `acc_bits`-wide two's complement
/// accumulator, as NVDLA's CACC performs on overflow.
///
/// # Panics
///
/// Panics if `acc_bits` is not in `2..=64`.
#[must_use]
pub fn saturating_accumulate(acc: i64, addend: i64, acc_bits: u32) -> i64 {
    assert!((2..=64).contains(&acc_bits), "acc_bits must be 2..=64");
    let max = (1i128 << (acc_bits - 1)) - 1;
    let min = -(1i128 << (acc_bits - 1));
    (i128::from(acc) + i128::from(addend)).clamp(min, max) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_products() {
        let p = IntPrecision::Int8;
        assert_eq!(multiply(-128, -128, p).unwrap(), 16384);
        assert_eq!(multiply(127, -1, p).unwrap(), -127);
        assert!(multiply(128, 1, p).is_err());
    }

    #[test]
    fn wrapping_truncates_like_rtl() {
        let p = IntPrecision::Int8;
        // -128 * -128 = 16384 = 0x4000; wrapped to 15 bits -> -16384.
        assert_eq!(multiply_wrapping(-128, -128, p, 15).unwrap(), -16384);
        // Full 16-bit bus holds the product exactly.
        assert_eq!(multiply_wrapping(-128, -128, p, 16).unwrap(), 16384);
    }

    #[test]
    fn saturating_accumulate_clamps_at_width() {
        // 8-bit accumulator: range -128..=127.
        assert_eq!(saturating_accumulate(120, 10, 8), 127);
        assert_eq!(saturating_accumulate(-120, -10, 8), -128);
        assert_eq!(saturating_accumulate(5, 6, 8), 11);
    }

    #[test]
    fn saturating_accumulate_handles_i64_extremes() {
        assert_eq!(saturating_accumulate(i64::MAX, 1, 64), i64::MAX);
        assert_eq!(saturating_accumulate(i64::MIN, -1, 64), i64::MIN);
    }
}
