//! Golden dot products — the atomic operation both convolution cores
//! compute per PE cell: a 1×1×n feature cube against a cached 1×1×n
//! weight cube, producing one partial sum (§III).

use crate::{adder_tree, tub, ArithError, IntPrecision};

/// Exact dot product of validated operands, reduced through the same
/// balanced tree the hardware uses.
///
/// ```
/// use tempus_arith::{dot, IntPrecision};
///
/// # fn main() -> Result<(), tempus_arith::ArithError> {
/// let acts = [1, -2, 3, 4];
/// let wts = [5, 6, -7, 0];
/// assert_eq!(dot::binary(&acts, &wts, IntPrecision::Int8)?, 1*5 - 2*6 - 3*7);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`ArithError::LengthMismatch`] when slices differ in length
/// and [`ArithError::OutOfRange`] when any operand exceeds `precision`.
pub fn binary(
    activations: &[i32],
    weights: &[i32],
    precision: IntPrecision,
) -> Result<i64, ArithError> {
    check_lengths(activations, weights)?;
    let mut terms = Vec::with_capacity(activations.len());
    for (&a, &w) in activations.iter().zip(weights) {
        terms.push(i64::from(crate::binary::multiply(a, w, precision)?));
    }
    adder_tree::reduce(&terms)
}

/// Dot product computed the tub way: every weight is temporally encoded
/// and folded pulse-by-pulse. Bit-exact equal to [`binary`]; the
/// equality is the paper's "maintaining computational accuracy" claim
/// and is enforced by tests and property tests.
///
/// # Errors
///
/// Returns [`ArithError::LengthMismatch`] when slices differ in length
/// and [`ArithError::OutOfRange`] when any operand exceeds `precision`.
pub fn tub(
    activations: &[i32],
    weights: &[i32],
    precision: IntPrecision,
) -> Result<i64, ArithError> {
    check_lengths(activations, weights)?;
    let mut terms = Vec::with_capacity(activations.len());
    for (&a, &w) in activations.iter().zip(weights) {
        terms.push(i64::from(tub::multiply(a, w, precision)?));
    }
    adder_tree::reduce(&terms)
}

/// Latency in cycles for a tub PE cell to produce this dot product:
/// bounded by the largest weight magnitude in the cell.
///
/// # Errors
///
/// Returns [`ArithError::OutOfRange`] when any weight exceeds
/// `precision`.
pub fn tub_latency(weights: &[i32], precision: IntPrecision) -> Result<u32, ArithError> {
    tub::array_latency(weights, precision)
}

fn check_lengths(a: &[i32], b: &[i32]) -> Result<(), ArithError> {
    if a.len() == b.len() {
        Ok(())
    } else {
        Err(ArithError::LengthMismatch {
            lhs: a.len(),
            rhs: b.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tub_equals_binary_on_grid() {
        let p = IntPrecision::Int4;
        let acts: Vec<i32> = (-8..8).collect();
        let wts: Vec<i32> = (-8..8).rev().collect();
        assert_eq!(
            tub(&acts, &wts, p).unwrap(),
            binary(&acts, &wts, p).unwrap()
        );
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let p = IntPrecision::Int8;
        assert_eq!(
            binary(&[1, 2], &[1], p),
            Err(ArithError::LengthMismatch { lhs: 2, rhs: 1 })
        );
        assert_eq!(
            tub(&[1], &[1, 2], p),
            Err(ArithError::LengthMismatch { lhs: 1, rhs: 2 })
        );
    }

    #[test]
    fn empty_dot_is_zero() {
        let p = IntPrecision::Int8;
        assert_eq!(binary(&[], &[], p).unwrap(), 0);
        assert_eq!(tub(&[], &[], p).unwrap(), 0);
        assert_eq!(tub_latency(&[], p).unwrap(), 0);
    }

    #[test]
    fn worst_case_int8_cell() {
        let p = IntPrecision::Int8;
        let acts = vec![-128; 16];
        let wts = vec![-128; 16];
        assert_eq!(binary(&acts, &wts, p).unwrap(), 16 * 16384);
        assert_eq!(tub(&acts, &wts, p).unwrap(), 16 * 16384);
        assert_eq!(tub_latency(&wts, p).unwrap(), 64);
    }
}
