//! Plain (classic) unary temporal encoding — the tuGEMM baseline the
//! paper's 2s-unary encoding improves on (§II-B: tubGEMM "employs a
//! unique 2s-unary encoding scheme ... effectively halving the
//! latency" relative to tuGEMM's plain unary).
//!
//! A value of magnitude `m` is a stream of `m` single-valued pulses,
//! so every window is (about) twice as long as under
//! [`crate::TwosUnaryStream`]. The type exists so the encoding
//! comparison in the benches/ablations runs against a real
//! implementation rather than an analytic 2× factor.

use crate::{ArithError, IntPrecision, Sign};

/// A plain-unary temporally encoded signed integer: `|v|` pulses each
/// carrying the value 1.
///
/// ```
/// use tempus_arith::{plain_unary::PlainUnaryStream, IntPrecision, TwosUnaryStream};
///
/// # fn main() -> Result<(), tempus_arith::ArithError> {
/// let tu = PlainUnaryStream::encode(-7, IntPrecision::Int4)?;
/// let tub = TwosUnaryStream::encode(-7, IntPrecision::Int4)?;
/// assert_eq!(tu.cycles(), 7);
/// assert_eq!(tub.cycles(), 4); // 2s-unary halves the stream
/// assert_eq!(tu.decode(), -7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlainUnaryStream {
    sign: Sign,
    pulses: u32,
    precision: IntPrecision,
}

impl PlainUnaryStream {
    /// Encodes `value` at `precision`.
    ///
    /// # Errors
    ///
    /// Returns [`ArithError::OutOfRange`] when `value` is not
    /// representable at `precision`.
    pub fn encode(value: i32, precision: IntPrecision) -> Result<Self, ArithError> {
        precision.check(value)?;
        Ok(PlainUnaryStream {
            sign: if value < 0 {
                Sign::Negative
            } else {
                Sign::Positive
            },
            pulses: value.unsigned_abs(),
            precision,
        })
    }

    /// Stream length in cycles: `|v|` (twice the 2s-unary length, up
    /// to rounding).
    #[must_use]
    pub const fn cycles(self) -> u32 {
        self.pulses
    }

    /// Worst-case stream length at a precision: the full magnitude
    /// `2^(w-1)` (128 cycles for INT8 vs 2s-unary's 64).
    #[must_use]
    pub const fn worst_case_cycles(precision: IntPrecision) -> u32 {
        precision.max_magnitude()
    }

    /// Sign wire.
    #[must_use]
    pub const fn sign(self) -> Sign {
        self.sign
    }

    /// `true` when the stream encodes zero.
    #[must_use]
    pub const fn is_silent(self) -> bool {
        self.pulses == 0
    }

    /// Decodes back to the signed integer.
    #[must_use]
    pub fn decode(self) -> i32 {
        self.sign.factor() * self.pulses as i32
    }

    /// Contribution on cycle `c`: `sign * activation` while the stream
    /// is live, 0 after it drains.
    #[must_use]
    pub fn step(self, activation: i32, cycle: u32) -> i32 {
        if cycle < self.pulses {
            self.sign.factor() * activation
        } else {
            0
        }
    }

    /// Folds the whole stream against `activation` (the exact
    /// product).
    #[must_use]
    pub fn fold(self, activation: i32) -> i32 {
        (0..self.pulses).map(|c| self.step(activation, c)).sum()
    }
}

/// Exact multiply through plain-unary folding.
///
/// # Errors
///
/// Returns [`ArithError::OutOfRange`] when either operand exceeds
/// `precision`.
pub fn multiply(activation: i32, weight: i32, precision: IntPrecision) -> Result<i32, ArithError> {
    precision.check(activation)?;
    Ok(PlainUnaryStream::encode(weight, precision)?.fold(activation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TwosUnaryStream;

    #[test]
    fn exhaustive_int4_products() {
        let p = IntPrecision::Int4;
        for a in p.min_value()..=p.max_value() {
            for w in p.min_value()..=p.max_value() {
                assert_eq!(multiply(a, w, p).unwrap(), a * w, "a={a} w={w}");
            }
        }
    }

    #[test]
    fn stream_is_twice_the_2s_unary_length() {
        let p = IntPrecision::Int8;
        for v in p.min_value()..=p.max_value() {
            let tu = PlainUnaryStream::encode(v, p).unwrap();
            let tub = TwosUnaryStream::encode(v, p).unwrap();
            assert_eq!(tub.cycles(), tu.cycles().div_ceil(2), "v={v}");
        }
    }

    #[test]
    fn worst_case_doubles() {
        assert_eq!(PlainUnaryStream::worst_case_cycles(IntPrecision::Int8), 128);
        assert_eq!(IntPrecision::Int8.worst_case_tub_cycles(), 64);
        assert_eq!(PlainUnaryStream::worst_case_cycles(IntPrecision::Int4), 8);
    }

    #[test]
    fn zero_is_silent() {
        let s = PlainUnaryStream::encode(0, IntPrecision::Int8).unwrap();
        assert!(s.is_silent());
        assert_eq!(s.fold(99), 0);
    }

    #[test]
    fn decode_round_trip() {
        for v in [-128, -1, 0, 1, 127] {
            let s = PlainUnaryStream::encode(v, IntPrecision::Int8).unwrap();
            assert_eq!(s.decode(), v);
        }
    }
}
