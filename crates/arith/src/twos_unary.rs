use std::fmt;

use crate::{ArithError, IntPrecision};

/// Sign of a temporally encoded value.
///
/// The tub datapath transmits the sign on a dedicated wire alongside the
/// pulse stream; a zero value is encoded as an empty stream with a
/// positive sign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sign {
    /// Non-negative value.
    #[default]
    Positive,
    /// Negative value.
    Negative,
}

impl Sign {
    /// `+1` for positive, `-1` for negative.
    #[must_use]
    pub const fn factor(self) -> i32 {
        match self {
            Sign::Positive => 1,
            Sign::Negative => -1,
        }
    }
}

/// A single pulse of a 2s-unary stream.
///
/// Under 2s-unary encoding (§II-B of the paper) each cycle's pulse is
/// interpreted as a data value of 2, halving stream latency relative to
/// classic unary. Odd magnitudes terminate with a single 1-valued pulse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pulse {
    /// Pulse carrying the value 1 (final pulse of an odd magnitude).
    One,
    /// Pulse carrying the value 2 (the common case).
    Two,
}

impl Pulse {
    /// Numeric value carried by the pulse.
    #[must_use]
    pub const fn value(self) -> u32 {
        match self {
            Pulse::One => 1,
            Pulse::Two => 2,
        }
    }
}

/// A 2s-unary temporally encoded signed integer.
///
/// The encoding of a value `v` with magnitude `m = |v|` is a stream of
/// `ceil(m / 2)` pulses: `m / 2` pulses valued 2 followed by, when `m` is
/// odd, one pulse valued 1. The representation here is compact (pulse
/// counts rather than a materialised bit vector) because INT8 streams can
/// be up to 64 cycles long and arrays hold thousands of them.
///
/// ```
/// use tempus_arith::{IntPrecision, Pulse, TwosUnaryStream};
///
/// # fn main() -> Result<(), tempus_arith::ArithError> {
/// let s = TwosUnaryStream::encode(7, IntPrecision::Int4)?;
/// assert_eq!(s.cycles(), 4); // 2 + 2 + 2 + 1
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![Pulse::Two, Pulse::Two, Pulse::Two, Pulse::One]);
/// assert_eq!(s.decode(), 7);
///
/// let z = TwosUnaryStream::encode(0, IntPrecision::Int4)?;
/// assert_eq!(z.cycles(), 0);
/// assert!(z.is_silent());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TwosUnaryStream {
    sign: Sign,
    two_pulses: u32,
    has_one_pulse: bool,
    precision: IntPrecision,
}

impl TwosUnaryStream {
    /// Encodes `value` at `precision` into a 2s-unary stream.
    ///
    /// # Errors
    ///
    /// Returns [`ArithError::OutOfRange`] when `value` is not
    /// representable at `precision`.
    pub fn encode(value: i32, precision: IntPrecision) -> Result<Self, ArithError> {
        precision.check(value)?;
        let magnitude = value.unsigned_abs();
        Ok(TwosUnaryStream {
            sign: if value < 0 {
                Sign::Negative
            } else {
                Sign::Positive
            },
            two_pulses: magnitude / 2,
            has_one_pulse: magnitude % 2 == 1,
            precision,
        })
    }

    /// Number of cycles (pulses) in the stream: `ceil(|v| / 2)`.
    #[must_use]
    pub const fn cycles(self) -> u32 {
        self.two_pulses + self.has_one_pulse as u32
    }

    /// Magnitude of the encoded value.
    #[must_use]
    pub const fn magnitude(self) -> u32 {
        self.two_pulses * 2 + self.has_one_pulse as u32
    }

    /// Sign wire of the stream.
    #[must_use]
    pub const fn sign(self) -> Sign {
        self.sign
    }

    /// Precision the stream was encoded at.
    #[must_use]
    pub const fn precision(self) -> IntPrecision {
        self.precision
    }

    /// `true` when the stream encodes zero and the multiplier attached to
    /// it stays idle ("silent PE", §V-C).
    #[must_use]
    pub const fn is_silent(self) -> bool {
        self.two_pulses == 0 && !self.has_one_pulse
    }

    /// Decodes the stream back to the signed integer it encodes.
    #[must_use]
    pub fn decode(self) -> i32 {
        self.sign.factor() * self.magnitude() as i32
    }

    /// Magnitude emitted by the pulses strictly before `cycle` — the
    /// prefix sum of pulse values. `magnitude_before(0)` is 0 and
    /// `magnitude_before(cycles())` is the full magnitude, so the
    /// contribution of any cycle window `[c0, c1)` is the difference of
    /// two prefix sums. This closed form is what lets the simulator
    /// fast-forward a whole compute window without ticking per cycle.
    #[must_use]
    pub const fn magnitude_before(self, cycle: u32) -> u32 {
        let twos = if cycle < self.two_pulses {
            cycle
        } else {
            self.two_pulses
        };
        let one = (self.has_one_pulse && cycle > self.two_pulses) as u32;
        twos * 2 + one
    }

    /// Pulse emitted at `cycle` (0-based), or `None` once the stream has
    /// drained. This is what the temporal encoder drives each clock.
    #[must_use]
    pub fn pulse_at(self, cycle: u32) -> Option<Pulse> {
        if cycle < self.two_pulses {
            Some(Pulse::Two)
        } else if cycle == self.two_pulses && self.has_one_pulse {
            Some(Pulse::One)
        } else {
            None
        }
    }

    /// Iterates over the pulses of the stream in emission order.
    pub fn iter(self) -> PulseIter {
        PulseIter {
            stream: self,
            cycle: 0,
        }
    }
}

impl fmt::Display for TwosUnaryStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = match self.sign {
            Sign::Positive => '+',
            Sign::Negative => '-',
        };
        write!(
            f,
            "{sign}[2;{}]{}",
            self.two_pulses,
            if self.has_one_pulse { "[1]" } else { "" }
        )
    }
}

impl IntoIterator for TwosUnaryStream {
    type Item = Pulse;
    type IntoIter = PulseIter;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the pulses of a [`TwosUnaryStream`].
#[derive(Debug, Clone)]
pub struct PulseIter {
    stream: TwosUnaryStream,
    cycle: u32,
}

impl Iterator for PulseIter {
    type Item = Pulse;

    fn next(&mut self) -> Option<Pulse> {
        let pulse = self.stream.pulse_at(self.cycle)?;
        self.cycle += 1;
        Some(pulse)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.stream.cycles().saturating_sub(self.cycle) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for PulseIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_round_trips_all_int8_values() {
        for v in IntPrecision::Int8.min_value()..=IntPrecision::Int8.max_value() {
            let s = TwosUnaryStream::encode(v, IntPrecision::Int8).unwrap();
            assert_eq!(s.decode(), v, "round trip failed for {v}");
            assert_eq!(s.cycles(), v.unsigned_abs().div_ceil(2));
        }
    }

    #[test]
    fn zero_is_silent() {
        let s = TwosUnaryStream::encode(0, IntPrecision::Int8).unwrap();
        assert!(s.is_silent());
        assert_eq!(s.cycles(), 0);
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.sign(), Sign::Positive);
    }

    #[test]
    fn odd_magnitude_ends_with_one_pulse() {
        let s = TwosUnaryStream::encode(-5, IntPrecision::Int4).unwrap();
        let pulses: Vec<_> = s.iter().collect();
        assert_eq!(pulses, vec![Pulse::Two, Pulse::Two, Pulse::One]);
        assert_eq!(s.sign(), Sign::Negative);
        assert_eq!(s.decode(), -5);
    }

    #[test]
    fn even_magnitude_has_only_two_pulses() {
        let s = TwosUnaryStream::encode(6, IntPrecision::Int4).unwrap();
        assert!(s.iter().all(|p| p == Pulse::Two));
        assert_eq!(s.cycles(), 3);
    }

    #[test]
    fn most_negative_value_hits_worst_case_latency() {
        for p in IntPrecision::PAPER_SWEEP {
            let s = TwosUnaryStream::encode(p.min_value(), p).unwrap();
            assert_eq!(s.cycles(), p.worst_case_tub_cycles());
        }
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(TwosUnaryStream::encode(8, IntPrecision::Int4).is_err());
        assert!(TwosUnaryStream::encode(-129, IntPrecision::Int8).is_err());
    }

    #[test]
    fn magnitude_before_is_the_pulse_prefix_sum() {
        for v in [-128, -7, -2, 0, 1, 3, 6, 127] {
            let s = TwosUnaryStream::encode(v, IntPrecision::Int8).unwrap();
            let mut prefix = 0u32;
            for c in 0..=s.cycles() + 2 {
                assert_eq!(s.magnitude_before(c), prefix, "v={v} c={c}");
                if let Some(p) = s.pulse_at(c) {
                    prefix += p.value();
                }
            }
            assert_eq!(s.magnitude_before(s.cycles()), s.magnitude());
        }
    }

    #[test]
    fn pulse_at_matches_iterator() {
        let s = TwosUnaryStream::encode(9, IntPrecision::Int8).unwrap();
        for (i, p) in s.iter().enumerate() {
            assert_eq!(s.pulse_at(i as u32), Some(p));
        }
        assert_eq!(s.pulse_at(s.cycles()), None);
    }

    #[test]
    fn exact_size_iterator_is_exact() {
        let s = TwosUnaryStream::encode(11, IntPrecision::Int8).unwrap();
        let mut it = s.iter();
        assert_eq!(it.len(), 6);
        it.next();
        assert_eq!(it.len(), 5);
    }

    #[test]
    fn display_is_nonempty_even_for_zero() {
        let s = TwosUnaryStream::encode(0, IntPrecision::Int2).unwrap();
        assert!(!format!("{s}").is_empty());
        let s = TwosUnaryStream::encode(-3, IntPrecision::Int4).unwrap();
        assert_eq!(format!("{s}"), "-[2;1][1]");
    }

    #[test]
    fn pulse_values() {
        assert_eq!(Pulse::One.value(), 1);
        assert_eq!(Pulse::Two.value(), 2);
        assert_eq!(Sign::Negative.factor(), -1);
        assert_eq!(Sign::Positive.factor(), 1);
    }
}
