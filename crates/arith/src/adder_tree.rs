//! Balanced adder-tree reduction.
//!
//! Every PE cell — binary CMAC cell and tub cell alike — reduces its `n`
//! per-multiplier terms through an adder tree into one partial sum
//! (§II-C, §III). This module provides the functional reduction together
//! with the tree's structural statistics (depth, adder count and widths),
//! which `tempus-hwmodel` uses when building netlists.

use crate::ArithError;

/// Structural description of a balanced binary adder tree reducing `n`
/// terms of `input_bits` bits each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeShape {
    /// Number of leaf terms (`n`), after padding is *not* applied —
    /// odd levels simply forward the unpaired term.
    pub leaves: usize,
    /// Bit width of each leaf term.
    pub input_bits: u32,
    /// Number of two-input adders in the tree.
    pub adder_count: usize,
    /// Depth in adder levels (`ceil(log2 n)`).
    pub depth: u32,
    /// Bit widths of the adders, level by level (level 0 adds
    /// `input_bits`-wide terms producing `input_bits + 1` wide sums).
    pub level_widths: Vec<(u32, usize)>,
    /// Bit width of the final sum: `input_bits + depth`.
    pub output_bits: u32,
}

/// Computes the shape of a balanced tree over `n` terms of `input_bits`.
///
/// An `n`-leaf tree always contains exactly `n - 1` two-input adders; the
/// per-level widths grow by one bit per level so no precision is lost.
///
/// ```
/// use tempus_arith::adder_tree::shape;
///
/// let t = shape(16, 16);
/// assert_eq!(t.adder_count, 15);
/// assert_eq!(t.depth, 4);
/// assert_eq!(t.output_bits, 20);
/// ```
#[must_use]
pub fn shape(n: usize, input_bits: u32) -> TreeShape {
    let mut level_widths = Vec::new();
    let mut remaining = n;
    let mut width = input_bits;
    let mut adders = 0usize;
    let mut depth = 0u32;
    while remaining > 1 {
        let pairs = remaining / 2;
        level_widths.push((width, pairs));
        adders += pairs;
        remaining = pairs + remaining % 2;
        width += 1;
        depth += 1;
    }
    TreeShape {
        leaves: n,
        input_bits,
        adder_count: adders,
        depth,
        level_widths,
        output_bits: width,
    }
}

/// Reduces `terms` through a balanced binary tree, returning the exact
/// sum (in `i64`, wide enough for any array size this workspace uses).
///
/// The reduction order matches the hardware tree exactly, which matters
/// only for wrap-around experiments; for exact arithmetic the result
/// equals `terms.iter().sum()`.
///
/// # Errors
///
/// Returns [`ArithError::AccumulatorOverflow`] if any intermediate sum
/// overflows `i64` (practically unreachable for supported precisions).
pub fn reduce(terms: &[i64]) -> Result<i64, ArithError> {
    if terms.is_empty() {
        return Ok(0);
    }
    let mut level: Vec<i64> = terms.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            let sum = if pair.len() == 2 {
                pair[0]
                    .checked_add(pair[1])
                    .ok_or(ArithError::AccumulatorOverflow { acc_bits: 64 })?
            } else {
                pair[0]
            };
            next.push(sum);
        }
        level = next;
    }
    Ok(level[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_power_of_two() {
        let t = shape(8, 4);
        assert_eq!(t.adder_count, 7);
        assert_eq!(t.depth, 3);
        assert_eq!(t.output_bits, 7);
        assert_eq!(t.level_widths, vec![(4, 4), (5, 2), (6, 1)]);
    }

    #[test]
    fn shape_non_power_of_two() {
        let t = shape(5, 8);
        // 5 -> 2 adders + carry-over -> 3 -> 1 adder + carry -> 2 -> 1.
        assert_eq!(t.adder_count, 4);
        assert_eq!(t.depth, 3);
        assert_eq!(t.leaves, 5);
    }

    #[test]
    fn shape_degenerate_cases() {
        let t = shape(1, 8);
        assert_eq!(t.adder_count, 0);
        assert_eq!(t.depth, 0);
        assert_eq!(t.output_bits, 8);
        let t = shape(0, 8);
        assert_eq!(t.adder_count, 0);
    }

    #[test]
    fn adder_count_is_always_n_minus_1() {
        for n in 1..200 {
            assert_eq!(shape(n, 8).adder_count, n - 1, "n={n}");
        }
    }

    #[test]
    fn reduce_matches_iter_sum() {
        let terms: Vec<i64> = (-50..50).collect();
        assert_eq!(reduce(&terms).unwrap(), terms.iter().sum::<i64>());
        assert_eq!(reduce(&[]).unwrap(), 0);
        assert_eq!(reduce(&[42]).unwrap(), 42);
    }

    #[test]
    fn reduce_detects_overflow() {
        assert!(reduce(&[i64::MAX, 1]).is_err());
    }
}
