//! Golden (combinational) model of the tub multiplier.
//!
//! A *tub* (temporal-unary-binary) multiplier takes a binary-encoded
//! activation and a temporally encoded weight (a [`TwosUnaryStream`]) and
//! accumulates `pulse_value * activation` on every pulse cycle, applying
//! the weight sign (Fig. 2 of the paper). The hardware realisation is a
//! multiplexer (pulse value 0/1/2), a shifter (×2) and an
//! adder/subtractor — no array multiplier.
//!
//! This module is the bit-exact reference the cycle-accurate PE model in
//! `tempus-core` is tested against.

use crate::{ArithError, IntPrecision, Pulse, TwosUnaryStream};

/// Multiplies `activation` (binary operand) by `weight` (temporal
/// operand) by folding the weight's 2s-unary pulse stream.
///
/// Both operands are validated against `precision`. The result is exact:
/// tub arithmetic is deterministic, unlike stochastic unary designs.
///
/// ```
/// use tempus_arith::{tub, IntPrecision};
///
/// # fn main() -> Result<(), tempus_arith::ArithError> {
/// assert_eq!(tub::multiply(-128, -128, IntPrecision::Int8)?, 16384);
/// assert_eq!(tub::multiply(7, 0, IntPrecision::Int4)?, 0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`ArithError::OutOfRange`] when either operand exceeds
/// `precision`.
pub fn multiply(activation: i32, weight: i32, precision: IntPrecision) -> Result<i32, ArithError> {
    precision.check(activation)?;
    let stream = TwosUnaryStream::encode(weight, precision)?;
    Ok(fold_stream(activation, stream))
}

/// Folds a pulse stream against a binary activation, returning the exact
/// product. This mirrors what the PE accumulator register sees after the
/// stream drains.
#[must_use]
pub fn fold_stream(activation: i32, stream: TwosUnaryStream) -> i32 {
    let mut acc = 0i32;
    for pulse in stream.iter() {
        acc += step(activation, stream, pulse);
    }
    acc
}

/// Contribution added to the accumulator on a single pulse cycle:
/// `sign * pulse_value * activation`. The ×2 case is a left shift in
/// hardware.
#[must_use]
pub fn step(activation: i32, stream: TwosUnaryStream, pulse: Pulse) -> i32 {
    let shifted = match pulse {
        Pulse::Two => activation << 1,
        Pulse::One => activation,
    };
    stream.sign().factor() * shifted
}

/// Contribution a tub multiplier accumulates over the cycle window
/// `[from_cycle, from_cycle + cycles)` of `stream`, as a closed form:
/// `sign · (prefix(c1) − prefix(c0)) · activation`.
///
/// Bit-identical to summing [`step`] over those cycles — the per-cycle
/// terms are `sign · pulse_value · activation` and integer addition is
/// exact — but O(1) instead of O(cycles). This is the kernel of the
/// window-batched simulation engine in `tempus-core`.
#[must_use]
pub fn fold_window(activation: i32, stream: TwosUnaryStream, from_cycle: u32, cycles: u32) -> i64 {
    let to = from_cycle.saturating_add(cycles);
    let mag = stream.magnitude_before(to) - stream.magnitude_before(from_cycle);
    i64::from(stream.sign().factor()) * i64::from(mag) * i64::from(activation)
}

/// Latency in cycles of a tub multiplication by `weight`:
/// `ceil(|weight| / 2)`.
///
/// # Errors
///
/// Returns [`ArithError::OutOfRange`] when `weight` exceeds `precision`.
pub fn latency(weight: i32, precision: IntPrecision) -> Result<u32, ArithError> {
    Ok(TwosUnaryStream::encode(weight, precision)?.cycles())
}

/// Latency in cycles of a whole k×n tub array holding `weights`: the
/// array is bottlenecked by its largest weight magnitude (§III).
///
/// Returns 0 for an empty or all-zero array (every PE silent).
///
/// # Errors
///
/// Returns [`ArithError::OutOfRange`] when any weight exceeds
/// `precision`.
pub fn array_latency(weights: &[i32], precision: IntPrecision) -> Result<u32, ArithError> {
    let mut max = 0u32;
    for &w in weights {
        precision.check(w)?;
        max = max.max(w.unsigned_abs());
    }
    Ok(max.div_ceil(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_binary_multiplication_exhaustively_int4() {
        let p = IntPrecision::Int4;
        for a in p.min_value()..=p.max_value() {
            for w in p.min_value()..=p.max_value() {
                assert_eq!(multiply(a, w, p).unwrap(), a * w, "a={a} w={w}");
            }
        }
    }

    #[test]
    fn matches_binary_multiplication_exhaustively_int2() {
        let p = IntPrecision::Int2;
        for a in p.min_value()..=p.max_value() {
            for w in p.min_value()..=p.max_value() {
                assert_eq!(multiply(a, w, p).unwrap(), a * w);
            }
        }
    }

    #[test]
    fn int8_corner_cases() {
        let p = IntPrecision::Int8;
        for (a, w) in [
            (-128, -128),
            (-128, 127),
            (127, -128),
            (127, 127),
            (0, -128),
            (-128, 0),
            (1, -1),
            (-1, 1),
        ] {
            assert_eq!(multiply(a, w, p).unwrap(), a * w);
        }
    }

    #[test]
    fn fig2_example_dataflow() {
        // Fig. 2 of the paper: an INT4 tub multiplier accumulates the
        // binary value once per '1' in the temporal stream. With
        // 2s-unary, 6 = three 2-valued pulses; activation 5 -> 30.
        let p = IntPrecision::Int4;
        let stream = TwosUnaryStream::encode(6, p).unwrap();
        assert_eq!(stream.cycles(), 3);
        assert_eq!(fold_stream(5, stream), 30);
    }

    #[test]
    fn latency_is_half_magnitude_rounded_up() {
        let p = IntPrecision::Int8;
        assert_eq!(latency(0, p).unwrap(), 0);
        assert_eq!(latency(1, p).unwrap(), 1);
        assert_eq!(latency(-2, p).unwrap(), 1);
        assert_eq!(latency(3, p).unwrap(), 2);
        assert_eq!(latency(-128, p).unwrap(), 64);
        assert_eq!(latency(127, p).unwrap(), 64);
    }

    #[test]
    fn array_latency_is_max_of_elementwise() {
        let p = IntPrecision::Int8;
        let weights = [0, 3, -10, 7, 2];
        assert_eq!(array_latency(&weights, p).unwrap(), 5);
        assert_eq!(array_latency(&[], p).unwrap(), 0);
        assert_eq!(array_latency(&[0, 0, 0], p).unwrap(), 0);
        assert!(array_latency(&[200], p).is_err());
    }

    #[test]
    fn step_applies_sign_and_shift() {
        let s = TwosUnaryStream::encode(-3, IntPrecision::Int4).unwrap();
        assert_eq!(step(5, s, Pulse::Two), -10);
        assert_eq!(step(5, s, Pulse::One), -5);
        let s = TwosUnaryStream::encode(3, IntPrecision::Int4).unwrap();
        assert_eq!(step(-5, s, Pulse::Two), -10);
    }

    #[test]
    fn fold_window_matches_per_cycle_steps_exhaustively() {
        let p = IntPrecision::Int8;
        for w in [-128, -9, -2, -1, 0, 1, 2, 7, 127] {
            let stream = TwosUnaryStream::encode(w, p).unwrap();
            for a in [-128, -1, 0, 1, 113, 127] {
                let total = stream.cycles() + 3;
                for c0 in 0..=total {
                    for q in 0..=(total - c0) {
                        let stepped: i64 = (c0..c0 + q)
                            .filter_map(|c| stream.pulse_at(c))
                            .map(|pulse| i64::from(step(a, stream, pulse)))
                            .sum();
                        assert_eq!(
                            fold_window(a, stream, c0, q),
                            stepped,
                            "a={a} w={w} c0={c0} q={q}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fold_window_over_the_whole_stream_is_the_product() {
        let p = IntPrecision::Int8;
        for (a, w) in [(113, -37), (-128, 127), (5, 0), (-1, 1), (127, 127)] {
            let stream = TwosUnaryStream::encode(w, p).unwrap();
            assert_eq!(
                fold_window(a, stream, 0, stream.cycles().max(1)),
                i64::from(a) * i64::from(w)
            );
        }
    }

    #[test]
    fn rejects_out_of_range_operands() {
        assert!(multiply(8, 1, IntPrecision::Int4).is_err());
        assert!(multiply(1, 8, IntPrecision::Int4).is_err());
    }
}
