use std::fmt;
use std::str::FromStr;

use crate::ArithError;

/// Signed integer precisions evaluated by the Tempus Core paper.
///
/// The paper sweeps INT8, INT4 and INT2 datapaths (§IV, Fig. 5). Values are
/// two's complement, so an `IntPrecision::Int8` value lies in `-128..=127`
/// and its largest *magnitude* is 128 — which is exactly what bounds the
/// tub array latency (§III).
///
/// ```
/// use tempus_arith::IntPrecision;
///
/// assert_eq!(IntPrecision::Int8.max_magnitude(), 128);
/// assert_eq!(IntPrecision::Int8.worst_case_tub_cycles(), 64); // paper §V-C
/// assert_eq!(IntPrecision::Int4.worst_case_tub_cycles(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IntPrecision {
    /// 2-bit signed integers (`-2..=1`).
    Int2,
    /// 4-bit signed integers (`-8..=7`).
    Int4,
    /// 8-bit signed integers (`-128..=127`).
    Int8,
    /// 16-bit signed integers (`-32768..=32767`). Not evaluated in the
    /// paper but supported so the substrate generalises.
    Int16,
}

impl IntPrecision {
    /// All precisions the paper evaluates, in ascending bit width.
    pub const PAPER_SWEEP: [IntPrecision; 3] =
        [IntPrecision::Int2, IntPrecision::Int4, IntPrecision::Int8];

    /// Bit width `w` of the precision.
    #[must_use]
    pub const fn bits(self) -> u32 {
        match self {
            IntPrecision::Int2 => 2,
            IntPrecision::Int4 => 4,
            IntPrecision::Int8 => 8,
            IntPrecision::Int16 => 16,
        }
    }

    /// Smallest representable value (`-2^(w-1)`).
    #[must_use]
    pub const fn min_value(self) -> i32 {
        -(1 << (self.bits() - 1))
    }

    /// Largest representable value (`2^(w-1) - 1`).
    #[must_use]
    pub const fn max_value(self) -> i32 {
        (1 << (self.bits() - 1)) - 1
    }

    /// Largest representable magnitude, `2^(w-1)` (reached by the most
    /// negative value).
    #[must_use]
    pub const fn max_magnitude(self) -> u32 {
        1 << (self.bits() - 1)
    }

    /// Worst-case tub multiplier latency in cycles under 2s-unary
    /// encoding: `max_magnitude / 2 = 2^(w-2)`.
    ///
    /// Matches the paper: 64 cycles for INT8 and 4 cycles for INT4 (§V-C).
    #[must_use]
    pub const fn worst_case_tub_cycles(self) -> u32 {
        self.max_magnitude() / 2
    }

    /// Checks that `value` is representable at this precision.
    ///
    /// # Errors
    ///
    /// Returns [`ArithError::OutOfRange`] when the value lies outside
    /// `min_value()..=max_value()`.
    pub fn check(self, value: i32) -> Result<i32, ArithError> {
        if value < self.min_value() || value > self.max_value() {
            Err(ArithError::OutOfRange {
                value: i64::from(value),
                precision: self,
            })
        } else {
            Ok(value)
        }
    }

    /// Saturates `value` into the representable range.
    #[must_use]
    pub fn saturate(self, value: i64) -> i32 {
        value.clamp(i64::from(self.min_value()), i64::from(self.max_value())) as i32
    }

    /// Wraps `value` into the representable range (two's complement
    /// truncation, as RTL would).
    #[must_use]
    pub fn wrap(self, value: i64) -> i32 {
        let bits = self.bits();
        let mask = (1i64 << bits) - 1;
        let v = value & mask;
        // Sign-extend.
        if v >= (1i64 << (bits - 1)) {
            (v - (1i64 << bits)) as i32
        } else {
            v as i32
        }
    }

    /// Width in bits of a full-precision product of two operands at this
    /// precision (`2w`).
    #[must_use]
    pub const fn product_bits(self) -> u32 {
        self.bits() * 2
    }

    /// Width in bits needed to accumulate `n` products without overflow:
    /// `2w + ceil(log2(n))`.
    #[must_use]
    pub fn accumulator_bits(self, n: usize) -> u32 {
        let n = n.max(1) as u64;
        self.product_bits() + (u64::BITS - (n - 1).leading_zeros())
    }
}

impl fmt::Display for IntPrecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INT{}", self.bits())
    }
}

impl FromStr for IntPrecision {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "INT2" | "2" => Ok(IntPrecision::Int2),
            "INT4" | "4" => Ok(IntPrecision::Int4),
            "INT8" | "8" => Ok(IntPrecision::Int8),
            "INT16" | "16" => Ok(IntPrecision::Int16),
            other => Err(format!("unknown precision: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_match_twos_complement() {
        assert_eq!(IntPrecision::Int2.min_value(), -2);
        assert_eq!(IntPrecision::Int2.max_value(), 1);
        assert_eq!(IntPrecision::Int4.min_value(), -8);
        assert_eq!(IntPrecision::Int4.max_value(), 7);
        assert_eq!(IntPrecision::Int8.min_value(), -128);
        assert_eq!(IntPrecision::Int8.max_value(), 127);
        assert_eq!(IntPrecision::Int16.min_value(), -32768);
        assert_eq!(IntPrecision::Int16.max_value(), 32767);
    }

    #[test]
    fn worst_case_latency_matches_paper() {
        // §V-C: "the worst-case INT8 latency of 64 cycles" and
        // "With INT4, the worst case latency is 4 cycles".
        assert_eq!(IntPrecision::Int8.worst_case_tub_cycles(), 64);
        assert_eq!(IntPrecision::Int4.worst_case_tub_cycles(), 4);
        assert_eq!(IntPrecision::Int2.worst_case_tub_cycles(), 1);
    }

    #[test]
    fn check_accepts_bounds_rejects_outside() {
        let p = IntPrecision::Int4;
        assert_eq!(p.check(-8), Ok(-8));
        assert_eq!(p.check(7), Ok(7));
        assert!(p.check(8).is_err());
        assert!(p.check(-9).is_err());
    }

    #[test]
    fn saturate_clamps() {
        let p = IntPrecision::Int8;
        assert_eq!(p.saturate(1000), 127);
        assert_eq!(p.saturate(-1000), -128);
        assert_eq!(p.saturate(5), 5);
    }

    #[test]
    fn wrap_is_twos_complement_truncation() {
        let p = IntPrecision::Int8;
        assert_eq!(p.wrap(128), -128);
        assert_eq!(p.wrap(255), -1);
        assert_eq!(p.wrap(256), 0);
        assert_eq!(p.wrap(-129), 127);
        assert_eq!(p.wrap(42), 42);
    }

    #[test]
    fn accumulator_bits_covers_worst_case() {
        let p = IntPrecision::Int8;
        // 16 products of at most 128*128 = 2^14; 16 of them is 2^18,
        // so 2w + log2(16) = 20 bits is enough.
        assert_eq!(p.accumulator_bits(16), 20);
        assert_eq!(p.accumulator_bits(1), 16);
        let worst = i64::from(p.min_value()) * i64::from(p.min_value()) * 16;
        assert!(worst < (1i64 << (p.accumulator_bits(16) - 1)) + 1);
    }

    #[test]
    fn parse_and_display_round_trip() {
        for p in [
            IntPrecision::Int2,
            IntPrecision::Int4,
            IntPrecision::Int8,
            IntPrecision::Int16,
        ] {
            let s = p.to_string();
            assert_eq!(s.parse::<IntPrecision>().unwrap(), p);
        }
        assert!("INT3".parse::<IntPrecision>().is_err());
    }
}
