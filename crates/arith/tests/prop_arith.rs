//! Property-based tests for the arithmetic foundation: the 2s-unary
//! encoding and the tub multiplier must be bit-exact against binary
//! arithmetic for every representable operand pair.

use proptest::prelude::*;
use tempus_arith::{adder_tree, binary, dot, tub, IntPrecision, TwosUnaryStream};

fn precisions() -> impl Strategy<Value = IntPrecision> {
    prop_oneof![
        Just(IntPrecision::Int2),
        Just(IntPrecision::Int4),
        Just(IntPrecision::Int8),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trip(p in precisions(), seed in any::<i64>()) {
        let v = p.wrap(seed);
        let s = TwosUnaryStream::encode(v, p).unwrap();
        prop_assert_eq!(s.decode(), v);
    }

    #[test]
    fn stream_length_is_half_magnitude(p in precisions(), seed in any::<i64>()) {
        let v = p.wrap(seed);
        let s = TwosUnaryStream::encode(v, p).unwrap();
        prop_assert_eq!(s.cycles(), v.unsigned_abs().div_ceil(2));
        prop_assert!(s.cycles() <= p.worst_case_tub_cycles());
    }

    #[test]
    fn pulse_sum_equals_magnitude(p in precisions(), seed in any::<i64>()) {
        let v = p.wrap(seed);
        let s = TwosUnaryStream::encode(v, p).unwrap();
        let sum: u32 = s.iter().map(|pu| pu.value()).sum();
        prop_assert_eq!(sum, v.unsigned_abs());
    }

    #[test]
    fn tub_multiply_is_exact(seed_a in any::<i64>(), seed_w in any::<i64>(), p in precisions()) {
        let a = p.wrap(seed_a);
        let w = p.wrap(seed_w);
        prop_assert_eq!(tub::multiply(a, w, p).unwrap(), a * w);
    }

    #[test]
    fn tub_dot_equals_binary_dot(
        p in precisions(),
        pairs in prop::collection::vec((any::<i64>(), any::<i64>()), 0..64),
    ) {
        let acts: Vec<i32> = pairs.iter().map(|&(a, _)| p.wrap(a)).collect();
        let wts: Vec<i32> = pairs.iter().map(|&(_, w)| p.wrap(w)).collect();
        prop_assert_eq!(
            dot::tub(&acts, &wts, p).unwrap(),
            dot::binary(&acts, &wts, p).unwrap()
        );
    }

    #[test]
    fn dot_latency_bounded_by_worst_case(
        p in precisions(),
        seeds in prop::collection::vec(any::<i64>(), 1..64),
    ) {
        let wts: Vec<i32> = seeds.iter().map(|&w| p.wrap(w)).collect();
        let lat = dot::tub_latency(&wts, p).unwrap();
        prop_assert!(lat <= p.worst_case_tub_cycles());
        // Latency is monotone: adding a weight can only increase it.
        let mut extended = wts.clone();
        extended.push(0);
        prop_assert_eq!(dot::tub_latency(&extended, p).unwrap(), lat);
    }

    #[test]
    fn adder_tree_reduce_matches_sum(terms in prop::collection::vec(-100_000i64..100_000, 0..200)) {
        prop_assert_eq!(
            adder_tree::reduce(&terms).unwrap(),
            terms.iter().sum::<i64>()
        );
    }

    #[test]
    fn adder_tree_shape_invariants(n in 0usize..300, bits in 1u32..32) {
        let t = adder_tree::shape(n, bits);
        if n > 0 {
            prop_assert_eq!(t.adder_count, n - 1);
            prop_assert_eq!(t.output_bits, bits + t.depth);
            let expected_depth = (n as f64).log2().ceil() as u32;
            prop_assert_eq!(t.depth, expected_depth);
        } else {
            prop_assert_eq!(t.adder_count, 0);
        }
    }

    #[test]
    fn wrap_then_check_always_succeeds(p in precisions(), v in any::<i64>()) {
        let wrapped = p.wrap(v);
        prop_assert!(p.check(wrapped).is_ok());
        prop_assert_eq!(p.wrap(i64::from(wrapped)), wrapped);
    }

    #[test]
    fn saturate_agrees_with_wrap_in_range(p in precisions(), v in any::<i64>()) {
        let sat = p.saturate(v);
        prop_assert!(p.check(sat).is_ok());
        if v >= i64::from(p.min_value()) && v <= i64::from(p.max_value()) {
            prop_assert_eq!(sat, v as i32);
            prop_assert_eq!(p.wrap(v), v as i32);
        }
    }

    #[test]
    fn multiply_wrapping_full_width_is_exact(
        p in precisions(),
        seed_a in any::<i64>(),
        seed_b in any::<i64>(),
    ) {
        let a = p.wrap(seed_a);
        let b = p.wrap(seed_b);
        let full = binary::multiply_wrapping(a, b, p, p.product_bits() + 1).unwrap();
        prop_assert_eq!(full, a * b);
    }
}

#[test]
fn exhaustive_int8_tub_vs_binary() {
    // 65k products: cheap enough to check the whole INT8 plane.
    let p = IntPrecision::Int8;
    for a in p.min_value()..=p.max_value() {
        for w in p.min_value()..=p.max_value() {
            assert_eq!(tub::multiply(a, w, p).unwrap(), a * w);
        }
    }
}
