//! Per-class latency percentiles, SLO accounting and service
//! counters.

use std::fmt;

use tempus_fleet::FleetSummary;
use tempus_models::traffic::ClassDeadlines;
use tempus_runtime::stats::PERIOD_NS;
use tempus_runtime::DeviceSummary;
use tempus_telemetry::TelemetrySummary;

use crate::cache::ResultCacheStats;
use crate::class::{Fidelity, JobClass, PayloadKind};
use crate::request::RejectReason;

/// One completed request's array accounting, bundled so the recorder
/// and the dispatcher agree on what a completion carries.
#[derive(Debug, Clone, Copy)]
pub struct ArrayUse {
    /// PE arrays the execution occupied.
    pub shards: usize,
    /// Work balance across those arrays.
    pub utilization: f64,
    /// Arrays the array-slot scheduler granted.
    pub granted: usize,
    /// Device cycles spent waiting to gather the grant.
    pub wait_cycles: u64,
    /// Peak streaming-scratch elements of the execution (0 on
    /// materialized runs and cache hits).
    pub peak_scratch_elems: u64,
    /// Modelled energy of the execution, pJ (0 on cache hits and
    /// coalesced waiters — the energy was spent once, on the
    /// primary).
    pub energy_pj: f64,
    /// The switching share of `energy_pj`.
    pub dynamic_energy_pj: f64,
    /// The leakage share of `energy_pj`
    /// (`energy_pj == dynamic_energy_pj + static_energy_pj`).
    pub static_energy_pj: f64,
}

impl ArrayUse {
    /// The single-array default (cache hits on a 1-array socket,
    /// empty classes).
    #[must_use]
    pub fn single() -> Self {
        ArrayUse {
            shards: 1,
            utilization: 1.0,
            granted: 1,
            wait_cycles: 0,
            peak_scratch_elems: 0,
            energy_pj: 0.0,
            dynamic_energy_pj: 0.0,
            static_energy_pj: 0.0,
        }
    }
}

/// Per-class latency SLO targets, on end-to-end request latency
/// (admission to response), in nanoseconds.
#[derive(Debug, Clone)]
pub struct SloPolicy {
    targets_ns: [u64; 6],
}

impl SloPolicy {
    /// Default targets: single-digit milliseconds on the fast path,
    /// generous sub-second/second budgets for cycle-accurate
    /// simulation (it is a debugging fidelity, not a latency one).
    #[must_use]
    pub fn edge_defaults() -> Self {
        let mut targets_ns = [0u64; 6];
        for class in JobClass::ALL {
            targets_ns[class.index()] = match (class.fidelity, class.payload) {
                (Fidelity::Fast, PayloadKind::Conv | PayloadKind::Gemm) => 5_000_000,
                (Fidelity::Fast, PayloadKind::Network) => 25_000_000,
                (Fidelity::Accurate, PayloadKind::Conv | PayloadKind::Gemm) => 500_000_000,
                (Fidelity::Accurate, PayloadKind::Network) => 4_000_000_000,
            };
        }
        SloPolicy { targets_ns }
    }

    /// Overrides one class's target (builder style).
    #[must_use]
    pub fn with_target(mut self, class: JobClass, target_ns: u64) -> Self {
        self.targets_ns[class.index()] = target_ns;
        self
    }

    /// The target for `class`, in ns.
    #[must_use]
    pub fn target_ns(&self, class: JobClass) -> u64 {
        self.targets_ns[class.index()]
    }

    /// The SLO targets converted to per-class **device-cycle
    /// deadlines** at the paper's 250 MHz clock (4 ns per cycle) —
    /// what deadline-aware fleet admission checks predicted finish
    /// times against, and what
    /// [`TraceConfig::with_deadlines`](tempus_models::traffic::TraceConfig::with_deadlines)
    /// stamps onto generated traffic.
    #[must_use]
    pub fn device_deadlines(&self) -> ClassDeadlines {
        let cycles = |i: usize| (self.targets_ns[i] as f64 / PERIOD_NS) as u64;
        ClassDeadlines {
            fast: [cycles(0), cycles(1), cycles(2)],
            accurate: [cycles(3), cycles(4), cycles(5)],
        }
    }
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy::edge_defaults()
    }
}

/// `q`-th percentile (0..=100) of a sorted sample by nearest-rank —
/// the one percentile definition the service and the bench harness
/// share, so their reported p50/p95/p99 agree on the same data.
#[must_use]
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One class's latency snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassStats {
    /// The class.
    pub class: JobClass,
    /// Requests completed (cache hits included).
    pub completed: u64,
    /// Of the completed, answered from the result cache.
    pub cache_hits: u64,
    /// Of the completed, coalesced onto an identical in-flight
    /// execution (no core touched, no cache entry yet).
    pub coalesced: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Of the rejected, refused because the cycle-accurate admission
    /// cap (and its deferred queue) was full. The named split means
    /// capacity exhaustion and unattainable deadlines are separable
    /// without parsing reject reasons out of responses;
    /// `rejected == rejected_admission_cap + rejected_deadline`.
    pub rejected_admission_cap: u64,
    /// Of the rejected, refused because no device at any array width
    /// could meet the request's deadline.
    pub rejected_deadline: u64,
    /// Of the rejected, refused because the job cannot stream inside
    /// the configured scratch budget even at the minimal window;
    /// `rejected == rejected_admission_cap + rejected_deadline +
    /// rejected_scratch`.
    pub rejected_scratch: u64,
    /// Requests that failed with a substrate error.
    pub failed: u64,
    /// Execution attempts retried after an infrastructure fault
    /// (injected error, worker death, watchdog cancel). Counted per
    /// attempt, so one request surviving two faults adds two.
    pub retries: u64,
    /// Of the completed, answered by the degrade-don't-drop fallback
    /// (functional backend, injection off) after retries were
    /// exhausted.
    pub degraded: u64,
    /// Median end-to-end latency, ns.
    pub p50_ns: u64,
    /// 95th percentile latency, ns.
    pub p95_ns: u64,
    /// 99th percentile latency, ns.
    pub p99_ns: u64,
    /// Worst observed latency, ns.
    pub max_ns: u64,
    /// Mean latency, ns.
    pub mean_ns: f64,
    /// The class's SLO target, ns.
    pub slo_target_ns: u64,
    /// Completed requests that exceeded the target.
    pub slo_violations: u64,
    /// Mean PE arrays occupied per completed request. Defaults to 1
    /// (the single-array socket) when nothing completed, so existing
    /// consumers of serialized snapshots stay schema-compatible.
    pub shards: f64,
    /// Mean arrays granted per completed request (1 when nothing
    /// completed). Under co-scheduling this can exceed `shards` only
    /// transiently — granted is the offered width, shards what the
    /// plan used.
    pub arrays_granted: f64,
    /// Mean device cycles spent waiting to gather granted arrays (0
    /// when nothing completed or without co-scheduling).
    pub avg_array_wait_cycles: f64,
    /// Total modelled energy spent answering this class, pJ (cache
    /// hits and coalesced waiters add nothing — their execution's
    /// energy is counted once, on the primary).
    pub energy_pj: f64,
    /// The switching share of `energy_pj`.
    pub dynamic_energy_pj: f64,
    /// The leakage share of `energy_pj`.
    pub static_energy_pj: f64,
    /// Of the completed, answered speculatively from the functional
    /// backend while the accurate execution verified asynchronously.
    pub speculative: u64,
}

impl ClassStats {
    /// Fraction of completed requests inside the SLO (1.0 when none
    /// completed).
    #[must_use]
    pub fn slo_compliance(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            1.0 - self.slo_violations as f64 / self.completed as f64
        }
    }
}

/// A point-in-time snapshot of the whole service.
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Per-class records, in [`JobClass::ALL`] order (empty classes
    /// included with zero counts).
    pub classes: Vec<ClassStats>,
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests completed (cache hits included).
    pub completed: u64,
    /// Requests that coalesced onto an identical in-flight execution
    /// instead of executing independently.
    pub coalesced: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Of the rejected, refused on the accurate admission cap (sums
    /// the per-class splits).
    pub rejected_admission_cap: u64,
    /// Of the rejected, refused on an unattainable deadline.
    pub rejected_deadline: u64,
    /// Of the rejected, refused on the streaming scratch budget (sums
    /// the per-class splits).
    pub rejected_scratch: u64,
    /// Completed requests whose execution streamed (non-zero peak
    /// scratch).
    pub streamed: u64,
    /// Largest per-execution streaming-scratch high-water mark
    /// observed, in elements (0 when nothing streamed).
    pub peak_scratch_elems: u64,
    /// Submissions refused at the door with
    /// [`SubmitError::QueueFull`](crate::request::SubmitError) —
    /// backpressure refusals, counted separately from `rejected`
    /// because the request never entered the queue (and is handed
    /// back for retry rather than answered).
    pub queue_full_refusals: u64,
    /// Requests failed with substrate errors.
    pub failed: u64,
    /// Execution attempts retried after infrastructure faults (sums
    /// the per-class counts).
    pub retries: u64,
    /// Completed requests answered by the degrade-don't-drop fallback.
    pub degraded: u64,
    /// Requests answered speculatively (answer-now-verify-later):
    /// the client heard the functional backend's bit-identical result
    /// while the accurate execution verified asynchronously.
    pub speculative_answers: u64,
    /// Closed answer/verify rendezvous whose digests agreed. At
    /// quiescence `speculative_verified + speculative_mismatches`
    /// accounts for every speculative answer whose verify leg
    /// survived.
    pub speculative_verified: u64,
    /// Closed rendezvous whose digests disagreed — the equivalence
    /// contract keeps this at zero; anything else is a diverged
    /// backend.
    pub speculative_mismatches: u64,
    /// Total modelled energy across all classes, pJ.
    pub energy_pj: f64,
    /// The switching share of `energy_pj`.
    pub dynamic_energy_pj: f64,
    /// The leakage share of `energy_pj`.
    pub static_energy_pj: f64,
    /// Wall time the dispatcher spent draining in-flight jobs after
    /// the ingestion queue closed, ns (0 when shutdown found nothing
    /// in flight).
    pub drain_ns: u64,
    /// `true` when the bounded drain deadline expired with work still
    /// in flight; the stragglers were answered as failed.
    pub drain_timed_out: bool,
    /// Result-cache counters.
    pub cache: ResultCacheStats,
    /// Current ingestion-queue depth.
    pub queue_depth: usize,
    /// Deepest the ingestion queue has been.
    pub max_queue_depth: usize,
    /// Jobs currently dispatched to the pool and not yet completed.
    pub in_flight: usize,
    /// Deepest the deferred (admission-held) queue has been.
    pub max_deferred: usize,
    /// Mean per-request work balance across PE arrays (1.0 when the
    /// pool models a single array or shards are perfectly even).
    pub avg_shard_utilization: f64,
    /// Device-time view of the array pool: makespan, busy
    /// array-cycles (packing efficiency via
    /// [`DeviceSummary::occupancy`]), gather waits and grants. Under
    /// co-scheduling this is the array-slot ledger's account; under
    /// the all-arrays policy it is the serial whole-core equivalent
    /// accumulated from completed executions.
    pub device: DeviceSummary,
    /// Per-device fleet account when the dispatcher schedules through
    /// the fleet (co-scheduling on): device summaries, elastic
    /// joins/drains, deadline rejections. `None` under the all-arrays
    /// policy. For a 1-device fleet `fleet.devices[0] == device`.
    pub fleet: Option<FleetSummary>,
    /// Service uptime at snapshot, ns.
    pub uptime_ns: u64,
    /// Completed requests per wall-clock second since start.
    pub throughput_per_sec: f64,
    /// Per-stage span histograms and the counter registry, when the
    /// service was started with tracing on (`None` otherwise). Every
    /// other field of this snapshot is identical with tracing on or
    /// off — the bit-identity gate in the bench harness asserts it.
    pub telemetry: Option<TelemetrySummary>,
}

impl ServeStats {
    /// The record for `class`.
    #[must_use]
    pub fn class(&self, class: JobClass) -> &ClassStats {
        &self.classes[class.index()]
    }
}

impl fmt::Display for ServeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "serve: {} submitted, {} completed ({:.0}/s), {} coalesced, {} rejected, {} failed; \
             queue {}/{} peak, cache {}h/{}m ({:.0}% hit, {} evictions)",
            self.submitted,
            self.completed,
            self.throughput_per_sec,
            self.coalesced,
            self.rejected,
            self.failed,
            self.queue_depth,
            self.max_queue_depth,
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
            self.cache.evictions,
        )?;
        if self.rejected + self.queue_full_refusals > 0 {
            writeln!(
                f,
                "  rejections: {} admission cap, {} deadline, {} scratch budget, \
                 {} queue-full refusals",
                self.rejected_admission_cap,
                self.rejected_deadline,
                self.rejected_scratch,
                self.queue_full_refusals,
            )?;
        }
        if self.streamed > 0 {
            writeln!(
                f,
                "  streaming: {} streamed executions, peak scratch {} elems",
                self.streamed, self.peak_scratch_elems,
            )?;
        }
        if self.energy_pj > 0.0 {
            writeln!(
                f,
                "  energy: {:.1} nJ ({:.1} dynamic, {:.1} static)",
                self.energy_pj * 1e-3,
                self.dynamic_energy_pj * 1e-3,
                self.static_energy_pj * 1e-3,
            )?;
        }
        if self.speculative_answers > 0 {
            writeln!(
                f,
                "  speculative: {} answered early, {} verified, {} mismatches",
                self.speculative_answers, self.speculative_verified, self.speculative_mismatches,
            )?;
        }
        if self.retries + self.degraded > 0 || self.drain_timed_out {
            writeln!(
                f,
                "  fault tolerance: {} retries, {} degraded answers, drain {:.1} ms{}",
                self.retries,
                self.degraded,
                self.drain_ns as f64 * 1e-6,
                if self.drain_timed_out {
                    " (timed out)"
                } else {
                    ""
                },
            )?;
        }
        if let Some(telemetry) = &self.telemetry {
            write!(f, "{telemetry}")?;
        }
        if self.device.num_arrays > 1 {
            writeln!(
                f,
                "  device: {} arrays, makespan {} cycles, {:.0}% packed, \
                 {:.1} arrays granted/placement, {} gather-wait cycles, \
                 {} idle-gap cycles ({} backfilled)",
                self.device.num_arrays,
                self.device.makespan_cycles,
                self.device.occupancy() * 100.0,
                self.device.avg_arrays_granted(),
                self.device.wait_cycles,
                self.device.idle_gap_cycles,
                self.device.backfills,
            )?;
        }
        if let Some(fleet) = &self.fleet {
            if fleet.devices.len() > 1 || fleet.joins + fleet.drains + fleet.rejections > 0 {
                writeln!(
                    f,
                    "  fleet: {} device(s) active of {} (peak {}), {} joins, {} drains, \
                     {} deadline rejections",
                    fleet.active_devices,
                    fleet.devices.len(),
                    fleet.peak_devices,
                    fleet.joins,
                    fleet.drains,
                    fleet.rejections,
                )?;
            }
            if fleet.quarantines + fleet.probes + fleet.rollbacks > 0 {
                writeln!(
                    f,
                    "  fleet health: {} quarantines, {} probes, {} revivals, {} rollbacks",
                    fleet.quarantines, fleet.probes, fleet.revivals, fleet.rollbacks,
                )?;
            }
        }
        for c in &self.classes {
            if c.completed + c.rejected + c.failed == 0 {
                continue;
            }
            writeln!(
                f,
                "  {:>16}: {:>6} done ({} cached), p50 {:.2} ms, p95 {:.2} ms, \
                 p99 {:.2} ms, slo {:.2} ms ({:.1}% met)",
                c.class.name(),
                c.completed,
                c.cache_hits,
                c.p50_ns as f64 * 1e-6,
                c.p95_ns as f64 * 1e-6,
                c.p99_ns as f64 * 1e-6,
                c.slo_target_ns as f64 * 1e-6,
                c.slo_compliance() * 100.0,
            )?;
        }
        Ok(())
    }
}

/// Latency samples kept per class: a bounded reservoir (Vitter's
/// Algorithm R with a deterministic SplitMix64 stream), so a
/// long-lived service's memory and snapshot cost stay constant while
/// percentiles remain exact below the bound and uniformly sampled
/// above it. Counts, mean, max and SLO violations are always exact.
const RESERVOIR_CAP: usize = 4096;

#[derive(Debug)]
struct ClassAccum {
    reservoir: Vec<u64>,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
    rng_state: u64,
}

impl ClassAccum {
    fn new(seed: u64) -> Self {
        ClassAccum {
            reservoir: Vec::new(),
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            rng_state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next_rand(&mut self) -> u64 {
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn record(&mut self, total_ns: u64) {
        self.count += 1;
        self.sum_ns += u128::from(total_ns);
        self.max_ns = self.max_ns.max(total_ns);
        if self.reservoir.len() < RESERVOIR_CAP {
            self.reservoir.push(total_ns);
        } else {
            let j = (self.next_rand() % self.count) as usize;
            if j < RESERVOIR_CAP {
                self.reservoir[j] = total_ns;
            }
        }
    }
}

/// Mutable accumulator behind the service's stats mutex.
#[derive(Debug)]
pub(crate) struct StatsRecorder {
    latencies: [ClassAccum; 6],
    cache_hits: [u64; 6],
    coalesced: [u64; 6],
    rejected_admission_cap: [u64; 6],
    rejected_deadline: [u64; 6],
    rejected_scratch: [u64; 6],
    streamed: u64,
    peak_scratch_elems: u64,
    failed: [u64; 6],
    retries: [u64; 6],
    degraded: [u64; 6],
    speculative: [u64; 6],
    pub(crate) speculative_verified: u64,
    pub(crate) speculative_mismatches: u64,
    energy_sum_pj: [f64; 6],
    dynamic_energy_sum_pj: [f64; 6],
    static_energy_sum_pj: [f64; 6],
    slo_violations: [u64; 6],
    shards_sum: [u64; 6],
    shard_util_sum: [f64; 6],
    granted_sum: [u64; 6],
    array_wait_sum: [u64; 6],
    pub(crate) submitted: u64,
    pub(crate) queue_full_refusals: u64,
    pub(crate) max_queue_depth: usize,
    pub(crate) max_deferred: usize,
    pub(crate) drain_ns: u64,
    pub(crate) drain_timed_out: bool,
    slo: SloPolicy,
}

impl StatsRecorder {
    pub(crate) fn new(slo: SloPolicy) -> Self {
        StatsRecorder {
            latencies: std::array::from_fn(|i| ClassAccum::new(i as u64)),
            cache_hits: [0; 6],
            coalesced: [0; 6],
            rejected_admission_cap: [0; 6],
            rejected_deadline: [0; 6],
            rejected_scratch: [0; 6],
            streamed: 0,
            peak_scratch_elems: 0,
            failed: [0; 6],
            retries: [0; 6],
            degraded: [0; 6],
            speculative: [0; 6],
            speculative_verified: 0,
            speculative_mismatches: 0,
            energy_sum_pj: [0.0; 6],
            dynamic_energy_sum_pj: [0.0; 6],
            static_energy_sum_pj: [0.0; 6],
            slo_violations: [0; 6],
            shards_sum: [0; 6],
            shard_util_sum: [0.0; 6],
            granted_sum: [0; 6],
            array_wait_sum: [0; 6],
            submitted: 0,
            queue_full_refusals: 0,
            max_queue_depth: 0,
            max_deferred: 0,
            drain_ns: 0,
            drain_timed_out: false,
            slo,
        }
    }

    /// Records one retried execution attempt for `class`.
    pub(crate) fn record_retry(&mut self, class: JobClass) {
        self.retries[class.index()] += 1;
    }

    /// Records a completion answered by the degrade-don't-drop
    /// fallback (call alongside `record_completion`).
    pub(crate) fn record_degraded(&mut self, class: JobClass) {
        self.degraded[class.index()] += 1;
    }

    /// Records a completion answered speculatively from the
    /// functional backend (call alongside `record_completion`).
    pub(crate) fn record_speculative_answer(&mut self, class: JobClass) {
        self.speculative[class.index()] += 1;
    }

    pub(crate) fn record_completion(
        &mut self,
        class: JobClass,
        total_ns: u64,
        cached: bool,
        arrays: ArrayUse,
    ) {
        let i = class.index();
        self.latencies[i].record(total_ns);
        if cached {
            self.cache_hits[i] += 1;
        }
        if total_ns > self.slo.target_ns(class) {
            self.slo_violations[i] += 1;
        }
        self.shards_sum[i] += arrays.shards.max(1) as u64;
        self.shard_util_sum[i] += arrays.utilization;
        self.granted_sum[i] += arrays.granted.max(1) as u64;
        self.array_wait_sum[i] += arrays.wait_cycles;
        self.observe_energy(i, &arrays);
        self.observe_scratch(arrays.peak_scratch_elems);
    }

    /// Records a completion that coalesced onto an in-flight
    /// execution: counted as completed (latency, SLO) and as
    /// coalesced, but never as a cache hit — the cache had no entry
    /// yet when it arrived.
    pub(crate) fn record_coalesced(&mut self, class: JobClass, total_ns: u64, arrays: ArrayUse) {
        let i = class.index();
        self.latencies[i].record(total_ns);
        self.coalesced[i] += 1;
        if total_ns > self.slo.target_ns(class) {
            self.slo_violations[i] += 1;
        }
        self.shards_sum[i] += arrays.shards.max(1) as u64;
        self.shard_util_sum[i] += arrays.utilization;
        self.granted_sum[i] += arrays.granted.max(1) as u64;
        self.array_wait_sum[i] += arrays.wait_cycles;
        self.observe_energy(i, &arrays);
        self.observe_scratch(arrays.peak_scratch_elems);
    }

    /// Folds one completion's modelled energy into the per-class
    /// sums (cache hits and coalesced waiters carry zeros).
    fn observe_energy(&mut self, class_index: usize, arrays: &ArrayUse) {
        self.energy_sum_pj[class_index] += arrays.energy_pj;
        self.dynamic_energy_sum_pj[class_index] += arrays.dynamic_energy_pj;
        self.static_energy_sum_pj[class_index] += arrays.static_energy_pj;
    }

    /// Folds one execution's streaming-scratch high-water mark into
    /// the streamed-count and peak gauges (0 — a materialized run or
    /// cache hit — leaves both untouched).
    fn observe_scratch(&mut self, peak_scratch_elems: u64) {
        if peak_scratch_elems > 0 {
            self.streamed += 1;
            self.peak_scratch_elems = self.peak_scratch_elems.max(peak_scratch_elems);
        }
    }

    /// Records a rejection under its reason, so the snapshot's named
    /// tallies stay in lock-step with the responses' reject reasons.
    pub(crate) fn record_rejection(&mut self, class: JobClass, reason: &RejectReason) {
        match reason {
            RejectReason::AccurateAdmissionFull => {
                self.rejected_admission_cap[class.index()] += 1;
            }
            RejectReason::DeadlineUnattainable { .. } => {
                self.rejected_deadline[class.index()] += 1;
            }
            RejectReason::ScratchBudgetExceeded { .. } => {
                self.rejected_scratch[class.index()] += 1;
            }
        }
    }

    pub(crate) fn record_failure(&mut self, class: JobClass) {
        self.failed[class.index()] += 1;
    }

    pub(crate) fn observe_queue_depth(&mut self, depth: usize) {
        self.max_queue_depth = self.max_queue_depth.max(depth);
    }

    pub(crate) fn observe_deferred_depth(&mut self, depth: usize) {
        self.max_deferred = self.max_deferred.max(depth);
    }

    #[allow(clippy::too_many_arguments)] // one value object per subsystem being snapshotted
    pub(crate) fn snapshot(
        &self,
        cache: ResultCacheStats,
        queue_depth: usize,
        in_flight: usize,
        device: DeviceSummary,
        fleet: Option<FleetSummary>,
        uptime_ns: u64,
        telemetry: Option<TelemetrySummary>,
    ) -> ServeStats {
        let classes: Vec<ClassStats> = JobClass::ALL
            .into_iter()
            .map(|class| {
                let i = class.index();
                let accum = &self.latencies[i];
                let mut sorted = accum.reservoir.clone();
                sorted.sort_unstable();
                ClassStats {
                    class,
                    completed: accum.count,
                    cache_hits: self.cache_hits[i],
                    coalesced: self.coalesced[i],
                    rejected: self.rejected_admission_cap[i]
                        + self.rejected_deadline[i]
                        + self.rejected_scratch[i],
                    rejected_admission_cap: self.rejected_admission_cap[i],
                    rejected_deadline: self.rejected_deadline[i],
                    rejected_scratch: self.rejected_scratch[i],
                    failed: self.failed[i],
                    retries: self.retries[i],
                    degraded: self.degraded[i],
                    p50_ns: percentile(&sorted, 50.0),
                    p95_ns: percentile(&sorted, 95.0),
                    p99_ns: percentile(&sorted, 99.0),
                    max_ns: accum.max_ns,
                    mean_ns: if accum.count == 0 {
                        0.0
                    } else {
                        accum.sum_ns as f64 / accum.count as f64
                    },
                    slo_target_ns: self.slo.target_ns(class),
                    slo_violations: self.slo_violations[i],
                    shards: if accum.count == 0 {
                        1.0
                    } else {
                        self.shards_sum[i] as f64 / accum.count as f64
                    },
                    arrays_granted: if accum.count == 0 {
                        1.0
                    } else {
                        self.granted_sum[i] as f64 / accum.count as f64
                    },
                    avg_array_wait_cycles: if accum.count == 0 {
                        0.0
                    } else {
                        self.array_wait_sum[i] as f64 / accum.count as f64
                    },
                    energy_pj: self.energy_sum_pj[i],
                    dynamic_energy_pj: self.dynamic_energy_sum_pj[i],
                    static_energy_pj: self.static_energy_sum_pj[i],
                    speculative: self.speculative[i],
                }
            })
            .collect();
        let completed: u64 = classes.iter().map(|c| c.completed).sum();
        let shard_util_total: f64 = self.shard_util_sum.iter().sum();
        ServeStats {
            submitted: self.submitted,
            completed,
            coalesced: classes.iter().map(|c| c.coalesced).sum(),
            rejected: classes.iter().map(|c| c.rejected).sum(),
            rejected_admission_cap: classes.iter().map(|c| c.rejected_admission_cap).sum(),
            rejected_deadline: classes.iter().map(|c| c.rejected_deadline).sum(),
            rejected_scratch: classes.iter().map(|c| c.rejected_scratch).sum(),
            streamed: self.streamed,
            peak_scratch_elems: self.peak_scratch_elems,
            queue_full_refusals: self.queue_full_refusals,
            failed: classes.iter().map(|c| c.failed).sum(),
            retries: classes.iter().map(|c| c.retries).sum(),
            degraded: classes.iter().map(|c| c.degraded).sum(),
            speculative_answers: classes.iter().map(|c| c.speculative).sum(),
            speculative_verified: self.speculative_verified,
            speculative_mismatches: self.speculative_mismatches,
            energy_pj: classes.iter().map(|c| c.energy_pj).sum(),
            dynamic_energy_pj: classes.iter().map(|c| c.dynamic_energy_pj).sum(),
            static_energy_pj: classes.iter().map(|c| c.static_energy_pj).sum(),
            drain_ns: self.drain_ns,
            drain_timed_out: self.drain_timed_out,
            cache,
            queue_depth,
            max_queue_depth: self.max_queue_depth,
            in_flight,
            max_deferred: self.max_deferred,
            avg_shard_utilization: if completed == 0 {
                1.0
            } else {
                shard_util_total / completed as f64
            },
            device,
            fleet,
            uptime_ns,
            throughput_per_sec: if uptime_ns == 0 {
                0.0
            } else {
                completed as f64 / (uptime_ns as f64 * 1e-9)
            },
            telemetry,
            classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 95.0), 95);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[42], 50.0), 42);
        assert_eq!(percentile(&[], 99.0), 0);
    }

    fn two_arrays() -> ArrayUse {
        ArrayUse {
            shards: 2,
            utilization: 0.9,
            granted: 3,
            wait_cycles: 40,
            peak_scratch_elems: 96,
            energy_pj: 1_000.0,
            dynamic_energy_pj: 900.0,
            static_energy_pj: 100.0,
        }
    }

    #[test]
    fn reservoir_bounds_memory_with_exact_counters() {
        let class = JobClass::ALL[1];
        let mut rec = StatsRecorder::new(SloPolicy::edge_defaults().with_target(class, 10));
        let n = 3 * RESERVOIR_CAP as u64;
        for v in 1..=n {
            rec.record_completion(class, v, false, ArrayUse::single());
        }
        let accum = &rec.latencies[class.index()];
        assert_eq!(accum.reservoir.len(), RESERVOIR_CAP, "reservoir is bounded");
        let snap = rec.snapshot(
            ResultCacheStats::default(),
            0,
            0,
            DeviceSummary::default(),
            None,
            1,
            None,
        );
        let c = snap.class(class);
        assert_eq!(c.completed, n, "count stays exact past the bound");
        assert_eq!(c.max_ns, n, "max stays exact past the bound");
        assert!((c.mean_ns - (n + 1) as f64 / 2.0).abs() < 1e-6);
        assert_eq!(c.slo_violations, n - 10);
        // The sampled median of a uniform 1..=n stream lands near n/2.
        let mid = n as f64 / 2.0;
        assert!(
            (c.p50_ns as f64) > mid * 0.8 && (c.p50_ns as f64) < mid * 1.2,
            "sampled p50 {} should approximate {}",
            c.p50_ns,
            mid
        );
    }

    #[test]
    fn coalesced_completions_count_toward_latency_but_not_cache() {
        let class = JobClass::ALL[2];
        let slo = SloPolicy::edge_defaults().with_target(class, 1_000);
        let mut rec = StatsRecorder::new(slo);
        rec.record_completion(class, 500, false, two_arrays());
        rec.record_coalesced(class, 400, two_arrays());
        rec.record_coalesced(class, 2_000, two_arrays());
        let snap = rec.snapshot(
            ResultCacheStats::default(),
            0,
            0,
            DeviceSummary::default(),
            None,
            1,
            None,
        );
        let c = snap.class(class);
        assert_eq!(c.completed, 3);
        assert_eq!(c.coalesced, 2);
        assert_eq!(c.cache_hits, 0);
        assert_eq!(c.slo_violations, 1);
        assert_eq!(snap.coalesced, 2);
        assert_eq!(snap.completed, 3);
        // All three completions ran on 2 arrays at 0.9 balance,
        // granted 3 with a 40-cycle gather wait.
        assert!((c.shards - 2.0).abs() < 1e-12);
        assert!((snap.avg_shard_utilization - 0.9).abs() < 1e-12);
        assert!((c.arrays_granted - 3.0).abs() < 1e-12);
        assert!((c.avg_array_wait_cycles - 40.0).abs() < 1e-12);
        // All three executions streamed with a 96-element peak.
        assert_eq!(snap.streamed, 3);
        assert_eq!(snap.peak_scratch_elems, 96);
        // Energy sums whatever the dispatcher attributes per
        // completion (it zeroes coalesced/cached energy itself; here
        // every record carried 1000 pJ, 900 dynamic + 100 static).
        assert!((c.energy_pj - 3_000.0).abs() < 1e-9);
        assert!((c.dynamic_energy_pj - 2_700.0).abs() < 1e-9);
        assert!((c.static_energy_pj - 300.0).abs() < 1e-9);
        assert!((snap.energy_pj - 3_000.0).abs() < 1e-9);
        assert!((snap.dynamic_energy_pj - 2_700.0).abs() < 1e-9);
        assert!((snap.static_energy_pj - 300.0).abs() < 1e-9);
        // Classes with no completions default to the single-array
        // socket so serialized snapshots stay schema-compatible.
        assert!((snap.classes[0].shards - 1.0).abs() < 1e-12);
        assert!((snap.classes[0].arrays_granted - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recorder_tracks_slo_violations_per_class() {
        let class = JobClass::ALL[0];
        let slo = SloPolicy::edge_defaults().with_target(class, 1_000);
        let mut rec = StatsRecorder::new(slo);
        rec.record_completion(class, 500, false, ArrayUse::single());
        rec.record_completion(class, 1_500, true, ArrayUse::single());
        rec.record_completion(class, 2_000, false, ArrayUse::single());
        let snap = rec.snapshot(
            ResultCacheStats::default(),
            0,
            0,
            DeviceSummary::default(),
            None,
            1_000_000_000,
            None,
        );
        let c = snap.class(class);
        assert_eq!(c.completed, 3);
        assert_eq!(c.cache_hits, 1);
        assert_eq!(c.slo_violations, 2);
        assert!((c.slo_compliance() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.p50_ns, 1_500);
        assert_eq!(c.max_ns, 2_000);
        assert!((snap.throughput_per_sec - 3.0).abs() < 1e-9);
    }
}
