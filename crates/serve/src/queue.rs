//! The bounded ingestion queue.
//!
//! A `Mutex<VecDeque>` + condvar channel with a hard capacity: when
//! the service is saturated, producers either block ([`BoundedQueue::push`])
//! or get the item back ([`BoundedQueue::try_push`]) — the queue never
//! grows without bound. This is the backpressure boundary of the whole
//! service: the dispatcher stops draining when the worker pool's
//! in-flight cap is reached, this queue then fills, and the pressure
//! reaches the client.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Locks the queue mutex, recovering from poison instead of
/// propagating a producer's panic to every other client: the queue
/// state is a plain `VecDeque` plus a closed flag, both valid at
/// every instruction boundary, so a panic while holding the guard
/// cannot leave them torn.
fn lock_clean<'a, T>(mutex: &'a Mutex<State<T>>) -> MutexGuard<'a, State<T>> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity (the item is handed back).
    Full(T),
    /// The queue is closed (the item is handed back).
    Closed(T),
}

/// Outcome of a pop attempt.
#[derive(Debug)]
pub enum PopResult<T> {
    /// An item.
    Item(T),
    /// No item arrived within the timeout.
    TimedOut,
    /// The queue is closed and drained; no item will ever arrive.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer queue with blocking and non-blocking
/// producers and a timeout-based consumer.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be >= 1");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The hard capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth.
    #[must_use]
    pub fn len(&self) -> usize {
        lock_clean(&self.state).items.len()
    }

    /// `true` when currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push; hands the item back when full or closed.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut state = lock_clean(&self.state);
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocking push: waits while the queue is at capacity
    /// (backpressure), returning the depth after insertion.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] when the queue closes before the item is
    /// accepted.
    pub fn push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut state = lock_clean(&self.state);
        loop {
            if state.closed {
                return Err(PushError::Closed(item));
            }
            if state.items.len() < self.capacity {
                state.items.push_back(item);
                let depth = state.items.len();
                self.not_empty.notify_one();
                return Ok(depth);
            }
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> PopResult<T> {
        let mut state = lock_clean(&self.state);
        match state.items.pop_front() {
            Some(item) => {
                self.not_full.notify_one();
                PopResult::Item(item)
            }
            None if state.closed => PopResult::Closed,
            None => PopResult::TimedOut,
        }
    }

    /// Pops one item, waiting up to `timeout` for one to arrive.
    pub fn pop_timeout(&self, timeout: Duration) -> PopResult<T> {
        let mut state = lock_clean(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return PopResult::Item(item);
            }
            if state.closed {
                return PopResult::Closed;
            }
            let (next, result) = self
                .not_empty
                .wait_timeout(state, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            state = next;
            if result.timed_out() {
                return match state.items.pop_front() {
                    Some(item) => {
                        self.not_full.notify_one();
                        PopResult::Item(item)
                    }
                    None if state.closed => PopResult::Closed,
                    None => PopResult::TimedOut,
                };
            }
        }
    }

    /// Closes the queue: pending items remain poppable, new pushes are
    /// refused, and every blocked producer/consumer wakes.
    pub fn close(&self) {
        let mut state = lock_clean(&self.state);
        state.closed = true;
        drop(state);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn try_push_refuses_beyond_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        assert!(matches!(q.try_pop(), PopResult::Item(1)));
        assert_eq!(q.try_push(3), Ok(2));
    }

    #[test]
    fn blocking_push_waits_for_room_instead_of_growing() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0u64).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let start = Instant::now();
                q.push(1u64).unwrap();
                start.elapsed()
            })
        };
        // Give the producer time to block on the full queue.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(q.len(), 1, "queue must not grow past capacity");
        assert!(matches!(q.try_pop(), PopResult::Item(0)));
        let blocked_for = producer.join().unwrap();
        assert!(
            blocked_for >= Duration::from_millis(30),
            "push must have blocked, blocked {blocked_for:?}"
        );
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn close_wakes_blocked_producer_and_drains() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(7).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(8))
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(PushError::Closed(8)));
        assert!(matches!(q.try_pop(), PopResult::Item(7)));
        assert!(matches!(q.try_pop(), PopResult::Closed));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            PopResult::Closed
        ));
    }

    #[test]
    fn pop_timeout_times_out_when_idle() {
        let q: BoundedQueue<i32> = BoundedQueue::new(4);
        let start = Instant::now();
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(20)),
            PopResult::TimedOut
        ));
        assert!(start.elapsed() >= Duration::from_millis(15));
    }
}
