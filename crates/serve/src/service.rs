//! The streaming service: bounded ingestion, admission control,
//! micro-batched dispatch, result caching, per-class SLO stats.
//!
//! ```text
//!  clients ──submit──▶ BoundedQueue (backpressure)
//!                         │ micro-batch drain, gated on in-flight cap
//!                         ▼
//!                    dispatcher thread
//!                    │  cache hit ──────────────▶ Response (no core)
//!                    │  key in flight ──────────▶ coalesce (waiter)
//!                    │  miss, fast ─────────────▶ WorkerPool
//!                    │  miss, accurate ─┬─slot──▶ WorkerPool
//!                    │                  └─full──▶ deferred (bounded)
//!                    ▼                                │ overflow
//!                 outcomes ──▶ cache insert ──▶ Response│
//!                          └──▶ waiter fan-out         ▼
//!                                                  Rejected
//! ```
//!
//! One dispatcher thread owns the cache and all scheduling decisions;
//! workers stay lock-free on their cores. Backpressure is a chain:
//! the worker pool never holds more than `max_in_flight` jobs, the
//! dispatcher stops draining when that cap is reached, the bounded
//! ingestion queue then fills, and `submit` blocks (or `try_submit`
//! refuses) at the client. Admission control keeps the cycle-accurate
//! fidelity from starving the fast path: at most
//! `max_accurate_in_flight` accurate jobs occupy workers at once, the
//! overflow parks in a bounded deferred queue, and past that bound
//! accurate requests are rejected outright rather than queued without
//! bound.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tempus_chaos::{FaultInjector, FaultPlan};
use tempus_fleet::{
    ElasticPolicy, FleetConfig, FleetEvent, FleetOutcome, FleetScheduler, FleetSummary,
};
use tempus_runtime::pool::{PoolOutcome, PoolTask, WorkerPool};
use tempus_runtime::stats::PERIOD_NS;
use tempus_runtime::{
    ArrayAssignment, ArrayPlanner, ArrayPolicy, BackendKind, DeviceSummary, EngineConfig,
    GovernorPolicy, Job, JobResult, Placement, RuntimeError, StreamingConfig, WorkerStats,
};
use tempus_telemetry::{
    Clock, Counter, DeviceTimeline, PlacedSpan, Stage, Telemetry, TraceSink, TrackId,
    DEFAULT_RING_CAPACITY,
};

use crate::cache::{cache_key, CacheEntry, ResultCache, ResultCacheStats};
use crate::class::{Fidelity, JobClass};
use crate::queue::{BoundedQueue, PopResult, PushError};
use crate::request::{
    CacheOutcome, RejectReason, Request, Response, ResponseOutcome, ServedResult, SubmitError,
};
use crate::stats::{ArrayUse, ServeStats, SloPolicy, StatsRecorder};

/// Locks a mutex, recovering the guard from a poisoned lock instead
/// of cascading the panic: everything behind the service's mutexes is
/// plain counters/gauges, valid at every instruction boundary, and
/// one panicking thread must not take the whole service's
/// observability (or its shutdown path) down with it.
fn lock_clean<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bounded ingestion-queue capacity — the backpressure boundary.
    pub queue_capacity: usize,
    /// Most requests drained from the queue per dispatch iteration
    /// (the micro-batch the dispatcher deals onto the pool).
    pub micro_batch: usize,
    /// Most jobs outstanding on the worker pool at once (all classes).
    pub max_in_flight: usize,
    /// Most cycle-accurate jobs outstanding at once (admission
    /// control; must be ≤ `max_in_flight`). Zero disallows accurate
    /// traffic: such requests are rejected, never deferred.
    pub max_accurate_in_flight: usize,
    /// Bound on the deferred queue holding admission-held accurate
    /// jobs; overflow is rejected.
    pub deferred_capacity: usize,
    /// Result-cache capacity, in entries.
    pub cache_capacity: usize,
    /// Backend serving [`Fidelity::Accurate`] requests
    /// (cycle-accurate Tempus by default; the NVDLA baseline is also
    /// valid).
    pub accurate_backend: BackendKind,
    /// Worker pool configuration (worker count, core configs, GEMM
    /// grid; the `backend` field is ignored — fidelity picks the
    /// backend per job).
    pub engine: EngineConfig,
    /// Per-class latency SLO targets.
    pub slo: SloPolicy,
    /// Simulated devices behind the dispatcher (each one an
    /// `arrays`-wide ledger); > 1 requires co-scheduling.
    pub devices: usize,
    /// Let narrow jobs backfill into idle array gaps (fleet
    /// co-scheduling only).
    pub backfill: bool,
    /// Elastic fleet sizing; `None` keeps the device count fixed.
    pub elastic: Option<ElasticPolicy>,
    /// Fleet-wide average-power budget in mW; admission then picks
    /// the lowest-energy deadline-feasible (width, frequency) point
    /// whose power fits under the cap. `None` (the default) admits on
    /// latency alone — bit-identical to the pre-DVFS scheduler.
    pub power_cap_mw: Option<f64>,
    /// Per-array DVFS governor down-clocking idle-heavy arrays;
    /// `None` (the default) pins every array at the nominal clock.
    pub freq_governor: Option<GovernorPolicy>,
    /// Answer-now-verify-later serving: accurate-fidelity requests
    /// are answered immediately from the bit-identical functional
    /// backend while the cycle-accurate execution verifies the
    /// digest asynchronously.
    pub speculative: bool,
    /// Record dual-clock trace spans (queue → admit → route → grant →
    /// execute → per-shard) into per-thread ring buffers. Off by
    /// default: a disabled service hands every layer a no-op recorder
    /// and pays one branch per would-be event.
    pub tracing: bool,
    /// Per-recorder ring capacity (events, drop-oldest past it) when
    /// tracing.
    pub trace_ring_capacity: usize,
    /// Deterministic fault injection: a seeded [`FaultPlan`] dealt to
    /// execution attempts by the worker pool. `None` (the default)
    /// hands every layer a disabled injector — one branch per job,
    /// bit-identical behaviour to a chaos-free build.
    pub chaos: Option<FaultPlan>,
    /// Per-job watchdog base deadline for the functional backend
    /// (cycle-accurate backends get a 20× leash). `None` disables the
    /// watchdog; [`ServeConfig::with_chaos`] defaults it on.
    pub watchdog: Option<Duration>,
    /// Most times one request may be re-executed after an
    /// infrastructure fault before the degrade-don't-drop fallback
    /// answers it.
    pub max_retries: u32,
    /// Bound on how long shutdown waits for in-flight jobs to drain
    /// before answering the stragglers as failed.
    pub drain_timeout: Duration,
}

impl ServeConfig {
    /// Defaults sized for the paper's 4-worker runtime: a 64-deep
    /// ingestion queue, 16-job micro-batches, 2× workers in flight,
    /// one accurate job at a time, a 4096-entry cache.
    #[must_use]
    pub fn new() -> Self {
        let engine = EngineConfig::new(BackendKind::FastFunctional);
        ServeConfig {
            queue_capacity: 64,
            micro_batch: 16,
            max_in_flight: engine.workers * 2,
            max_accurate_in_flight: 1,
            deferred_capacity: 32,
            cache_capacity: 4096,
            accurate_backend: BackendKind::TempusCycleAccurate,
            engine,
            slo: SloPolicy::edge_defaults(),
            devices: 1,
            backfill: false,
            elastic: None,
            power_cap_mw: None,
            freq_governor: None,
            speculative: false,
            tracing: false,
            trace_ring_capacity: DEFAULT_RING_CAPACITY,
            chaos: None,
            watchdog: None,
            max_retries: 3,
            drain_timeout: Duration::from_secs(5),
        }
    }

    /// Enables deterministic fault injection under `plan` (builder
    /// style), and turns the per-job watchdog on (50 ms functional
    /// base) unless one was configured already — injected stalls are
    /// only recoverable with a watchdog to cancel them.
    #[must_use]
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        if self.watchdog.is_none() {
            self.watchdog = Some(Duration::from_millis(50));
        }
        self
    }

    /// Overrides the per-job watchdog base deadline (builder style).
    #[must_use]
    pub fn with_watchdog(mut self, base: Duration) -> Self {
        self.watchdog = Some(base);
        self
    }

    /// Overrides the retry budget (builder style).
    #[must_use]
    pub fn with_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Overrides the shutdown drain bound (builder style).
    #[must_use]
    pub fn with_drain_timeout(mut self, drain_timeout: Duration) -> Self {
        self.drain_timeout = drain_timeout;
        self
    }

    /// Enables dual-clock span tracing (builder style): the service
    /// creates a [`Telemetry`] hub, instruments the dispatcher, fleet
    /// and workers, and surfaces per-stage histograms in
    /// [`ServeStats::telemetry`]. Outputs and placements are
    /// bit-identical to an untraced run.
    #[must_use]
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Overrides the per-recorder trace ring capacity (builder
    /// style); implies tracing.
    #[must_use]
    pub fn with_trace_ring_capacity(mut self, capacity: usize) -> Self {
        self.tracing = true;
        self.trace_ring_capacity = capacity.max(1);
        self
    }

    /// Overrides the worker count (builder style).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.engine.workers = workers;
        self.max_in_flight = workers.max(1) * 2;
        self
    }

    /// Overrides the modelled PE-array count per worker core (builder
    /// style): jobs shard across the arrays and the service reports
    /// per-class array occupancy in its stats.
    #[must_use]
    pub fn with_arrays(mut self, num_arrays: usize) -> Self {
        self.engine.num_arrays = num_arrays.max(1);
        self
    }

    /// The modelled PE-array count per worker core.
    #[must_use]
    pub fn num_arrays(&self) -> usize {
        self.engine.num_arrays
    }

    /// Enables cost-aware array-slot co-scheduling (builder style):
    /// instead of every job owning the whole multi-array core, the
    /// budget planner picks each job's width and the dispatcher packs
    /// concurrent jobs onto disjoint array sets through the
    /// device-time ledger.
    #[must_use]
    pub fn with_co_scheduling(mut self) -> Self {
        self.engine = self.engine.with_co_scheduling();
        self
    }

    /// Overrides the array-granting policy (builder style).
    #[must_use]
    pub fn with_scheduling(mut self, scheduling: ArrayPolicy) -> Self {
        self.engine = self.engine.with_scheduling(scheduling);
        self
    }

    /// `true` when the dispatcher co-schedules array slots.
    #[must_use]
    pub fn co_scheduling(&self) -> bool {
        self.engine.scheduling.co_schedules()
    }

    /// Enables streaming execution on every worker backend (builder
    /// style): GEMM jobs run through the bounded tile arena, network
    /// jobs through per-row conv → SDP → pool fusion — bit-identical
    /// outputs and cycles, with peak scratch surfaced per response.
    #[must_use]
    pub fn with_streaming(mut self) -> Self {
        self.engine
            .streaming
            .get_or_insert_with(StreamingConfig::default);
        self
    }

    /// Sets the streaming-scratch arena budget in elements (builder
    /// style; implies streaming). Streamed executions size their tile
    /// arenas inside the budget, and scratch-aware admission rejects
    /// jobs whose smallest possible arena still exceeds it with
    /// [`RejectReason::ScratchBudgetExceeded`].
    #[must_use]
    pub fn with_scratch_budget(mut self, budget_elems: u64) -> Self {
        self.engine.streaming = Some(StreamingConfig {
            scratch_budget_elems: Some(budget_elems),
        });
        self
    }

    /// The configured streaming mode, if any.
    #[must_use]
    pub fn streaming(&self) -> Option<StreamingConfig> {
        self.engine.streaming
    }

    /// Overrides the ingestion-queue capacity (builder style).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Overrides the result-cache capacity (builder style).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Overrides the engine configuration (builder style), keeping
    /// `max_in_flight` in step with the worker count.
    #[must_use]
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.max_in_flight = engine.workers.max(1) * 2;
        self.engine = engine;
        self
    }

    /// Overrides admission control (builder style).
    #[must_use]
    pub fn with_admission(
        mut self,
        max_accurate_in_flight: usize,
        deferred_capacity: usize,
    ) -> Self {
        self.max_accurate_in_flight = max_accurate_in_flight;
        self.deferred_capacity = deferred_capacity;
        self
    }

    /// Overrides the SLO policy (builder style).
    #[must_use]
    pub fn with_slo(mut self, slo: SloPolicy) -> Self {
        self.slo = slo;
        self
    }

    /// Puts `devices` simulated replicas behind the dispatcher
    /// (builder style). More than one device implies fleet
    /// co-scheduling, so this enables it.
    #[must_use]
    pub fn with_devices(mut self, devices: usize) -> Self {
        self.devices = devices.max(1);
        if self.devices > 1 && !self.co_scheduling() {
            self = self.with_co_scheduling();
        }
        self
    }

    /// Enables look-ahead backfilling into idle array gaps (builder
    /// style). Backfilling is a fleet-scheduler move, so this enables
    /// co-scheduling too.
    #[must_use]
    pub fn with_backfill(mut self) -> Self {
        self.backfill = true;
        if !self.co_scheduling() {
            self = self.with_co_scheduling();
        }
        self
    }

    /// Enables elastic fleet sizing under `policy` (builder style);
    /// implies co-scheduling.
    #[must_use]
    pub fn with_elastic(mut self, policy: ElasticPolicy) -> Self {
        self.elastic = Some(policy);
        if !self.co_scheduling() {
            self = self.with_co_scheduling();
        }
        self
    }

    /// Caps fleet-wide average power at `cap_mw` milliwatts (builder
    /// style): admission walks the width × frequency-ladder grid and
    /// commits the lowest-energy deadline-feasible point that fits
    /// under the cap. Power-aware admission is a fleet-scheduler
    /// move, so this enables co-scheduling too.
    #[must_use]
    pub fn with_power_cap(mut self, cap_mw: f64) -> Self {
        self.power_cap_mw = Some(cap_mw);
        if !self.co_scheduling() {
            self = self.with_co_scheduling();
        }
        self
    }

    /// Enables the per-array DVFS governor (builder style): arrays
    /// whose idle-fraction EWMA runs high are stepped down the
    /// frequency ladder, trading latency on idle-heavy arrays for
    /// leakage energy. Implies co-scheduling (the governor lives in
    /// the array-slot ledger).
    #[must_use]
    pub fn with_freq_governor(mut self, governor: GovernorPolicy) -> Self {
        self.freq_governor = Some(governor);
        if !self.co_scheduling() {
            self = self.with_co_scheduling();
        }
        self
    }

    /// Enables answer-now-verify-later serving (builder style):
    /// accurate-fidelity requests are answered immediately from the
    /// bit-identical functional backend, and the cycle-accurate
    /// execution verifies the answer's digest when it completes
    /// (surfaced as `speculative_answers` / `speculative_mismatches`
    /// in the stats — the equivalence contract keeps mismatches at
    /// zero).
    #[must_use]
    pub fn with_speculative(mut self) -> Self {
        self.speculative = true;
        self
    }

    /// The fleet shape the dispatcher schedules through when
    /// co-scheduling.
    #[must_use]
    pub fn fleet_config(&self) -> FleetConfig {
        let mut fleet = FleetConfig::new(self.devices, self.engine.num_arrays);
        if self.backfill {
            fleet = fleet.with_backfill();
        }
        if let Some(policy) = self.elastic {
            fleet = fleet.with_elastic(policy);
        }
        if let Some(cap_mw) = self.power_cap_mw {
            fleet = fleet.with_power_cap(cap_mw);
        }
        if let Some(governor) = self.freq_governor {
            fleet = fleet.with_freq_governor(governor);
        }
        fleet
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig::new()
    }
}

/// A request inside the service, stamped at admission.
struct Ingest {
    request: Request,
    accepted: Instant,
}

/// Which leg of a speculative answer-now-verify-later pair a pending
/// execution is (or `None` for ordinary dispatches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpecRole {
    /// An ordinary execution: the one leg answers the client.
    None,
    /// The speculative answer leg: a functional-backend execution
    /// that answers the client immediately and leaves every durable
    /// side effect (cache insert, device accounting, waiter fan-out)
    /// to the verify leg.
    Answer,
    /// The accurate execution of a speculative pair: it verifies the
    /// answer leg's digest, owns the durable side effects, and only
    /// answers the client itself when it completes first.
    Verify,
}

/// A job dispatched to the pool, awaiting its outcome.
struct Pending {
    class: JobClass,
    key: u64,
    accepted: Instant,
    dispatched: Instant,
    /// The fleet placement the job runs under (co-scheduling only) —
    /// kept so its device-cycle spans can be recorded at completion,
    /// when the backend's per-shard cycles are known.
    placed: Option<(usize, Placement)>,
    /// A copy of the job, kept only when recovery is possible
    /// (injection enabled or a watchdog armed) so a faulted attempt
    /// can be re-executed. `None` on fault-free configs — those pay
    /// no clone.
    job: Option<Job>,
    /// Which execution attempt this record covers; outcomes carry the
    /// same stamp, so a late (watchdog-cancelled) attempt can never
    /// answer a newer one.
    attempt: u32,
    /// `true` once the degrade-don't-drop fallback re-aimed this
    /// request at the functional backend with injection off.
    degraded: bool,
    /// This record's role in a speculative answer/verify pair.
    spec: SpecRole,
}

/// Base retry backoff in device cycles; attempt `n` waits
/// `base << (n - 1)` cycles before its re-admission arrival, charging
/// recovery to the modelled clock deterministically.
const RETRY_BACKOFF_BASE_CYCLES: u64 = 1_000;

/// An admission-held accurate job awaiting a slot.
struct Held {
    job: Job,
    class: JobClass,
    key: u64,
    accepted: Instant,
    deadline_cycles: Option<u64>,
    /// `true` when a speculative answer leg was already submitted for
    /// this request (at deferral), so its dispatch becomes the verify
    /// leg without submitting a second answer.
    speculated: bool,
}

/// A request coalesced onto an identical in-flight execution: it
/// holds no job (the work is already running) and is answered by
/// fan-out when that execution completes.
struct Waiter {
    job_id: u64,
    job_name: String,
    class: JobClass,
    accepted: Instant,
}

/// Most requests that may coalesce onto one in-flight execution.
/// Past this bound a duplicate falls through to the normal admission
/// path (cap, deferral, rejection), so a retry-storm on one hot key
/// cannot grow the waiter list — or the completion fan-out burst —
/// without limit.
const MAX_WAITERS_PER_KEY: usize = 64;

/// The running service: submit requests, receive responses, snapshot
/// stats, shut down.
pub struct StreamingService {
    ingress: Arc<BoundedQueue<Ingest>>,
    response_rx: Receiver<Response>,
    stats: Arc<Mutex<StatsRecorder>>,
    cache_stats: Arc<Mutex<ResultCacheStats>>,
    in_flight_gauge: Arc<AtomicUsize>,
    device_gauge: Arc<Mutex<DeviceSummary>>,
    fleet_gauge: Arc<Mutex<Option<FleetSummary>>>,
    dispatcher: Option<JoinHandle<Vec<WorkerStats>>>,
    started: Instant,
    telemetry: Telemetry,
}

impl StreamingService {
    /// Starts the service: spawns the worker pool and the dispatcher
    /// thread.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoWorkers`] when the engine config has
    /// zero workers.
    ///
    /// # Panics
    ///
    /// Panics when `queue_capacity`, `micro_batch`, `max_in_flight`
    /// or `cache_capacity` is zero, or when the accurate backend is
    /// the functional one (that would defeat admission control's
    /// purpose but silently work; misconfiguration should be loud).
    pub fn start(config: ServeConfig) -> Result<Self, RuntimeError> {
        assert!(config.micro_batch > 0, "micro_batch must be >= 1");
        assert!(config.max_in_flight > 0, "max_in_flight must be >= 1");
        // Asserted here, on the caller's thread — ResultCache::new
        // repeats the check, but inside the dispatcher thread, where
        // a panic would surface as a hang instead.
        assert!(config.cache_capacity > 0, "cache_capacity must be >= 1");
        assert!(
            config.accurate_backend != BackendKind::FastFunctional,
            "the accurate fidelity must map to a cycle-accurate backend"
        );
        assert!(
            config.devices == 1 || config.co_scheduling(),
            "a multi-device fleet requires co-scheduling"
        );
        let telemetry = if config.tracing {
            Telemetry::enabled(config.trace_ring_capacity)
        } else {
            Telemetry::disabled()
        };
        let injector = config
            .chaos
            .map_or_else(FaultInjector::disabled, FaultInjector::enabled);
        let pool = WorkerPool::spawn_chaos(
            config.engine.clone(),
            telemetry.clone(),
            injector.clone(),
            config.watchdog,
        )?;
        let ingress = Arc::new(BoundedQueue::new(config.queue_capacity));
        let (response_tx, response_rx) = channel();
        let stats = Arc::new(Mutex::new(StatsRecorder::new(config.slo.clone())));
        let cache_stats = Arc::new(Mutex::new(ResultCacheStats::default()));
        let in_flight_gauge = Arc::new(AtomicUsize::new(0));
        let num_arrays = config.engine.num_arrays.max(1);
        let device_gauge = Arc::new(Mutex::new(DeviceSummary {
            num_arrays,
            ..DeviceSummary::default()
        }));
        let fleet_gauge = Arc::new(Mutex::new(None));
        // Under the cost-aware policy the dispatcher owns a width
        // planner and the device-time array ledger; under the
        // all-arrays policy each job owns the whole core and device
        // time is accumulated serially from completions.
        let planner = match config.engine.scheduling {
            ArrayPolicy::CostAware(policy) => Some(ArrayPlanner::new(&config.engine, policy)),
            ArrayPolicy::AllArrays => None,
        };
        let mut fleet = FleetScheduler::new(config.fleet_config());
        // The fleet logs its decisions (previews, routes, elastic
        // actions) only when someone will drain them into a trace.
        fleet.set_recording(telemetry.is_enabled());
        let dispatcher = {
            let ingress = Arc::clone(&ingress);
            let stats = Arc::clone(&stats);
            let cache_stats = Arc::clone(&cache_stats);
            let in_flight_gauge = Arc::clone(&in_flight_gauge);
            let device_gauge = Arc::clone(&device_gauge);
            let fleet_gauge = Arc::clone(&fleet_gauge);
            let telemetry2 = telemetry.clone();
            std::thread::spawn(move || {
                let sink = telemetry2.sink();
                let dispatch_track = telemetry2.track("dispatcher", Clock::Wall, 0);
                // 250 MHz device clock: 4 ns = 4000 ps per cycle.
                let timeline = DeviceTimeline::new(&telemetry2, (PERIOD_NS * 1000.0) as u64);
                Dispatcher {
                    cache: ResultCache::new(config.cache_capacity),
                    config,
                    pool,
                    injector,
                    ingress,
                    response_tx,
                    stats,
                    cache_stats,
                    in_flight_gauge,
                    device_gauge,
                    fleet_gauge,
                    planner,
                    fleet,
                    telemetry: telemetry2,
                    sink,
                    dispatch_track,
                    timeline,
                    serial_device: DeviceSummary {
                        num_arrays,
                        ..DeviceSummary::default()
                    },
                    deferred: VecDeque::new(),
                    pending: HashMap::new(),
                    inflight_waiters: HashMap::new(),
                    spec_digests: HashMap::new(),
                    in_flight: 0,
                    accurate_in_flight: 0,
                    ingress_closed: false,
                    drain_started: None,
                    drain_timed_out: false,
                }
                .run()
            })
        };
        Ok(StreamingService {
            ingress,
            response_rx,
            stats,
            cache_stats,
            in_flight_gauge,
            device_gauge,
            fleet_gauge,
            dispatcher: Some(dispatcher),
            started: Instant::now(),
            telemetry,
        })
    }

    /// The service's telemetry hub. Disabled (inert) unless the
    /// config asked for tracing; after [`StreamingService::shutdown`]
    /// the hub's `export()` holds the full merged trace.
    #[must_use]
    pub fn telemetry(&self) -> Telemetry {
        self.telemetry.clone()
    }

    /// Submits a request, **blocking** while the ingestion queue is
    /// at capacity — the backpressure path.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShutDown`] when the service has been shut down.
    pub fn submit(&self, request: Request) -> Result<(), SubmitError> {
        let ingest = Ingest {
            request,
            accepted: Instant::now(),
        };
        match self.ingress.push(ingest) {
            Ok(depth) => {
                let mut stats = lock_clean(&self.stats);
                stats.submitted += 1;
                stats.observe_queue_depth(depth);
                Ok(())
            }
            Err(PushError::Closed(i) | PushError::Full(i)) => {
                Err(SubmitError::ShutDown(Box::new(i.request)))
            }
        }
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the bounded queue is at
    /// capacity (the request is handed back for retry),
    /// [`SubmitError::ShutDown`] after shutdown.
    pub fn try_submit(&self, request: Request) -> Result<(), SubmitError> {
        let ingest = Ingest {
            request,
            accepted: Instant::now(),
        };
        match self.ingress.try_push(ingest) {
            Ok(depth) => {
                let mut stats = lock_clean(&self.stats);
                stats.submitted += 1;
                stats.observe_queue_depth(depth);
                Ok(())
            }
            Err(PushError::Full(i)) => {
                lock_clean(&self.stats).queue_full_refusals += 1;
                self.telemetry.count(Counter::RejectedQueueFull, 1);
                Err(SubmitError::QueueFull(Box::new(i.request)))
            }
            Err(PushError::Closed(i)) => Err(SubmitError::ShutDown(Box::new(i.request))),
        }
    }

    /// Receives one response, waiting up to `timeout`.
    #[must_use]
    pub fn recv_response(&self, timeout: Duration) -> Option<Response> {
        self.response_rx.recv_timeout(timeout).ok()
    }

    /// Point-in-time service snapshot.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        let cache = *lock_clean(&self.cache_stats);
        let device = *lock_clean(&self.device_gauge);
        let fleet = lock_clean(&self.fleet_gauge).clone();
        let stats = lock_clean(&self.stats);
        stats.snapshot(
            cache,
            self.ingress.len(),
            self.in_flight_gauge.load(Ordering::Relaxed),
            device,
            fleet,
            self.started.elapsed().as_nanos() as u64,
            self.telemetry.summary(),
        )
    }

    /// Shuts down: closes the ingestion queue, drains everything
    /// already admitted (deferred and in-flight jobs included),
    /// stops the pool and returns the final stats plus any responses
    /// not yet received.
    ///
    /// # Panics
    ///
    /// Panics if the dispatcher thread panicked.
    #[must_use]
    pub fn shutdown(mut self) -> (ServeStats, Vec<Response>) {
        self.ingress.close();
        let handle = self.dispatcher.take().expect("dispatcher running");
        let _worker_stats = handle.join().expect("dispatcher thread healthy");
        let mut leftovers = Vec::new();
        while let Ok(r) = self.response_rx.try_recv() {
            leftovers.push(r);
        }
        (self.stats(), leftovers)
    }
}

impl Drop for StreamingService {
    fn drop(&mut self) {
        self.ingress.close();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

/// The dispatcher: single owner of cache and scheduling state.
struct Dispatcher {
    config: ServeConfig,
    pool: WorkerPool,
    /// The seeded fault injector shared with the pool's workers —
    /// the dispatcher consults it for device probes. Disabled (one
    /// branch per call) unless the config carries a chaos plan.
    injector: FaultInjector,
    cache: ResultCache,
    ingress: Arc<BoundedQueue<Ingest>>,
    response_tx: Sender<Response>,
    stats: Arc<Mutex<StatsRecorder>>,
    cache_stats: Arc<Mutex<ResultCacheStats>>,
    in_flight_gauge: Arc<AtomicUsize>,
    device_gauge: Arc<Mutex<DeviceSummary>>,
    fleet_gauge: Arc<Mutex<Option<FleetSummary>>>,
    /// Cost-aware width planner — present only under
    /// [`ArrayPolicy::CostAware`]. Every device models the same
    /// silicon, so one planner prices widths for the whole fleet.
    planner: Option<ArrayPlanner>,
    /// The two-level fleet scheduler: device picker over per-device
    /// ledgers, plus backfilling, deadline admission and elastic
    /// sizing. Dispatch order fixes the placement order, so grants,
    /// starts and waits are deterministic for a deterministic
    /// admission sequence. A 1-device fleet is bit-identical to
    /// driving one ledger directly.
    fleet: FleetScheduler,
    /// The telemetry hub (inert when tracing is off).
    telemetry: Telemetry,
    /// The dispatcher thread's recorder.
    sink: Box<dyn TraceSink>,
    /// Wall-clock track the request-path spans (queue, admit,
    /// cache-hit, coalesce, reject) land on.
    dispatch_track: TrackId,
    /// Lowers committed placements onto per-device/per-array
    /// device-cycle tracks at completion.
    timeline: DeviceTimeline,
    /// All-arrays device accounting: each completed execution owns
    /// the whole core for its critical path, serially. Accumulated at
    /// completion (order-independent sums), so it needs no prediction.
    serial_device: DeviceSummary,
    deferred: VecDeque<Held>,
    /// Outcomes are matched back by job id; duplicate ids queue up.
    pending: HashMap<u64, VecDeque<Pending>>,
    /// One entry per in-flight execution, keyed by cache key; the
    /// value holds every request coalesced onto it. Presence of the
    /// key is what later identical requests test to avoid executing
    /// the same work twice.
    inflight_waiters: HashMap<u64, Vec<Waiter>>,
    /// Digest rendezvous for speculative pairs, keyed by (job id,
    /// cache key): whichever leg completes first deposits its output
    /// digest; the second compares and removes. An entry therefore
    /// also means "the client has been answered" to the verify leg's
    /// completion and failure paths.
    spec_digests: HashMap<(u64, u64), u64>,
    in_flight: usize,
    accurate_in_flight: usize,
    ingress_closed: bool,
    /// When the service went idle-but-for-in-flight work after the
    /// ingress closed — the start of the bounded shutdown drain.
    drain_started: Option<Instant>,
    /// Set when the drain bound expired and stragglers were answered
    /// as failed.
    drain_timed_out: bool,
}

impl Dispatcher {
    fn backend_for(&self, fidelity: Fidelity) -> BackendKind {
        match fidelity {
            Fidelity::Fast => BackendKind::FastFunctional,
            Fidelity::Accurate => self.config.accurate_backend,
        }
    }

    fn respond(&self, response: Response) {
        // A receiver that hung up just means nobody wants responses;
        // stats still record everything.
        let _ = self.response_tx.send(response);
    }

    fn publish_gauges(&self) {
        *lock_clean(&self.cache_stats) = self.cache.stats();
        self.in_flight_gauge
            .store(self.in_flight, Ordering::Relaxed);
        if self.planner.is_some() {
            let summary = self.fleet.summary();
            *lock_clean(&self.device_gauge) = summary.combined();
            *lock_clean(&self.fleet_gauge) = Some(summary);
        } else {
            *lock_clean(&self.device_gauge) = self.serial_device;
        }
    }

    /// Drains the fleet scheduler's decision log and lowers it onto
    /// the per-device trace tracks (device-cycle clock). A no-op when
    /// tracing is off: the fleet records nothing then.
    fn lower_fleet_events(&mut self, job_id: u64) {
        for event in self.fleet.drain_events() {
            match event {
                FleetEvent::Preview {
                    device,
                    finish_cycle,
                } => {
                    let track = self.timeline.device_track(device);
                    self.sink
                        .instant(track, Stage::Preview, finish_cycle, job_id, finish_cycle);
                }
                FleetEvent::Route {
                    device,
                    start_cycle,
                    granted,
                } => {
                    let track = self.timeline.device_track(device);
                    self.sink
                        .instant(track, Stage::Route, start_cycle, job_id, granted as u64);
                }
                FleetEvent::Backfill {
                    device,
                    start_cycle,
                } => {
                    let track = self.timeline.device_track(device);
                    self.sink
                        .instant(track, Stage::Backfill, start_cycle, job_id, 0);
                    self.telemetry.count(Counter::Backfills, 1);
                }
                // The rejection is recorded on the dispatcher's wall
                // track where the response is produced.
                FleetEvent::Reject { .. } => {}
                FleetEvent::Drain { device, cycle } => {
                    let track = self.timeline.device_track(device);
                    self.sink
                        .instant(track, Stage::Drain, cycle, device as u64, 0);
                    self.telemetry.count(Counter::ElasticDrains, 1);
                }
                FleetEvent::Revive { device, cycle } => {
                    let track = self.timeline.device_track(device);
                    self.sink
                        .instant(track, Stage::Revive, cycle, device as u64, 0);
                    self.telemetry.count(Counter::ElasticRevives, 1);
                }
                FleetEvent::Quarantine { device, cycle } => {
                    let track = self.timeline.device_track(device);
                    self.sink
                        .instant(track, Stage::Quarantine, cycle, device as u64, 0);
                    self.telemetry.count(Counter::Quarantines, 1);
                }
                FleetEvent::Probe {
                    device,
                    cycle,
                    healthy,
                } => {
                    let track = self.timeline.device_track(device);
                    self.sink.instant(
                        track,
                        Stage::Probe,
                        cycle,
                        device as u64,
                        u64::from(healthy),
                    );
                    self.telemetry.count(Counter::Probes, 1);
                }
                // The rollback's observable effect is the re-route
                // that follows; the fleet summary carries the count.
                FleetEvent::Rollback { .. } => {}
                FleetEvent::FreqChange {
                    device,
                    array,
                    level,
                    cycle,
                } => {
                    let track = self.timeline.device_track(device);
                    self.sink.instant(
                        track,
                        Stage::FreqChange,
                        cycle,
                        array as u64,
                        u64::from(level),
                    );
                    self.telemetry.count(Counter::FreqChanges, 1);
                }
            }
        }
    }

    /// Admits one popped request: cache lookup, then dispatch, defer
    /// or reject.
    fn admit(&mut self, ingest: Ingest) {
        let Ingest { request, accepted } = ingest;
        let class = request.class();
        let key = cache_key(
            request.job.content_key(),
            self.backend_for(request.fidelity),
        );
        if self.sink.is_enabled() {
            // The queue span runs from acceptance to this pop.
            let waited = accepted.elapsed().as_nanos() as u64;
            let now = self.telemetry.now_ns();
            self.sink.span(
                self.dispatch_track,
                Stage::Queue,
                now.saturating_sub(waited),
                waited,
                request.job.id,
                0,
            );
        }
        if let Some(entry) = self.cache.get(key) {
            let total_ns = accepted.elapsed().as_nanos() as u64;
            self.sink.instant(
                self.dispatch_track,
                Stage::CacheHit,
                self.telemetry.now_ns(),
                request.job.id,
                0,
            );
            self.telemetry.count(Counter::CacheHits, 1);
            lock_clean(&self.stats).record_completion(
                class,
                total_ns,
                true,
                ArrayUse {
                    shards: entry.shards,
                    utilization: entry.shard_utilization,
                    granted: entry.arrays_granted,
                    // A hit never touches the device, so it never
                    // waits for arrays, allocates no scratch and
                    // spends no new energy.
                    wait_cycles: 0,
                    peak_scratch_elems: 0,
                    energy_pj: 0.0,
                    dynamic_energy_pj: 0.0,
                    static_energy_pj: 0.0,
                },
            );
            self.respond(Response {
                job_id: request.job.id,
                job_name: request.job.name,
                class,
                outcome: ResponseOutcome::Done(ServedResult {
                    output: entry.output,
                    sim_cycles: entry.sim_cycles,
                    energy_pj: entry.energy_pj,
                    shards: entry.shards,
                    arrays_granted: entry.arrays_granted,
                    array_wait_cycles: 0,
                    cache: CacheOutcome::Hit,
                    degraded: false,
                    peak_scratch_elems: 0,
                }),
                queue_ns: total_ns,
                total_ns,
            });
            return;
        }
        // In-flight coalescing: an identical execution (same content
        // key, same backend) is already running — attach instead of
        // executing again. Checked before admission control so a
        // coalesced accurate request never burns an admission slot.
        // A full waiter list falls through to normal admission.
        if let Some(waiters) = self.inflight_waiters.get_mut(&key) {
            if waiters.len() < MAX_WAITERS_PER_KEY {
                waiters.push(Waiter {
                    job_id: request.job.id,
                    job_name: request.job.name,
                    class,
                    accepted,
                });
                self.sink.instant(
                    self.dispatch_track,
                    Stage::Coalesce,
                    self.telemetry.now_ns(),
                    key,
                    0,
                );
                self.telemetry.count(Counter::Coalesced, 1);
                return;
            }
        }
        let held = Held {
            job: request.job,
            class,
            key,
            accepted,
            deadline_cycles: request.deadline_cycles,
            speculated: false,
        };
        if class.fidelity == Fidelity::Accurate
            && self.accurate_in_flight >= self.config.max_accurate_in_flight
        {
            // A cap of zero disallows accurate traffic entirely:
            // deferring would park the job forever (promotion needs a
            // slot that can never open), so reject instead.
            if self.config.max_accurate_in_flight == 0
                || self.deferred.len() >= self.config.deferred_capacity
            {
                let total_ns = held.accepted.elapsed().as_nanos() as u64;
                lock_clean(&self.stats)
                    .record_rejection(class, &RejectReason::AccurateAdmissionFull);
                self.sink.instant(
                    self.dispatch_track,
                    Stage::Reject,
                    self.telemetry.now_ns(),
                    held.job.id,
                    0,
                );
                self.telemetry.count(Counter::RejectedAdmissionCap, 1);
                self.respond(Response {
                    job_id: held.job.id,
                    job_name: held.job.name,
                    class,
                    outcome: ResponseOutcome::Rejected(RejectReason::AccurateAdmissionFull),
                    queue_ns: total_ns,
                    total_ns,
                });
            } else {
                let mut held = held;
                // Answer-now-verify-later pays off most here: the
                // accurate leg may park behind the admission cap for
                // a long time, but the client hears the functional
                // answer immediately; the deferred job verifies it
                // whenever its slot opens.
                if self.config.speculative {
                    held.speculated =
                        self.dispatch_answer_leg(held.job.clone(), class, key, accepted);
                }
                self.deferred.push_back(held);
                lock_clean(&self.stats).observe_deferred_depth(self.deferred.len());
            }
            return;
        }
        self.dispatch(held);
    }

    /// Hands a cache-missed job to the pool under an array-slot
    /// grant: cost-aware width plus device-time packing onto disjoint
    /// array sets when co-scheduling, the whole core otherwise (PR 4
    /// semantics — bit-identical results either way at equal granted
    /// widths).
    fn dispatch(&mut self, held: Held) {
        let Held {
            job,
            class,
            key,
            accepted,
            deadline_cycles,
            speculated,
        } = held;
        let job_id = job.id;
        // Scratch-aware admission: under a configured arena budget,
        // a job whose smallest possible streaming plan still exceeds
        // it is rejected up front — the alternative is silently
        // overrunning the budget the deployment sized its SRAM by.
        if let Some(budget_elems) = self
            .config
            .engine
            .streaming
            .and_then(|s| s.scratch_budget_elems)
        {
            let required_elems = self.config.engine.min_stream_scratch_elems(&job);
            if required_elems > budget_elems {
                // A request whose answer leg already responded cannot
                // be rejected again — the client heard a successful
                // answer. Drop the rendezvous entry (if the answer
                // landed) and walk away; no verify leg will run.
                if speculated {
                    self.spec_digests.remove(&(job_id, key));
                    return;
                }
                let reason = RejectReason::ScratchBudgetExceeded {
                    required_elems,
                    budget_elems,
                };
                let total_ns = accepted.elapsed().as_nanos() as u64;
                lock_clean(&self.stats).record_rejection(class, &reason);
                self.sink.instant(
                    self.dispatch_track,
                    Stage::Reject,
                    self.telemetry.now_ns(),
                    job_id,
                    required_elems,
                );
                self.telemetry.count(Counter::RejectedScratch, 1);
                self.respond(Response {
                    job_id,
                    job_name: job.name,
                    class,
                    outcome: ResponseOutcome::Rejected(reason),
                    queue_ns: total_ns,
                    total_ns,
                });
                return;
            }
        }
        let backend = self.backend_for(class.fidelity);
        let admit_start = self.telemetry.now_ns();
        let (assignment, placed) = match &mut self.planner {
            Some(planner) => {
                let plan = planner.plan_or_single(&job);
                let outcome = self.fleet.admit(&plan, deadline_cycles);
                self.lower_fleet_events(job_id);
                match outcome {
                    FleetOutcome::Placed(placed) => (
                        placed.placement.assignment,
                        Some((placed.device, placed.placement)),
                    ),
                    FleetOutcome::Rejected(miss) => {
                        // Already answered speculatively: swallow the
                        // rejection (see the scratch branch above).
                        if speculated {
                            self.spec_digests.remove(&(job_id, key));
                            return;
                        }
                        // No device at any width meets the deadline:
                        // reject at admission instead of timing out.
                        let reason = RejectReason::DeadlineUnattainable {
                            deadline_cycles: miss.deadline_cycles,
                            best_latency_cycles: miss.best_latency_cycles,
                        };
                        let total_ns = accepted.elapsed().as_nanos() as u64;
                        lock_clean(&self.stats).record_rejection(class, &reason);
                        self.sink.instant(
                            self.dispatch_track,
                            Stage::Reject,
                            self.telemetry.now_ns(),
                            job_id,
                            miss.deadline_cycles,
                        );
                        self.telemetry.count(Counter::RejectedDeadline, 1);
                        self.respond(Response {
                            job_id,
                            job_name: job.name,
                            class,
                            outcome: ResponseOutcome::Rejected(reason),
                            queue_ns: total_ns,
                            total_ns,
                        });
                        return;
                    }
                }
            }
            None => (ArrayAssignment::full(self.config.engine.num_arrays), None),
        };
        // The admission decision span: width planning, device pick,
        // deadline check — the dispatcher-side cost of scheduling.
        if self.sink.is_enabled() {
            let now = self.telemetry.now_ns();
            self.sink.span(
                self.dispatch_track,
                Stage::Admit,
                admit_start,
                now.saturating_sub(admit_start),
                job_id,
                assignment.granted as u64,
            );
        }
        // Recovery needs the job back to re-execute it; fault-free
        // configs (no injection, no watchdog) skip the clone.
        let recoverable = self.injector.is_enabled() || self.config.watchdog.is_some();
        let job_copy = recoverable.then(|| job.clone());
        // Answer-now-verify-later: accurate requests get a second,
        // functional-backend leg that answers the client immediately;
        // the accurate execution becomes the verify leg. A request
        // speculated at deferral already has its answer leg out.
        let speculate =
            !speculated && self.config.speculative && class.fidelity == Fidelity::Accurate;
        let answer_job = speculate.then(|| job.clone());
        let device = placed.as_ref().map_or(0, |(d, _)| *d);
        let task = PoolTask {
            job,
            backend,
            assignment,
            device,
            attempt: 0,
            inject: true,
            freq_level: placed.as_ref().map_or(0, |(_, p)| p.freq_level),
        };
        if self.pool.submit_routed(task).is_err() {
            // Pool gone (only during teardown): report a failure.
            lock_clean(&self.stats).record_failure(class);
            let total_ns = accepted.elapsed().as_nanos() as u64;
            self.respond(Response {
                job_id,
                job_name: String::new(),
                class,
                outcome: ResponseOutcome::Failed(RuntimeError::PoolClosed),
                queue_ns: total_ns,
                total_ns,
            });
            return;
        }
        // The answer leg is submitted only once the accurate leg is
        // in flight, so a Verify record always has its sibling; if
        // the answer submit fails (teardown), the accurate leg simply
        // answers the client itself.
        let spec = if speculated {
            SpecRole::Verify
        } else {
            match answer_job {
                Some(answer) => {
                    if self.dispatch_answer_leg(answer, class, key, accepted) {
                        SpecRole::Verify
                    } else {
                        SpecRole::None
                    }
                }
                None => SpecRole::None,
            }
        };
        self.pending.entry(job_id).or_default().push_back(Pending {
            class,
            key,
            accepted,
            dispatched: Instant::now(),
            placed,
            job: job_copy,
            attempt: 0,
            degraded: false,
            spec,
        });
        self.inflight_waiters.entry(key).or_default();
        self.in_flight += 1;
        if class.fidelity == Fidelity::Accurate {
            self.accurate_in_flight += 1;
        }
    }

    /// Submits the speculative answer leg: a functional-backend
    /// execution of the same job (injection off, nominal clock, whole
    /// core — it models no device time, so it takes no fleet grant
    /// and burns no accurate admission slot). Returns `false` when
    /// the pool refused it (teardown); the verify leg then answers
    /// normally.
    fn dispatch_answer_leg(
        &mut self,
        job: Job,
        class: JobClass,
        key: u64,
        accepted: Instant,
    ) -> bool {
        let job_id = job.id;
        let task = PoolTask {
            job,
            backend: BackendKind::FastFunctional,
            assignment: ArrayAssignment::full(self.config.engine.num_arrays),
            device: 0,
            attempt: 0,
            inject: false,
            freq_level: 0,
        };
        if self.pool.submit_routed(task).is_err() {
            return false;
        }
        self.pending.entry(job_id).or_default().push_back(Pending {
            class,
            key,
            accepted,
            dispatched: Instant::now(),
            placed: None,
            job: None,
            attempt: 0,
            degraded: false,
            spec: SpecRole::Answer,
        });
        self.in_flight += 1;
        true
    }

    /// Matches a pool outcome back to its pending record: memoizes,
    /// responds, frees slots. Job ids are caller-assigned and may
    /// collide across fidelities, so the match also requires the
    /// executing backend to agree — otherwise a fast outcome could
    /// pop an accurate record (wrong cache key, wrong class stats,
    /// admission cap corrupted).
    fn complete(&mut self, outcome: PoolOutcome) {
        let accurate_backend = self.config.accurate_backend;
        let Some(entry) = self.pending.get_mut(&outcome.job_id) else {
            return; // unreachable: every submission is recorded
        };
        let Some(pos) = entry.iter().position(|p| {
            // A degraded record is being answered by the functional
            // fallback regardless of its requested fidelity, and a
            // speculative answer leg always runs functionally.
            let backend = if p.degraded || p.spec == SpecRole::Answer {
                BackendKind::FastFunctional
            } else {
                match p.class.fidelity {
                    Fidelity::Fast => BackendKind::FastFunctional,
                    Fidelity::Accurate => accurate_backend,
                }
            };
            backend == outcome.backend && p.attempt == outcome.attempt
        }) else {
            // A late outcome from a superseded attempt (its retry is
            // already in flight under a higher stamp): drop it.
            return;
        };
        let Some(mut pending) = entry.remove(pos) else {
            return;
        };
        if entry.is_empty() {
            self.pending.remove(&outcome.job_id);
        }
        self.in_flight -= 1;
        // The answer leg never took an accurate admission slot (it
        // runs functionally), so it must not release one either.
        if pending.class.fidelity == Fidelity::Accurate && pending.spec != SpecRole::Answer {
            self.accurate_in_flight -= 1;
        }
        let queue_ns = (pending.dispatched - pending.accepted).as_nanos() as u64;
        let total_ns = pending.accepted.elapsed().as_nanos() as u64;
        match outcome.result {
            Ok(result) => {
                if pending.spec == SpecRole::Answer {
                    self.complete_answer_leg(&pending, result, queue_ns, total_ns);
                    return;
                }
                // The device delivered: reset its circuit breaker.
                if let Some((device, _)) = &pending.placed {
                    self.fleet.report_success(*device);
                }
                // DVFS residency: array-cycles spent at the
                // placement's ladder level (level 0 without a cap or
                // governor — the counters then mirror busy cycles).
                if let Some((_, placement)) = &pending.placed {
                    self.telemetry.count(
                        Counter::freq_residency(placement.freq_level as usize),
                        placement.arrays.len() as u64 * placement.duration_cycles,
                    );
                }
                // Speculative verify leg: rendezvous on the digest.
                // If the answer leg got there first the client is
                // already answered — this completion only closes the
                // verification loop and publishes the durable side
                // effects (cache, device accounting, waiter fan-out).
                let answered = if pending.spec == SpecRole::Verify {
                    let digest = result.output.digest();
                    match self.spec_digests.remove(&(outcome.job_id, pending.key)) {
                        Some(answer_digest) => {
                            self.record_verification(answer_digest == digest);
                            true
                        }
                        None => {
                            self.spec_digests
                                .insert((outcome.job_id, pending.key), digest);
                            false
                        }
                    }
                } else {
                    false
                };
                // Requests coalesced onto this execution share its
                // result: waiters fan out in arrival order, then the
                // primary.
                let waiters = self
                    .inflight_waiters
                    .remove(&pending.key)
                    .unwrap_or_default();
                // Device-cycle spans are recorded at completion, when
                // the backend's per-shard cycles are known: grant,
                // gather-wait, per-shard busy (reduction sub-span) and
                // idle gaps, plus the window-batch counter.
                if self.sink.is_enabled() {
                    match &pending.placed {
                        Some((device, placement)) => {
                            let span = PlacedSpan {
                                device: *device,
                                job_id: result.job_id,
                                arrays: &placement.arrays,
                                start: placement.start_cycle,
                                duration: placement.duration_cycles,
                                wait_cycles: placement.assignment.wait_cycles,
                                granted: placement.assignment.granted as u64,
                                backfilled: placement.backfilled,
                                per_shard_cycles: &result.per_shard_cycles,
                                reduction_cycles: result.reduction_cycles,
                            };
                            self.timeline.observe(&mut *self.sink, &span);
                            if result.window_cycles > 0 {
                                let track = self.timeline.device_track(*device);
                                self.sink.counter(
                                    track,
                                    Stage::Window,
                                    placement.finish_cycle(),
                                    result.window_cycles,
                                );
                            }
                            if result.peak_scratch_elems > 0 {
                                let track = self.timeline.device_track(*device);
                                self.sink.counter(
                                    track,
                                    Stage::StreamWindow,
                                    placement.finish_cycle(),
                                    result.peak_scratch_elems,
                                );
                            }
                        }
                        None => {
                            // All-arrays policy: the core is owned
                            // serially, so synthesize the equivalent
                            // serial placement (matching the
                            // `serial_device` account below).
                            let arrays: Vec<usize> = (0..result.arrays_granted.max(1)).collect();
                            let start = self.serial_device.makespan_cycles;
                            let span = PlacedSpan {
                                device: 0,
                                job_id: result.job_id,
                                arrays: &arrays,
                                start,
                                duration: result.sim_cycles,
                                wait_cycles: 0,
                                granted: result.arrays_granted as u64,
                                backfilled: false,
                                per_shard_cycles: &result.per_shard_cycles,
                                reduction_cycles: result.reduction_cycles,
                            };
                            self.timeline.observe(&mut *self.sink, &span);
                            if result.window_cycles > 0 {
                                let track = self.timeline.device_track(0);
                                self.sink.counter(
                                    track,
                                    Stage::Window,
                                    start + result.sim_cycles,
                                    result.window_cycles,
                                );
                            }
                            if result.peak_scratch_elems > 0 {
                                let track = self.timeline.device_track(0);
                                self.sink.counter(
                                    track,
                                    Stage::StreamWindow,
                                    start + result.sim_cycles,
                                    result.peak_scratch_elems,
                                );
                            }
                        }
                    }
                }
                // Under the all-arrays policy every execution owns
                // the whole core in turn: device time accumulates
                // serially (order-independent sums). The co-scheduled
                // account lives in the ledger, updated at placement.
                if self.planner.is_none() {
                    self.serial_device.makespan_cycles += result.sim_cycles;
                    self.serial_device.busy_cycles += result.total_array_cycles;
                    self.serial_device.placements += 1;
                    self.serial_device.granted_sum += result.arrays_granted as u64;
                }
                self.cache.insert(
                    pending.key,
                    CacheEntry {
                        output: result.output.clone(),
                        sim_cycles: result.sim_cycles,
                        energy_pj: result.energy_pj,
                        shards: result.shards,
                        shard_utilization: result.shard_utilization,
                        arrays_granted: result.arrays_granted,
                    },
                );
                let arrays = ArrayUse {
                    shards: result.shards,
                    utilization: result.shard_utilization,
                    granted: result.arrays_granted,
                    wait_cycles: result.array_wait_cycles,
                    peak_scratch_elems: result.peak_scratch_elems,
                    energy_pj: result.energy_pj,
                    dynamic_energy_pj: result.dynamic_energy_pj,
                    static_energy_pj: result.static_energy_pj,
                };
                // One guard for the completion and its whole fan-out:
                // a snapshot never observes a torn state with only
                // some waiters counted, and the dispatcher does not
                // churn the lock per waiter.
                let mut stats = lock_clean(&self.stats);
                // An already-answered verify leg recorded its
                // completion (and latency) at answer time.
                if !answered {
                    stats.record_completion(pending.class, total_ns, false, arrays);
                }
                if pending.degraded {
                    stats.record_degraded(pending.class);
                    self.telemetry.count(Counter::Degraded, 1);
                }
                for waiter in waiters {
                    let waiter_total_ns = waiter.accepted.elapsed().as_nanos() as u64;
                    // Waiters share the execution but did not wait
                    // for its arrays, and its energy was spent once —
                    // both are counted on the primary only.
                    stats.record_coalesced(
                        waiter.class,
                        waiter_total_ns,
                        ArrayUse {
                            wait_cycles: 0,
                            energy_pj: 0.0,
                            dynamic_energy_pj: 0.0,
                            static_energy_pj: 0.0,
                            ..arrays
                        },
                    );
                    self.respond(Response {
                        job_id: waiter.job_id,
                        job_name: waiter.job_name,
                        class: waiter.class,
                        outcome: ResponseOutcome::Done(ServedResult {
                            output: result.output.clone(),
                            sim_cycles: result.sim_cycles,
                            energy_pj: result.energy_pj,
                            shards: result.shards,
                            arrays_granted: result.arrays_granted,
                            // The gather wait is attributed once, to
                            // the primary — matching the stats layer.
                            array_wait_cycles: 0,
                            cache: CacheOutcome::Coalesced,
                            degraded: pending.degraded,
                            peak_scratch_elems: result.peak_scratch_elems,
                        }),
                        queue_ns: waiter_total_ns,
                        total_ns: waiter_total_ns,
                    });
                }
                drop(stats);
                // The primary responds last so it can take the output
                // by move — the common zero-waiter case pays only the
                // cache-insert clone. An already-answered verify leg
                // stays silent: its client heard the answer leg.
                if !answered {
                    self.respond(Response {
                        job_id: result.job_id,
                        job_name: result.job_name,
                        class: pending.class,
                        outcome: ResponseOutcome::Done(ServedResult {
                            output: result.output,
                            sim_cycles: result.sim_cycles,
                            energy_pj: result.energy_pj,
                            shards: result.shards,
                            arrays_granted: result.arrays_granted,
                            array_wait_cycles: result.array_wait_cycles,
                            cache: CacheOutcome::Miss,
                            degraded: pending.degraded,
                            peak_scratch_elems: result.peak_scratch_elems,
                        }),
                        queue_ns,
                        total_ns,
                    });
                }
            }
            Err(_) if pending.spec == SpecRole::Answer => {
                // A failed answer leg is invisible to the client: if
                // the verify leg already answered, drop the
                // rendezvous entry; otherwise downgrade the verify
                // record to an ordinary execution so it answers the
                // client itself instead of waiting on a digest that
                // will never arrive.
                if self
                    .spec_digests
                    .remove(&(outcome.job_id, pending.key))
                    .is_none()
                {
                    if let Some(records) = self.pending.get_mut(&outcome.job_id) {
                        if let Some(verify) = records
                            .iter_mut()
                            .find(|p| p.spec == SpecRole::Verify && p.key == pending.key)
                        {
                            verify.spec = SpecRole::None;
                        }
                    }
                }
            }
            Err(error) => {
                // Infrastructure faults (injected transients, worker
                // deaths, watchdog cancels) are the service's to
                // recover from; job-level errors (shape, precision)
                // are the caller's and fail through unchanged.
                let transient = matches!(
                    error,
                    RuntimeError::InjectedFault { .. }
                        | RuntimeError::WorkerPanicked { .. }
                        | RuntimeError::StuckJob { .. }
                );
                if transient {
                    // Charge the device's circuit breaker and pull
                    // the dead placement's grant back so its capacity
                    // re-opens for the re-route.
                    if let Some((device, placement)) = &pending.placed {
                        let (device, placement) = (*device, placement.clone());
                        self.fleet.report_failure(device);
                        self.fleet.rollback(device, &placement);
                        self.lower_fleet_events(outcome.job_id);
                    }
                    if !pending.degraded {
                        if let Some(job) = pending.job.take() {
                            if pending.attempt < self.config.max_retries {
                                self.retry(pending, job);
                            } else {
                                self.degrade(pending, job);
                            }
                            return;
                        }
                    }
                }
                self.fail_final(&pending, outcome.job_id, &error);
            }
        }
    }

    /// A speculative answer leg completed: answer the client
    /// immediately from the bit-identical functional result and
    /// deposit the digest for the verify leg. Nothing durable happens
    /// here — cache insert, device accounting and waiter fan-out all
    /// belong to the verify leg. When the verify leg somehow finished
    /// first, this completion only closes the verification loop.
    fn complete_answer_leg(
        &mut self,
        pending: &Pending,
        result: JobResult,
        queue_ns: u64,
        total_ns: u64,
    ) {
        let digest = result.output.digest();
        match self.spec_digests.remove(&(result.job_id, pending.key)) {
            Some(accurate_digest) => self.record_verification(accurate_digest == digest),
            None => {
                self.spec_digests
                    .insert((result.job_id, pending.key), digest);
                self.telemetry.count(Counter::SpeculativeAnswers, 1);
                let mut stats = lock_clean(&self.stats);
                stats.record_speculative_answer(pending.class);
                stats.record_completion(
                    pending.class,
                    total_ns,
                    false,
                    ArrayUse {
                        shards: result.shards,
                        utilization: result.shard_utilization,
                        granted: result.arrays_granted,
                        wait_cycles: 0,
                        peak_scratch_elems: result.peak_scratch_elems,
                        energy_pj: result.energy_pj,
                        dynamic_energy_pj: result.dynamic_energy_pj,
                        static_energy_pj: result.static_energy_pj,
                    },
                );
                drop(stats);
                self.respond(Response {
                    job_id: result.job_id,
                    job_name: result.job_name,
                    class: pending.class,
                    outcome: ResponseOutcome::Done(ServedResult {
                        output: result.output,
                        sim_cycles: result.sim_cycles,
                        energy_pj: result.energy_pj,
                        shards: result.shards,
                        arrays_granted: result.arrays_granted,
                        array_wait_cycles: 0,
                        cache: CacheOutcome::Miss,
                        degraded: false,
                        peak_scratch_elems: result.peak_scratch_elems,
                    }),
                    queue_ns,
                    total_ns,
                });
            }
        }
    }

    /// Records one closed answer/verify rendezvous. The equivalence
    /// contract (bit-identical outputs across backends) keeps the
    /// mismatch count at zero; a non-zero count means a backend
    /// diverged and is worth an alarm.
    fn record_verification(&mut self, agree: bool) {
        let mut stats = lock_clean(&self.stats);
        if agree {
            stats.speculative_verified += 1;
        } else {
            stats.speculative_mismatches += 1;
            drop(stats);
            self.telemetry.count(Counter::SpeculativeMismatches, 1);
        }
    }

    /// Re-executes a faulted attempt after a deterministic backoff
    /// charged in device cycles (`base << attempt`, modelled as the
    /// re-admission's arrival cycle — the retry cannot start before
    /// it). The request was already admitted once, so re-admission
    /// carries no deadline and can never be rejected; its waiters stay
    /// attached and fan out from whichever attempt finally answers.
    fn retry(&mut self, pending: Pending, job: Job) {
        let attempt = pending.attempt + 1;
        let backoff = RETRY_BACKOFF_BASE_CYCLES << pending.attempt;
        let backend = self.backend_for(pending.class.fidelity);
        let job_id = job.id;
        let (assignment, placed) = match &mut self.planner {
            Some(planner) => {
                let plan = planner.plan_or_single(&job);
                let arrival = self.fleet.floor().saturating_add(backoff);
                match self.fleet.admit_at(&plan, None, arrival) {
                    FleetOutcome::Placed(placed) => (
                        placed.placement.assignment,
                        Some((placed.device, placed.placement)),
                    ),
                    // Unreachable: deadline-free admission always
                    // places somewhere.
                    FleetOutcome::Rejected(_) => {
                        (ArrayAssignment::full(self.config.engine.num_arrays), None)
                    }
                }
            }
            None => (ArrayAssignment::full(self.config.engine.num_arrays), None),
        };
        self.lower_fleet_events(job_id);
        if self.sink.is_enabled() {
            let device = placed.as_ref().map_or(0, |(d, _)| *d);
            let cycle = placed.as_ref().map_or(backoff, |(_, p)| p.start_cycle);
            let track = self.timeline.device_track(device);
            self.sink
                .instant(track, Stage::Retry, cycle, job_id, u64::from(attempt));
        }
        self.telemetry.count(Counter::Retries, 1);
        self.telemetry.count(Counter::RetryBackoffCycles, backoff);
        lock_clean(&self.stats).record_retry(pending.class);
        let device = placed.as_ref().map_or(0, |(d, _)| *d);
        let job_copy = Some(job.clone());
        let task = PoolTask {
            job,
            backend,
            assignment,
            device,
            attempt,
            freq_level: placed.as_ref().map_or(0, |(_, p)| p.freq_level),
            inject: true,
        };
        if self.pool.submit_routed(task).is_err() {
            self.fail_final(&pending, job_id, &RuntimeError::PoolClosed);
            return;
        }
        self.pending.entry(job_id).or_default().push_back(Pending {
            placed,
            job: job_copy,
            attempt,
            ..pending
        });
        self.in_flight += 1;
        if pending.class.fidelity == Fidelity::Accurate {
            self.accurate_in_flight += 1;
        }
    }

    /// Degrade-don't-drop: the retry budget is spent, so the request
    /// is answered by the functional backend with injection disabled
    /// (and no deadline — an already-admitted request is never
    /// rejected on its way out). Outputs are bit-identical across
    /// backends, so the caller still receives the right bits; the
    /// response is flagged [`ServedResult::degraded`].
    fn degrade(&mut self, pending: Pending, job: Job) {
        let attempt = pending.attempt + 1;
        let job_id = job.id;
        let (assignment, placed) = match &mut self.planner {
            Some(planner) => {
                let plan = planner.plan_or_single(&job);
                match self.fleet.admit(&plan, None) {
                    FleetOutcome::Placed(placed) => (
                        placed.placement.assignment,
                        Some((placed.device, placed.placement)),
                    ),
                    FleetOutcome::Rejected(_) => {
                        (ArrayAssignment::full(self.config.engine.num_arrays), None)
                    }
                }
            }
            None => (ArrayAssignment::full(self.config.engine.num_arrays), None),
        };
        self.lower_fleet_events(job_id);
        self.sink.instant(
            self.dispatch_track,
            Stage::Degrade,
            self.telemetry.now_ns(),
            job_id,
            u64::from(attempt),
        );
        let device = placed.as_ref().map_or(0, |(d, _)| *d);
        let job_copy = Some(job.clone());
        let task = PoolTask {
            job,
            backend: BackendKind::FastFunctional,
            assignment,
            device,
            attempt,
            inject: false,
            freq_level: 0,
        };
        if self.pool.submit_routed(task).is_err() {
            self.fail_final(&pending, job_id, &RuntimeError::PoolClosed);
            return;
        }
        self.pending.entry(job_id).or_default().push_back(Pending {
            placed,
            job: job_copy,
            attempt,
            degraded: true,
            ..pending
        });
        self.in_flight += 1;
        if pending.class.fidelity == Fidelity::Accurate {
            self.accurate_in_flight += 1;
        }
    }

    /// Final failure: answers the primary and every waiter coalesced
    /// onto its execution. Only unrecoverable ends come here —
    /// job-level errors, a closed pool, or the drain bound expiring.
    fn fail_final(&mut self, pending: &Pending, job_id: u64, error: &RuntimeError) {
        // An answer leg never owns the client response on failure —
        // its verify sibling does (or already did).
        if pending.spec == SpecRole::Answer {
            self.spec_digests.remove(&(job_id, pending.key));
            return;
        }
        // A verify leg whose answer sibling already responded must
        // not answer the same client again with a failure; only its
        // waiters (who heard nothing) are failed below.
        let answered = pending.spec == SpecRole::Verify
            && self.spec_digests.remove(&(job_id, pending.key)).is_some();
        let queue_ns = (pending.dispatched - pending.accepted).as_nanos() as u64;
        let total_ns = pending.accepted.elapsed().as_nanos() as u64;
        let waiters = self
            .inflight_waiters
            .remove(&pending.key)
            .unwrap_or_default();
        let mut stats = lock_clean(&self.stats);
        if !answered {
            stats.record_failure(pending.class);
            self.respond(Response {
                job_id,
                job_name: String::new(),
                class: pending.class,
                outcome: ResponseOutcome::Failed(error.clone()),
                queue_ns,
                total_ns,
            });
        }
        for waiter in waiters {
            let waiter_total_ns = waiter.accepted.elapsed().as_nanos() as u64;
            stats.record_failure(waiter.class);
            self.respond(Response {
                job_id: waiter.job_id,
                job_name: waiter.job_name,
                class: waiter.class,
                outcome: ResponseOutcome::Failed(error.clone()),
                queue_ns: waiter_total_ns,
                total_ns: waiter_total_ns,
            });
        }
    }

    /// Answers every still-pending execution (and its waiters) as
    /// failed: the shutdown drain bound expired and the stragglers
    /// must not hold the service's teardown hostage.
    fn abandon_inflight(&mut self) {
        let pending = std::mem::take(&mut self.pending);
        for (job_id, records) in pending {
            for record in records {
                self.fail_final(&record, job_id, &RuntimeError::StuckJob { job_id });
            }
        }
        self.in_flight = 0;
        self.accurate_in_flight = 0;
    }

    /// The dispatch loop. Returns the pool's final worker records.
    fn run(mut self) -> Vec<WorkerStats> {
        loop {
            let mut progressed = false;

            // 1. Collect every finished outcome.
            while let Some(outcome) = self.pool.try_collect() {
                self.complete(outcome);
                progressed = true;
            }

            // 1b. Probe quarantined devices — one deterministic probe
            //     per device per fleet-floor advance. A healthy probe
            //     revives the device for routing; an unhealthy one
            //     re-arms at the next floor boundary.
            if self.planner.is_some() {
                for device in self.fleet.probe_candidates() {
                    let healthy = self.injector.probe(device);
                    self.fleet.record_probe(device, healthy);
                    self.lower_fleet_events(device as u64);
                    progressed = true;
                }
            }

            // 2. Promote admission-held accurate jobs into free slots.
            //    While a job was deferred its twin may have finished
            //    (answer from the cache) or gone in flight (coalesce,
            //    without burning a slot — dispatching would duplicate
            //    the execution and clobber the waiter list).
            while !self.deferred.is_empty()
                && self.in_flight < self.config.max_in_flight
                && self.accurate_in_flight < self.config.max_accurate_in_flight
            {
                let held = self.deferred.pop_front().expect("non-empty");
                // A speculated held's answer leg already responded;
                // its dispatch is the verify leg and must execute —
                // answering again from the cache or coalescing onto a
                // twin would double-respond or orphan the rendezvous.
                if held.speculated {
                    self.dispatch(held);
                    progressed = true;
                    continue;
                }
                if let Some(entry) = self.cache.get(held.key) {
                    let total_ns = held.accepted.elapsed().as_nanos() as u64;
                    lock_clean(&self.stats).record_completion(
                        held.class,
                        total_ns,
                        true,
                        ArrayUse {
                            shards: entry.shards,
                            utilization: entry.shard_utilization,
                            granted: entry.arrays_granted,
                            wait_cycles: 0,
                            peak_scratch_elems: 0,
                            energy_pj: 0.0,
                            dynamic_energy_pj: 0.0,
                            static_energy_pj: 0.0,
                        },
                    );
                    self.respond(Response {
                        job_id: held.job.id,
                        job_name: held.job.name,
                        class: held.class,
                        outcome: ResponseOutcome::Done(ServedResult {
                            output: entry.output,
                            sim_cycles: entry.sim_cycles,
                            energy_pj: entry.energy_pj,
                            shards: entry.shards,
                            arrays_granted: entry.arrays_granted,
                            array_wait_cycles: 0,
                            cache: CacheOutcome::Hit,
                            degraded: false,
                            peak_scratch_elems: 0,
                        }),
                        queue_ns: total_ns,
                        total_ns,
                    });
                } else {
                    match self.inflight_waiters.get_mut(&held.key) {
                        Some(waiters) if waiters.len() < MAX_WAITERS_PER_KEY => {
                            waiters.push(Waiter {
                                job_id: held.job.id,
                                job_name: held.job.name,
                                class: held.class,
                                accepted: held.accepted,
                            });
                        }
                        // A full waiter list executes independently —
                        // the loop condition already reserved this
                        // job an admission slot.
                        _ => self.dispatch(held),
                    }
                }
                progressed = true;
            }

            // 3. Drain a micro-batch from the bounded ingestion
            //    queue, gated on the in-flight cap — this gate is
            //    what propagates backpressure to the client.
            let mut drained = 0;
            while drained < self.config.micro_batch && self.in_flight < self.config.max_in_flight {
                match self.ingress.try_pop() {
                    PopResult::Item(ingest) => {
                        self.admit(ingest);
                        drained += 1;
                        progressed = true;
                    }
                    PopResult::TimedOut => break,
                    PopResult::Closed => {
                        self.ingress_closed = true;
                        break;
                    }
                }
            }

            self.publish_gauges();

            // 4. Ingress closed and every queue drained: done once
            //    in-flight work completes — but the wait is bounded.
            //    Past `drain_timeout` the stragglers are answered as
            //    failed rather than letting one wedged execution hold
            //    the whole teardown hostage.
            if self.ingress_closed && self.deferred.is_empty() && self.ingress.is_empty() {
                if self.in_flight == 0 {
                    if let Some(started) = self.drain_started {
                        lock_clean(&self.stats).drain_ns = started.elapsed().as_nanos() as u64;
                    }
                    break;
                }
                let started = *self.drain_started.get_or_insert_with(Instant::now);
                if started.elapsed() >= self.config.drain_timeout {
                    self.drain_timed_out = true;
                    self.abandon_inflight();
                    let mut stats = lock_clean(&self.stats);
                    stats.drain_ns = started.elapsed().as_nanos() as u64;
                    stats.drain_timed_out = true;
                    drop(stats);
                    break;
                }
            }

            // 5. Idle: block briefly on the likeliest wake-up source.
            if !progressed {
                if self.in_flight > 0 {
                    if let Some(outcome) = self.pool.collect_timeout(Duration::from_millis(1)) {
                        self.complete(outcome);
                    }
                } else {
                    match self.ingress.pop_timeout(Duration::from_millis(1)) {
                        PopResult::Item(ingest) => self.admit(ingest),
                        PopResult::Closed => self.ingress_closed = true,
                        PopResult::TimedOut => {}
                    }
                }
            }
        }
        self.publish_gauges();
        if self.drain_timed_out {
            // Something is wedged on a worker: give the pool a short
            // grace to join, then abandon it rather than block.
            let (stats, _late_outcomes, _timed_out) =
                self.pool.shutdown_drain(Duration::from_millis(100));
            stats
        } else {
            self.pool.shutdown()
        }
    }
}
