//! **tempus-serve**: an async streaming ingestion service over the
//! Tempus Core runtime, with a content-addressed result cache and
//! per-class latency SLOs.
//!
//! The batched engine (`tempus-runtime`) accepts whole batches and
//! blocks until every job drains. Production edge-DLA serving looks
//! nothing like that: requests arrive continuously and bursty, the
//! same weights (and often inputs) recur request after request — the
//! tubGEMM/tuGEMM workload shape — and a slow cycle-accurate
//! simulation must never starve the fast path. This crate supplies
//! that serving layer:
//!
//! * [`queue`] — the **bounded ingestion queue**: blocking
//!   ([`StreamingService::submit`]) or refusing
//!   ([`StreamingService::try_submit`]) under load, never unbounded;
//! * [`class`] — job classification: fidelity (fast-functional vs
//!   cycle-accurate) × payload kind (conv / GEMM / network);
//! * [`service`] — the dispatcher: micro-batches queued requests onto
//!   the runtime's resident [`tempus_runtime::WorkerPool`], with
//!   **admission control** capping in-flight cycle-accurate jobs (the
//!   overflow defers into a bounded side queue, then rejects);
//! * [`cache`] — the **content-addressed result cache**: a bounded
//!   LRU keyed on `(Job::content_key(), backend)` — the combined
//!   digest of inputs, weights and parameters — replaying repeated
//!   computations bit-identically without touching a core;
//! * [`stats`] — per-class p50/p95/p99 latency percentiles, SLO
//!   compliance, queue-depth and cache counters in one
//!   [`ServeStats`] snapshot.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use tempus_serve::{Request, ServeConfig, StreamingService};
//! use tempus_models::traffic::{generate, TraceConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = StreamingService::start(ServeConfig::new().with_workers(2))?;
//! let trace = generate(&TraceConfig::new(42).with_requests(20));
//! for t in &trace {
//!     service.submit(Request::from_trace(t))?;   // blocks when saturated
//! }
//! let mut done = 0;
//! while done < trace.len() {
//!     if let Some(r) = service.recv_response(Duration::from_secs(10)) {
//!         assert!(r.result().is_some() || !matches!(r.outcome,
//!             tempus_serve::ResponseOutcome::Done(_)));
//!         done += 1;
//!     }
//! }
//! let (stats, _) = service.shutdown();
//! assert_eq!(stats.completed + stats.rejected + stats.failed, 20);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod class;
pub mod queue;
pub mod request;
pub mod service;
pub mod stats;

pub use cache::{CacheEntry, ResultCache, ResultCacheStats};
pub use class::{Fidelity, JobClass, PayloadKind};
pub use queue::{BoundedQueue, PopResult, PushError};
pub use request::{
    CacheOutcome, RejectReason, Request, Response, ResponseOutcome, ServedResult, SubmitError,
};
pub use service::{ServeConfig, StreamingService};
pub use stats::{percentile, ArrayUse, ClassStats, ServeStats, SloPolicy};
pub use tempus_chaos::{FaultKind, FaultPlan};
pub use tempus_fleet::{ElasticPolicy, FleetSummary};
pub use tempus_runtime::GovernorPolicy;
