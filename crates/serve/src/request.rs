//! Requests into and responses out of the streaming service.

use tempus_models::traffic::{TracePayload, TraceRequest};
use tempus_runtime::{Job, JobOutput, RuntimeError};

use crate::class::{Fidelity, JobClass, PayloadKind};

/// One request: a job plus the fidelity it should run at.
#[derive(Debug, Clone)]
pub struct Request {
    /// The job to execute.
    pub job: Job,
    /// Requested execution fidelity.
    pub fidelity: Fidelity,
    /// SLO-derived completion deadline in device cycles. Under
    /// fleet co-scheduling, deadline-aware admission narrows the
    /// job's array grant to meet it or rejects with
    /// [`RejectReason::DeadlineUnattainable`] — instead of letting
    /// the job blow its SLO in the queue. `None` (the default)
    /// admits unconditionally.
    pub deadline_cycles: Option<u64>,
}

impl Request {
    /// A fast-path (functional) request.
    #[must_use]
    pub fn fast(job: Job) -> Self {
        Request {
            job,
            fidelity: Fidelity::Fast,
            deadline_cycles: None,
        }
    }

    /// A cycle-accurate request (admission controlled).
    #[must_use]
    pub fn accurate(job: Job) -> Self {
        Request {
            job,
            fidelity: Fidelity::Accurate,
            deadline_cycles: None,
        }
    }

    /// Attaches a completion deadline in device cycles (builder
    /// style).
    #[must_use]
    pub fn with_deadline_cycles(mut self, cycles: u64) -> Self {
        self.deadline_cycles = Some(cycles);
        self
    }

    /// The request's job class.
    #[must_use]
    pub fn class(&self) -> JobClass {
        JobClass {
            fidelity: self.fidelity,
            payload: PayloadKind::of(&self.job.payload),
        }
    }

    /// Lowers a generated trace request into a service request.
    #[must_use]
    pub fn from_trace(t: &TraceRequest) -> Self {
        let job = match &t.payload {
            TracePayload::Conv {
                features,
                kernels,
                params,
            } => Job::conv(
                t.id,
                t.name.clone(),
                features.clone(),
                kernels.clone(),
                *params,
            ),
            TracePayload::Gemm { a, b } => Job::gemm(t.id, t.name.clone(), a.clone(), b.clone()),
            TracePayload::Network { input, layers } => {
                Job::network(t.id, t.name.clone(), input.clone(), layers.clone())
            }
        };
        Request {
            job,
            fidelity: t.fidelity.into(),
            deadline_cycles: t.deadline_cycles,
        }
    }
}

/// Whether a completed request was answered from the result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Answered from the content-addressed cache; no core touched.
    Hit,
    /// Executed on the worker pool (and memoized).
    Miss,
    /// Coalesced onto an identical in-flight execution: the request
    /// arrived after the same content key was dispatched but before
    /// it completed, so it shared that execution's result instead of
    /// executing again.
    Coalesced,
}

/// The serving-facing result of a completed request.
#[derive(Debug, Clone)]
pub struct ServedResult {
    /// The computed output — bit-identical whether it came from the
    /// cache or a cold execution.
    pub output: JobOutput,
    /// Modelled datapath cycles of the (original) execution.
    pub sim_cycles: u64,
    /// Modelled energy of the (original) execution, in pJ. A cache
    /// hit reports the memoized execution's energy; the hit itself
    /// costs the accelerator nothing.
    pub energy_pj: f64,
    /// PE arrays the (original) execution occupied (1 on
    /// single-array backends).
    pub shards: usize,
    /// Arrays the array-slot scheduler granted the (original)
    /// execution — the width it ran at.
    pub arrays_granted: usize,
    /// Device cycles this request's execution waited to gather its
    /// granted arrays. Attributed once, to the request that triggered
    /// the execution: 0 for cache hits, coalesced waiters, and
    /// without co-scheduling.
    pub array_wait_cycles: u64,
    /// Cache hit or cold execution.
    pub cache: CacheOutcome,
    /// `true` when the answer came from the degrade-don't-drop
    /// fallback: retries were exhausted (or re-admission impossible)
    /// and the request was answered by the functional backend with
    /// fault injection disabled. The output is still bit-identical —
    /// all backends agree on outputs — but the execution did not run
    /// at the requested fidelity's backend.
    pub degraded: bool,
    /// Peak streaming-scratch high-water mark of the (original)
    /// execution in elements; 0 on materialized runs and cache hits.
    pub peak_scratch_elems: u64,
}

/// Why the service refused a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The cycle-accurate admission queue is full; retry later or
    /// drop fidelity.
    AccurateAdmissionFull,
    /// Deadline-aware admission found no device and no array width
    /// whose predicted finish meets the request's deadline — rejected
    /// up front instead of timing out in the queue. Carries the
    /// deadline and the best achievable latency, both in device
    /// cycles.
    DeadlineUnattainable {
        /// The deadline the request carried.
        deadline_cycles: u64,
        /// The best latency any device at any width could offer.
        best_latency_cycles: u64,
    },
    /// Scratch-budget admission found the job cannot stream inside
    /// the configured arena budget even at the one-step-window floor
    /// — rejected up front instead of silently overrunning the
    /// budget. Carries both figures in elements.
    ScratchBudgetExceeded {
        /// The smallest scratch any streaming plan needs for the job.
        required_elems: u64,
        /// The configured scratch budget.
        budget_elems: u64,
    },
}

/// How one request ended.
#[derive(Debug)]
pub enum ResponseOutcome {
    /// Completed (from cache or cold execution).
    Done(ServedResult),
    /// Refused by admission control (not executed).
    Rejected(RejectReason),
    /// The substrate rejected the job (shape/precision error).
    Failed(RuntimeError),
}

/// One response, correlated to its request by `job_id`.
#[derive(Debug)]
pub struct Response {
    /// Id of the originating job.
    pub job_id: u64,
    /// Job label.
    pub job_name: String,
    /// The request's class.
    pub class: JobClass,
    /// How it ended.
    pub outcome: ResponseOutcome,
    /// Time spent queued before dispatch (admission to dispatch), ns.
    pub queue_ns: u64,
    /// End-to-end latency (admission to response), ns.
    pub total_ns: u64,
}

impl Response {
    /// The served result, if the request completed.
    #[must_use]
    pub fn result(&self) -> Option<&ServedResult> {
        match &self.outcome {
            ResponseOutcome::Done(r) => Some(r),
            _ => None,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug)]
pub enum SubmitError {
    /// The bounded ingestion queue is at capacity (backpressure); the
    /// request is handed back for retry.
    QueueFull(Box<Request>),
    /// The service is shut down; the request is handed back.
    ShutDown(Box<Request>),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull(_) => f.write_str("ingestion queue is full (backpressure)"),
            SubmitError::ShutDown(_) => f.write_str("service is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}
