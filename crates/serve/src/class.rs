//! Job classification: fidelity × payload kind.
//!
//! The service treats its traffic as six classes — each payload kind
//! (conv / GEMM / network) at each fidelity (fast-functional /
//! cycle-accurate). Admission control reasons about fidelity (the
//! cycle-accurate path is orders of magnitude slower and must not
//! starve the fast path); the latency SLOs and percentile tracking
//! are per full class.

use tempus_models::traffic::TraceFidelity;
use tempus_runtime::JobPayload;

/// Requested execution fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fidelity {
    /// Fast functional execution — golden outputs, closed-form Tempus
    /// latency. The serving fast path.
    Fast,
    /// Cycle-accurate simulation — authoritative cycles, admission
    /// controlled so it cannot monopolise the workers.
    Accurate,
}

impl Fidelity {
    /// Stable name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Fidelity::Fast => "fast",
            Fidelity::Accurate => "accurate",
        }
    }
}

impl From<TraceFidelity> for Fidelity {
    fn from(f: TraceFidelity) -> Self {
        match f {
            TraceFidelity::Fast => Fidelity::Fast,
            TraceFidelity::Accurate => Fidelity::Accurate,
        }
    }
}

/// Payload kind, mirrored from [`JobPayload`] as a dense enum so the
/// service can index per-class tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PayloadKind {
    /// Single convolution layer.
    Conv,
    /// Dense matrix product.
    Gemm,
    /// Whole-network job.
    Network,
}

impl PayloadKind {
    /// Classifies a runtime payload.
    #[must_use]
    pub fn of(payload: &JobPayload) -> Self {
        match payload {
            JobPayload::Conv { .. } => PayloadKind::Conv,
            JobPayload::Gemm { .. } => PayloadKind::Gemm,
            JobPayload::Network { .. } => PayloadKind::Network,
        }
    }

    /// Stable name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PayloadKind::Conv => "conv",
            PayloadKind::Gemm => "gemm",
            PayloadKind::Network => "network",
        }
    }
}

/// One of the six job classes the service tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobClass {
    /// Execution fidelity.
    pub fidelity: Fidelity,
    /// Payload kind.
    pub payload: PayloadKind,
}

impl JobClass {
    /// Every class, in stable reporting order.
    pub const ALL: [JobClass; 6] = [
        JobClass {
            fidelity: Fidelity::Fast,
            payload: PayloadKind::Conv,
        },
        JobClass {
            fidelity: Fidelity::Fast,
            payload: PayloadKind::Gemm,
        },
        JobClass {
            fidelity: Fidelity::Fast,
            payload: PayloadKind::Network,
        },
        JobClass {
            fidelity: Fidelity::Accurate,
            payload: PayloadKind::Conv,
        },
        JobClass {
            fidelity: Fidelity::Accurate,
            payload: PayloadKind::Gemm,
        },
        JobClass {
            fidelity: Fidelity::Accurate,
            payload: PayloadKind::Network,
        },
    ];

    /// Dense index into per-class tables (`0..6`).
    #[must_use]
    pub fn index(self) -> usize {
        let f = match self.fidelity {
            Fidelity::Fast => 0,
            Fidelity::Accurate => 3,
        };
        let p = match self.payload {
            PayloadKind::Conv => 0,
            PayloadKind::Gemm => 1,
            PayloadKind::Network => 2,
        };
        f + p
    }

    /// Stable `fidelity/kind` name for reports (e.g. `fast/gemm`).
    #[must_use]
    pub fn name(self) -> String {
        format!("{}/{}", self.fidelity.name(), self.payload.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_stable() {
        let mut seen = [false; 6];
        for class in JobClass::ALL {
            assert!(!seen[class.index()], "index collision at {}", class.name());
            seen[class.index()] = true;
            assert_eq!(JobClass::ALL[class.index()], class);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<String> =
            JobClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 6);
    }
}
