//! Content-addressed result cache.
//!
//! Production edge-DLA traffic repeats itself: the same weights serve
//! every request of a deployment, and hot inputs recur. Since every
//! job input in the workspace carries an order-stable FNV-1a digest
//! (`DataCube::content_hash`, `KernelSet::content_hash`,
//! `Matrix::content_hash`, `ConvParams`/`SdpConfig`/`PoolParams` and
//! `NetworkLayer::content_hash`), a completed job can be memoized
//! above the backend layer under `Job::content_key()` — the combined
//! digest of `(input, weights, params)` — and replayed bit-identically
//! without touching a core.
//!
//! The cache is a bounded LRU with lazy recency bookkeeping: each
//! touch pushes a `(key, stamp)` pair onto a recency queue and records
//! the stamp in the live map; eviction pops stale pairs until it finds
//! one whose stamp is current. Amortized O(1) per operation.
//!
//! Keys additionally fold in the executing [`BackendKind`]: outputs
//! are bit-identical across backends (the workspace's equivalence
//! contract), but *modelled cycles and energy are not* — an NVDLA
//! baseline entry must not answer for a Tempus one.

use std::collections::{HashMap, VecDeque};

use tempus_runtime::{BackendKind, JobOutput};

/// A memoized job execution.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The computed output (bit-identical to a cold execution).
    pub output: JobOutput,
    /// Modelled datapath cycles of the original execution (the
    /// sharded critical path on multi-array backends).
    pub sim_cycles: u64,
    /// Modelled energy of the original execution, in pJ.
    pub energy_pj: f64,
    /// PE arrays the original execution occupied (1 on single-array
    /// backends).
    pub shards: usize,
    /// Work balance across the arrays of the original execution.
    pub shard_utilization: f64,
    /// Arrays the array-slot scheduler granted the original
    /// execution (a hit itself costs the device nothing).
    pub arrays_granted: usize,
}

/// Hit/miss/eviction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Live entries at snapshot time.
    pub entries: usize,
    /// The configured capacity.
    pub capacity: usize,
}

impl ResultCacheStats {
    /// Hit fraction over all lookups (0 when none).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Slot {
    entry: CacheEntry,
    stamp: u64,
}

/// Bounded LRU keyed on `(Job::content_key(), BackendKind)`.
#[derive(Debug)]
pub struct ResultCache {
    map: HashMap<u64, Slot>,
    recency: VecDeque<(u64, u64)>,
    stamp: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

fn backend_tag(kind: BackendKind) -> u64 {
    match kind {
        BackendKind::TempusCycleAccurate => 0x9E37_79B9_7F4A_7C15,
        BackendKind::NvdlaCycleAccurate => 0xC2B2_AE3D_27D4_EB4F,
        BackendKind::FastFunctional => 0x1656_67B1_9E37_79F9,
    }
}

/// Folds a job content key and the executing backend into the cache
/// key.
#[must_use]
pub fn cache_key(content_key: u64, kind: BackendKind) -> u64 {
    // xor-multiply mix keeps the key order-stable and cheap.
    (content_key ^ backend_tag(kind)).wrapping_mul(0xFF51_AFD7_ED55_8CCD)
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be >= 1");
        ResultCache {
            map: HashMap::with_capacity(capacity),
            recency: VecDeque::new(),
            stamp: 0,
            capacity,
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
        }
    }

    /// Live entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn touch(&mut self, key: u64) {
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some(slot) = self.map.get_mut(&key) {
            slot.stamp = stamp;
        }
        self.recency.push_back((key, stamp));
        // Keep the lazy queue from outgrowing the map unboundedly:
        // compact once it holds more stale than live pairs.
        if self.recency.len() > 2 * self.capacity.max(self.map.len()) {
            let map = &self.map;
            self.recency
                .retain(|&(k, s)| map.get(&k).is_some_and(|slot| slot.stamp == s));
        }
    }

    /// Looks up a key, bumping recency and counting hit/miss.
    #[must_use]
    pub fn get(&mut self, key: u64) -> Option<CacheEntry> {
        if self.map.contains_key(&key) {
            self.touch(key);
            self.hits += 1;
            self.map.get(&key).map(|s| s.entry.clone())
        } else {
            self.misses += 1;
            None
        }
    }

    /// Inserts (or refreshes) an entry, evicting the least recently
    /// used entry when over capacity.
    pub fn insert(&mut self, key: u64, entry: CacheEntry) {
        let fresh = !self.map.contains_key(&key);
        self.map.insert(
            key,
            Slot {
                entry,
                stamp: 0, // touched below
            },
        );
        self.touch(key);
        if fresh {
            self.insertions += 1;
        }
        while self.map.len() > self.capacity {
            // Pop recency pairs until one is current; stale pairs
            // belong to keys re-touched or already evicted.
            match self.recency.pop_front() {
                Some((k, s)) => {
                    if self.map.get(&k).is_some_and(|slot| slot.stamp == s) {
                        self.map.remove(&k);
                        self.evictions += 1;
                    }
                }
                None => break, // unreachable: map non-empty => queue non-empty
            }
        }
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> ResultCacheStats {
        ResultCacheStats {
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            entries: self.map.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempus_core::gemm::Matrix;

    fn entry(v: i32) -> CacheEntry {
        CacheEntry {
            output: JobOutput::Matrix(Matrix::from_fn(1, 1, |_, _| v)),
            sim_cycles: v as u64,
            energy_pj: f64::from(v),
            shards: 1,
            shard_utilization: 1.0,
            arrays_granted: 1,
        }
    }

    #[test]
    fn hits_return_the_stored_entry() {
        let mut cache = ResultCache::new(4);
        assert!(cache.get(1).is_none());
        cache.insert(1, entry(7));
        let hit = cache.get(1).expect("hit");
        assert_eq!(hit.sim_cycles, 7);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut cache = ResultCache::new(3);
        for k in 0..3u64 {
            cache.insert(k, entry(k as i32));
        }
        // Touch 0 so 1 becomes the LRU.
        let _ = cache.get(0);
        cache.insert(3, entry(3));
        assert_eq!(cache.len(), 3);
        assert!(cache.get(1).is_none(), "1 was the LRU");
        assert!(cache.get(0).is_some());
        assert!(cache.get(2).is_some());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn capacity_is_a_hard_bound_under_churn() {
        let mut cache = ResultCache::new(8);
        for k in 0..10_000u64 {
            cache.insert(k, entry((k % 100) as i32));
            let _ = cache.get(k / 2);
            assert!(cache.len() <= 8);
            // The lazy recency queue must stay bounded too.
            assert!(cache.recency.len() <= 2 * 8 + 2);
        }
        assert_eq!(cache.stats().entries, 8);
    }

    #[test]
    fn backend_kind_partitions_the_key_space() {
        let key = 0xDEAD_BEEFu64;
        let kinds = [
            BackendKind::TempusCycleAccurate,
            BackendKind::NvdlaCycleAccurate,
            BackendKind::FastFunctional,
        ];
        for (i, &a) in kinds.iter().enumerate() {
            for &b in &kinds[i + 1..] {
                assert_ne!(cache_key(key, a), cache_key(key, b));
            }
        }
    }
}
