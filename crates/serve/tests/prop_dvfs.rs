//! DVFS properties: the occupancy-driven governor is a pure function
//! of the placement trace (replaying the same admissions yields
//! bit-identical ladder walks, placements and event streams), and
//! answer-now-verify-later serving agrees digest-for-digest with the
//! non-speculative path on every backend pairing.

use std::collections::BTreeMap;
use std::time::Duration;

use proptest::prelude::*;
use tempus_core::shard::BudgetPlan;
use tempus_fleet::{FleetConfig, FleetEvent, FleetOutcome, FleetScheduler, FleetSummary};
use tempus_models::traffic::{generate, TraceConfig};
use tempus_runtime::BackendKind;
use tempus_serve::{
    GovernorPolicy, Request, ResponseOutcome, ServeConfig, ServeStats, StreamingService,
};

/// Drives one governor-armed (optionally power-capped) fleet through
/// the admission stream, returning everything observable: outcomes,
/// the recorded event log (routes, previews, frequency changes) and
/// the summary.
fn govern_replay(
    jobs: &[(u64, u64)],
    governor: GovernorPolicy,
    cap_mw: Option<f64>,
) -> (Vec<FleetOutcome>, Vec<FleetEvent>, FleetSummary) {
    let mut config = FleetConfig::new(1, 2).with_freq_governor(governor);
    if let Some(cap) = cap_mw {
        config = config.with_power_cap(cap);
    }
    let mut fleet = FleetScheduler::new(config);
    fleet.set_recording(true);
    let mut arrival = 0u64;
    let mut outcomes = Vec::with_capacity(jobs.len());
    for &(cycles, gap) in jobs {
        let mut plan = BudgetPlan::single(cycles);
        // Annotate a calibrated energy split so capped admission has
        // a power figure to price levels against.
        plan.widths[0].dynamic_energy_pj = cycles.saturating_mul(90);
        plan.widths[0].static_energy_pj = cycles.saturating_mul(10);
        arrival = arrival.saturating_add(gap);
        outcomes.push(fleet.admit_at(&plan, None, arrival));
    }
    let events = fleet.drain_events();
    (outcomes, events, fleet.summary())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Same admission stream in, same ladder walk out — placements,
    /// frequency-change events and residency folds are all
    /// bit-identical across replays, with or without a power cap. No
    /// host timing leaks into the governor.
    #[test]
    fn governor_is_a_pure_function_of_the_trace(
        jobs in prop::collection::vec((50u64..2_000, 0u64..4_000), 4..40),
        low in 50u32..400,
        spread in 50u32..400,
        max_level in 1u8..4,
        cap_raw in 0.0f64..40.0,
    ) {
        // Below 5 mW the cap is degenerate for these plans; use that
        // band to exercise the uncapped admission path instead.
        let cap = (cap_raw >= 5.0).then_some(cap_raw);
        let governor = GovernorPolicy {
            max_level,
            low_permille: low,
            high_permille: low + spread,
        };
        let a = govern_replay(&jobs, governor, cap);
        let b = govern_replay(&jobs, governor, cap);
        prop_assert_eq!(&a.0, &b.0, "placements diverged across replays");
        prop_assert_eq!(&a.1, &b.1, "event logs diverged across replays");
        prop_assert_eq!(&a.2, &b.2, "summaries diverged across replays");

        // Uncapped, the governor alone picks levels and never walks
        // past its configured floor. (Power-capped admission searches
        // the full ladder by design — the cap outranks the governor.)
        if cap.is_none() {
            let combined = a.2.combined();
            for (lvl, &cycles) in combined.level_residency.iter().enumerate() {
                if lvl > max_level as usize {
                    prop_assert_eq!(cycles, 0, "residency beyond max_level {}", max_level);
                }
            }
            for outcome in &a.0 {
                if let FleetOutcome::Placed(p) = outcome {
                    prop_assert!(p.placement.freq_level <= max_level);
                }
            }
        }
    }
}

/// Replays a trace closed-loop, panicking on any rejection or
/// failure, and returns per-job output digests plus final stats.
fn serve_replay(config: ServeConfig, trace_seed: u64) -> (BTreeMap<u64, u64>, ServeStats) {
    let trace = generate(
        &TraceConfig::new(trace_seed)
            .with_requests(20)
            .with_repeat_fraction(0.0)
            .with_accurate_fraction(0.3),
    );
    let service = StreamingService::start(config).expect("service starts");
    let mut digests = BTreeMap::new();
    let mut outstanding = 0usize;
    let consume =
        |response: tempus_serve::Response, digests: &mut BTreeMap<u64, u64>| match response.outcome
        {
            ResponseOutcome::Done(result) => {
                digests.insert(response.job_id, result.output.digest());
            }
            ResponseOutcome::Rejected(reason) => panic!("request rejected: {reason:?}"),
            ResponseOutcome::Failed(error) => panic!("request failed: {error}"),
        };
    for t in &trace {
        service
            .submit(Request::from_trace(t))
            .expect("service accepts");
        outstanding += 1;
        while let Some(response) = service.recv_response(Duration::ZERO) {
            outstanding -= 1;
            consume(response, &mut digests);
        }
    }
    while outstanding > 0 {
        let response = service
            .recv_response(Duration::from_secs(120))
            .expect("responses drain");
        outstanding -= 1;
        consume(response, &mut digests);
    }
    let (stats, _) = service.shutdown();
    (digests, stats)
}

/// Speculative serving must agree digest-for-digest with the
/// non-speculative path against `accurate_backend`, with every closed
/// answer/verify rendezvous verifying clean — exercised for both
/// cycle-accurate backends (the answer leg itself always runs the
/// functional backend, so each case spans two of the three backends
/// and the pair covers all three).
fn speculative_agrees_with(accurate_backend: BackendKind) {
    let config = || {
        let mut c = ServeConfig::new()
            .with_workers(2)
            .with_queue_capacity(64)
            .with_admission(1, 64)
            .with_drain_timeout(Duration::from_secs(120));
        c.accurate_backend = accurate_backend;
        c
    };
    let (baseline, baseline_stats) = serve_replay(config(), 97);
    let (speculative, spec_stats) = serve_replay(config().with_speculative(), 97);
    assert_eq!(
        baseline, speculative,
        "speculative answers diverged from the non-speculative path on {accurate_backend:?}"
    );
    assert_eq!(baseline_stats.failed, 0);
    assert_eq!(spec_stats.failed, 0);
    assert_eq!(
        spec_stats.speculative_mismatches, 0,
        "a verify leg disagreed with its answer on {accurate_backend:?}"
    );
    assert!(
        spec_stats.speculative_verified > 0,
        "no rendezvous closed — speculation never engaged on {accurate_backend:?}"
    );
    assert_eq!(baseline_stats.speculative_answers, 0);
}

#[test]
fn speculative_digests_agree_on_tempus() {
    speculative_agrees_with(BackendKind::TempusCycleAccurate);
}

#[test]
fn speculative_digests_agree_on_nvdla() {
    speculative_agrees_with(BackendKind::NvdlaCycleAccurate);
}
