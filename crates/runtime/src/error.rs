//! Runtime error type.

use std::fmt;

use tempus_arith::ArithError;
use tempus_nvdla::NvdlaError;

/// Errors surfaced by the inference engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A convolution substrate error (shapes, precision, capacity).
    Nvdla(NvdlaError),
    /// An arithmetic error from the GEMM path.
    Arith(ArithError),
    /// The engine was configured with zero workers.
    NoWorkers,
    /// A worker thread panicked while executing a job.
    WorkerPanicked {
        /// Index of the panicked worker.
        worker: usize,
    },
    /// The worker pool's task channel is closed (every worker exited
    /// or the pool is shutting down); the submission was not accepted.
    PoolClosed,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Nvdla(e) => write!(f, "convolution substrate error: {e}"),
            RuntimeError::Arith(e) => write!(f, "arithmetic error: {e}"),
            RuntimeError::NoWorkers => f.write_str("engine needs at least one worker"),
            RuntimeError::WorkerPanicked { worker } => {
                write!(f, "worker {worker} panicked while executing a job")
            }
            RuntimeError::PoolClosed => f.write_str("worker pool is closed"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Nvdla(e) => Some(e),
            RuntimeError::Arith(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NvdlaError> for RuntimeError {
    fn from(e: NvdlaError) -> Self {
        RuntimeError::Nvdla(e)
    }
}

impl From<ArithError> for RuntimeError {
    fn from(e: ArithError) -> Self {
        RuntimeError::Arith(e)
    }
}
