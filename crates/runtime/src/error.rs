//! Runtime error type.

use std::fmt;

use tempus_arith::ArithError;
use tempus_nvdla::NvdlaError;

/// Errors surfaced by the inference engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A convolution substrate error (shapes, precision, capacity).
    Nvdla(NvdlaError),
    /// An arithmetic error from the GEMM path.
    Arith(ArithError),
    /// The engine was configured with zero workers.
    NoWorkers,
    /// A worker thread panicked while executing a job.
    WorkerPanicked {
        /// Index of the panicked worker.
        worker: usize,
    },
    /// The worker pool's task channel is closed (every worker exited
    /// or the pool is shutting down); the submission was not accepted.
    PoolClosed,
    /// A chaos-plan fault was injected into this execution attempt
    /// (transient backend error or persistent device outage).
    InjectedFault {
        /// Job the fault was dealt to.
        job_id: u64,
        /// Device the execution was placed on.
        device: usize,
    },
    /// The per-job deadline watchdog cancelled a stuck execution; the
    /// attempt's eventual outcome (if any) is discarded.
    StuckJob {
        /// Job the watchdog cancelled.
        job_id: u64,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Nvdla(e) => write!(f, "convolution substrate error: {e}"),
            RuntimeError::Arith(e) => write!(f, "arithmetic error: {e}"),
            RuntimeError::NoWorkers => f.write_str("engine needs at least one worker"),
            RuntimeError::WorkerPanicked { worker } => {
                write!(f, "worker {worker} panicked while executing a job")
            }
            RuntimeError::PoolClosed => f.write_str("worker pool is closed"),
            RuntimeError::InjectedFault { job_id, device } => {
                write!(f, "injected fault on job {job_id} (device {device})")
            }
            RuntimeError::StuckJob { job_id } => {
                write!(f, "watchdog cancelled stuck job {job_id}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Nvdla(e) => Some(e),
            RuntimeError::Arith(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NvdlaError> for RuntimeError {
    fn from(e: NvdlaError) -> Self {
        RuntimeError::Nvdla(e)
    }
}

impl From<ArithError> for RuntimeError {
    fn from(e: ArithError) -> Self {
        RuntimeError::Arith(e)
    }
}
