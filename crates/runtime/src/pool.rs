//! Incremental job submission: a persistent worker pool.
//!
//! [`InferenceEngine::run_batch`](crate::engine::InferenceEngine)
//! accepts whole batches and blocks until every job drains — the
//! right shape for offline sweeps, the wrong one for continuous
//! traffic. [`WorkerPool`] keeps the same worker-owns-its-core
//! execution model but stays resident: jobs are submitted one at a
//! time (each tagged with the backend that should run it), workers
//! pull from a shared channel, and outcomes stream back as they
//! complete. Per-worker backends — and their CSC stripe-schedule
//! caches — persist across submissions, so repeated layer shapes keep
//! paying off across the whole service lifetime instead of per batch.
//!
//! The serving layer (`tempus-serve`) builds its bounded ingestion
//! queue, admission control and result cache on top of this pool.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tempus_core::schedule::CacheStats;
use tempus_telemetry::{Clock, Counter, Stage, Telemetry, TraceSink};

use crate::backend::{BackendKind, InferenceBackend};
use crate::engine::{array_power_mw, EngineConfig};
use crate::error::RuntimeError;
use crate::job::{Job, JobResult};
use crate::ledger::ArrayAssignment;
use crate::stats::{WorkerStats, PERIOD_NS};

/// One unit of work for the pool: a job, the backend that should
/// execute it (the pool serves mixed-fidelity traffic — fast
/// functional and cycle-accurate jobs share the same workers) and the
/// array-slot grant it runs under.
#[derive(Debug, Clone)]
pub struct PoolTask {
    /// The job to execute.
    pub job: Job,
    /// Which backend executes it.
    pub backend: BackendKind,
    /// The array grant: the worker executes the job at
    /// `assignment.granted` arrays and stamps the assignment into the
    /// [`JobResult`].
    pub assignment: ArrayAssignment,
}

/// One completed (or failed) pool task.
#[derive(Debug)]
pub struct PoolOutcome {
    /// Id of the submitted job.
    pub job_id: u64,
    /// Backend that executed it.
    pub backend: BackendKind,
    /// The result, or the substrate error that rejected the job.
    /// Errors are per-job: a failed job does not take its worker down.
    pub result: Result<JobResult, RuntimeError>,
}

fn kind_index(kind: BackendKind) -> usize {
    match kind {
        BackendKind::TempusCycleAccurate => 0,
        BackendKind::NvdlaCycleAccurate => 1,
        BackendKind::FastFunctional => 2,
    }
}

/// A resident pool of inference workers accepting incremental job
/// submission.
///
/// Dropping the pool without calling [`WorkerPool::shutdown`] detaches
/// the worker threads; they exit once the task channel closes.
#[derive(Debug)]
pub struct WorkerPool {
    task_tx: Sender<PoolTask>,
    outcome_rx: Receiver<PoolOutcome>,
    handles: Vec<JoinHandle<WorkerStats>>,
    num_arrays: usize,
}

impl WorkerPool {
    /// Spawns `config.workers` resident worker threads. Each worker
    /// lazily instantiates one backend per [`BackendKind`] it is asked
    /// to run, and keeps it (cores, schedule caches) for the pool's
    /// lifetime. The `config.backend` field is ignored — the backend
    /// is chosen per task.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoWorkers`] when `config.workers == 0`.
    pub fn spawn(config: EngineConfig) -> Result<Self, RuntimeError> {
        Self::spawn_traced(config, Telemetry::disabled())
    }

    /// Like [`WorkerPool::spawn`], with a telemetry hub: each worker
    /// records one wall-clock `execute` span per job on its own
    /// `worker{i}` track. With a disabled hub this is exactly
    /// [`WorkerPool::spawn`] — workers hold a no-op sink and pay one
    /// branch per job.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoWorkers`] when `config.workers == 0`.
    pub fn spawn_traced(config: EngineConfig, telemetry: Telemetry) -> Result<Self, RuntimeError> {
        if config.workers == 0 {
            return Err(RuntimeError::NoWorkers);
        }
        // Calibrated per-cycle array power per backend kind, so the
        // pool's energy figures match the batch engine's.
        let powers: [f64; 3] = {
            let mut p = [0.0; 3];
            for kind in BackendKind::ALL {
                p[kind_index(kind)] = array_power_mw(&config, kind);
            }
            p
        };
        let (task_tx, task_rx) = channel::<PoolTask>();
        let task_rx = Arc::new(Mutex::new(task_rx));
        let (outcome_tx, outcome_rx) = channel::<PoolOutcome>();
        let handles = (0..config.workers)
            .map(|worker| {
                let task_rx = Arc::clone(&task_rx);
                let outcome_tx = outcome_tx.clone();
                let config = config.clone();
                let telemetry = telemetry.clone();
                std::thread::spawn(move || {
                    worker_loop(worker, &config, powers, &task_rx, &outcome_tx, &telemetry)
                })
            })
            .collect();
        Ok(WorkerPool {
            task_tx,
            outcome_rx,
            handles,
            num_arrays: config.num_arrays.max(1),
        })
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// PE arrays of the modelled device.
    #[must_use]
    pub fn num_arrays(&self) -> usize {
        self.num_arrays
    }

    /// Submits one job for execution on `backend` at the full
    /// configured array width (PR 4 semantics). Returns immediately;
    /// the outcome arrives via [`WorkerPool::try_collect`] /
    /// [`WorkerPool::collect_timeout`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::PoolClosed`] when every worker has
    /// exited (all threads panicked or the pool is shutting down).
    pub fn submit(&self, job: Job, backend: BackendKind) -> Result<(), RuntimeError> {
        self.submit_assigned(job, backend, ArrayAssignment::full(self.num_arrays))
    }

    /// Submits one job under an explicit array-slot grant: the worker
    /// executes it at `assignment.granted` arrays (bit-identical to a
    /// pool configured with that array count) and stamps the
    /// assignment into the result.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::PoolClosed`] when every worker has
    /// exited.
    pub fn submit_assigned(
        &self,
        job: Job,
        backend: BackendKind,
        assignment: ArrayAssignment,
    ) -> Result<(), RuntimeError> {
        self.task_tx
            .send(PoolTask {
                job,
                backend,
                assignment,
            })
            .map_err(|_| RuntimeError::PoolClosed)
    }

    /// Collects one completed outcome without blocking.
    #[must_use]
    pub fn try_collect(&self) -> Option<PoolOutcome> {
        self.outcome_rx.try_recv().ok()
    }

    /// Collects one completed outcome, waiting up to `timeout`.
    #[must_use]
    pub fn collect_timeout(&self, timeout: Duration) -> Option<PoolOutcome> {
        self.outcome_rx.recv_timeout(timeout).ok()
    }

    /// Closes the task channel, drains the workers and returns their
    /// final records (including schedule-cache counters accumulated
    /// over the pool's whole lifetime). Outcomes still in flight when
    /// shutdown is called are discarded — collect before shutting
    /// down.
    #[must_use]
    pub fn shutdown(self) -> Vec<WorkerStats> {
        drop(self.task_tx);
        self.handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    }
}

fn worker_loop(
    worker: usize,
    config: &EngineConfig,
    powers: [f64; 3],
    task_rx: &Mutex<Receiver<PoolTask>>,
    outcome_tx: &Sender<PoolOutcome>,
    telemetry: &Telemetry,
) -> WorkerStats {
    let mut backends: [Option<Box<dyn InferenceBackend>>; 3] = [None, None, None];
    let mut sink = telemetry.sink();
    let track = telemetry.track(&format!("worker{worker}"), Clock::Wall, 0);
    let mut stats = WorkerStats {
        worker,
        ..WorkerStats::default()
    };
    loop {
        // Holding the lock while blocked on recv serialises task
        // pickup, which is exactly the semantics we want: one waiter
        // takes the next task, the rest queue on the mutex.
        let task = match task_rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => break,
        };
        let Ok(PoolTask {
            job,
            backend: kind,
            assignment,
        }) = task
        else {
            break; // channel closed: pool is shutting down
        };
        let start = Instant::now();
        let start_ns = telemetry.now_ns();
        // A panicking backend must not silently lose the outcome:
        // the serving layer above counts in-flight jobs, and a
        // missing completion would wedge its dispatch gate forever.
        let executed = {
            let backend = backends[kind_index(kind)].get_or_insert_with(|| {
                kind.instantiate(
                    config.tempus,
                    config.nvdla,
                    config.gemm_grid,
                    config.num_arrays,
                )
            });
            catch_unwind(AssertUnwindSafe(|| {
                backend.execute_on(&job, assignment.granted.max(1))
            }))
        };
        let result = match executed {
            Ok(executed) => executed.map(|run| {
                let wall_ns = start.elapsed().as_nanos() as u64;
                stats.jobs += 1;
                stats.sim_cycles += run.sim_cycles;
                stats.wall_ns += wall_ns;
                sink.span(
                    track,
                    Stage::Execute,
                    start_ns,
                    wall_ns,
                    job.id,
                    run.window_cycles,
                );
                if run.window_cycles > 0 {
                    telemetry.count(Counter::WindowCycles, run.window_cycles);
                }
                JobResult {
                    job_id: job.id,
                    job_name: job.name.clone(),
                    kind: job.payload.kind(),
                    output: run.output,
                    sim_cycles: run.sim_cycles,
                    total_array_cycles: run.total_array_cycles,
                    shards: run.shards,
                    shard_utilization: run.shard_utilization,
                    arrays_requested: assignment.requested,
                    arrays_granted: assignment.granted.max(1),
                    array_wait_cycles: assignment.wait_cycles,
                    energy_pj: powers[kind_index(kind)] * run.total_array_cycles as f64 * PERIOD_NS,
                    wall_ns,
                    worker,
                    per_shard_cycles: run.per_shard_cycles,
                    reduction_cycles: run.reduction_cycles,
                    window_cycles: run.window_cycles,
                }
            }),
            Err(_) => {
                // The backend's internal state is suspect after an
                // unwind; drop it and re-instantiate on next use.
                backends[kind_index(kind)] = None;
                Err(RuntimeError::WorkerPanicked { worker })
            }
        };
        let outcome = PoolOutcome {
            job_id: job.id,
            backend: kind,
            result,
        };
        if outcome_tx.send(outcome).is_err() {
            break; // collector gone: nothing left to work for
        }
    }
    let mut cache: Option<CacheStats> = None;
    for backend in backends.iter().flatten() {
        if let Some(cs) = backend.cache_stats() {
            cache.get_or_insert_with(CacheStats::default).merge(&cs);
        }
    }
    stats.schedule_cache = cache;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempus_core::gemm::Matrix;

    fn gemm_job(id: u64, salt: i32) -> Job {
        let a = Matrix::from_fn(5, 6, move |r, c| {
            ((r as i32 * 31 + c as i32 * 17 + salt) % 255) - 127
        });
        let b = Matrix::from_fn(6, 4, move |r, c| {
            ((r as i32 * 13 + c as i32 * 41 + salt) % 255) - 127
        });
        Job::gemm(id, format!("gemm-{id}"), a, b)
    }

    #[test]
    fn zero_workers_rejected() {
        let cfg = EngineConfig::new(BackendKind::FastFunctional).with_workers(0);
        assert!(matches!(
            WorkerPool::spawn(cfg),
            Err(RuntimeError::NoWorkers)
        ));
    }

    #[test]
    fn incremental_submission_round_trips() {
        let pool =
            WorkerPool::spawn(EngineConfig::new(BackendKind::FastFunctional).with_workers(2))
                .unwrap();
        for id in 0..10u64 {
            pool.submit(gemm_job(id, id as i32), BackendKind::FastFunctional)
                .unwrap();
        }
        let mut seen = Vec::new();
        while seen.len() < 10 {
            let outcome = pool
                .collect_timeout(Duration::from_secs(10))
                .expect("outcome arrives");
            seen.push(outcome.job_id);
            assert!(outcome.result.is_ok());
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        let stats = pool.shutdown();
        assert_eq!(stats.iter().map(|w| w.jobs).sum::<u64>(), 10);
    }

    #[test]
    fn mixed_fidelity_agrees_on_outputs() {
        let pool =
            WorkerPool::spawn(EngineConfig::new(BackendKind::FastFunctional).with_workers(2))
                .unwrap();
        let job = gemm_job(0, 3);
        pool.submit(job.clone(), BackendKind::FastFunctional)
            .unwrap();
        let mut fast = None;
        let mut accurate = None;
        pool.submit(Job { id: 1, ..job }, BackendKind::TempusCycleAccurate)
            .unwrap();
        for _ in 0..2 {
            let outcome = pool
                .collect_timeout(Duration::from_secs(10))
                .expect("outcome arrives");
            let result = outcome.result.unwrap();
            match outcome.backend {
                BackendKind::FastFunctional => fast = Some(result),
                BackendKind::TempusCycleAccurate => accurate = Some(result),
                BackendKind::NvdlaCycleAccurate => unreachable!(),
            }
        }
        let (f, a) = (fast.unwrap(), accurate.unwrap());
        assert_eq!(f.output.digest(), a.output.digest());
        assert_eq!(f.sim_cycles, a.sim_cycles);
    }

    #[test]
    fn job_errors_do_not_kill_workers() {
        let pool =
            WorkerPool::spawn(EngineConfig::new(BackendKind::FastFunctional).with_workers(1))
                .unwrap();
        let bad = Job::gemm(0, "mismatched", Matrix::zeros(2, 3), Matrix::zeros(4, 2));
        pool.submit(bad, BackendKind::FastFunctional).unwrap();
        let outcome = pool.collect_timeout(Duration::from_secs(10)).unwrap();
        assert!(matches!(outcome.result, Err(RuntimeError::Arith(_))));
        // The worker survives and serves the next job.
        pool.submit(gemm_job(1, 0), BackendKind::FastFunctional)
            .unwrap();
        let outcome = pool.collect_timeout(Duration::from_secs(10)).unwrap();
        assert!(outcome.result.is_ok());
        let stats = pool.shutdown();
        assert_eq!(stats.iter().map(|w| w.jobs).sum::<u64>(), 1);
    }
}
