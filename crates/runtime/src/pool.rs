//! Incremental job submission: a persistent, self-healing worker pool.
//!
//! [`InferenceEngine::run_batch`](crate::engine::InferenceEngine)
//! accepts whole batches and blocks until every job drains — the
//! right shape for offline sweeps, the wrong one for continuous
//! traffic. [`WorkerPool`] keeps the same worker-owns-its-core
//! execution model but stays resident: jobs are submitted one at a
//! time (each tagged with the backend that should run it), workers
//! pull from a shared channel, and outcomes stream back as they
//! complete. Per-worker backends — and their CSC stripe-schedule
//! caches — persist across submissions, so repeated layer shapes keep
//! paying off across the whole service lifetime instead of per batch.
//!
//! The pool is the runtime layer of the fault-tolerance story:
//!
//! - per-job panics are caught ([`std::panic::catch_unwind`]) and
//!   surfaced as failed outcomes, never lost completions;
//! - a worker thread that dies outright is noticed on the next
//!   collect call and **respawned** with a fresh backend set;
//! - an optional per-job deadline **watchdog** cancels executions
//!   that exceed their backend-scaled deadline, synthesizing a
//!   [`RuntimeError::StuckJob`] outcome and discarding whatever the
//!   stuck attempt eventually produces;
//! - a [`FaultInjector`] hook (zero-overhead when disabled) lets the
//!   chaos layer deal deterministic faults to individual attempts.
//!
//! The serving layer (`tempus-serve`) builds its bounded ingestion
//! queue, admission control, retry policy and result cache on top of
//! this pool.

use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tempus_chaos::{FaultInjector, FaultKind};
use tempus_core::schedule::CacheStats;
use tempus_telemetry::{Clock, Counter, Stage, Telemetry, TraceSink};

use crate::backend::{BackendKind, InferenceBackend};
use crate::engine::{array_leakage_fraction, array_power_mw, EngineConfig};
use crate::error::RuntimeError;
use crate::job::{Job, JobResult};
use crate::ledger::ArrayAssignment;
use crate::stats::{WorkerStats, PERIOD_NS};

/// Locks a mutex, recovering the guard from a poisoned lock instead
/// of cascading the panic: the pool's shared maps stay usable for
/// every other thread even if one worker died mid-update (the data is
/// plain bookkeeping — worst case a stale in-flight entry, which the
/// watchdog or shutdown cleans up).
fn lock_clean<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One unit of work for the pool: a job, the backend that should
/// execute it (the pool serves mixed-fidelity traffic — fast
/// functional and cycle-accurate jobs share the same workers), the
/// array-slot grant it runs under, and its routing identity (device,
/// attempt) so retries and fault decisions are addressable.
#[derive(Debug, Clone)]
pub struct PoolTask {
    /// The job to execute.
    pub job: Job,
    /// Which backend executes it.
    pub backend: BackendKind,
    /// The array grant: the worker executes the job at
    /// `assignment.granted` arrays and stamps the assignment into the
    /// [`JobResult`].
    pub assignment: ArrayAssignment,
    /// Fleet device the execution was placed on (0 on single-device
    /// pools) — the fault plan keys persistent outages on it.
    pub device: usize,
    /// Execution attempt, starting at 0; retries increment it so the
    /// fault plan re-rolls instead of replaying the same fault.
    pub attempt: u32,
    /// Whether the fault injector may touch this attempt. The
    /// degrade-don't-drop fallback submits with `inject: false` so
    /// the last-resort answer cannot itself be failed.
    pub inject: bool,
    /// DVFS ladder level the placement's arrays run at (0 = nominal).
    /// The worker scales the result's energy split accordingly; the
    /// modelled cycle figures stay nominal (the ledger owns the
    /// period-scaled booking).
    pub freq_level: u8,
}

/// One completed (or failed) pool task.
#[derive(Debug)]
pub struct PoolOutcome {
    /// Id of the submitted job.
    pub job_id: u64,
    /// Backend that executed it.
    pub backend: BackendKind,
    /// Device the execution was placed on (echoed from the task).
    pub device: usize,
    /// Execution attempt (echoed from the task).
    pub attempt: u32,
    /// The result, or the substrate error that rejected the job.
    /// Errors are per-job: a failed job does not take its worker down.
    pub result: Result<JobResult, RuntimeError>,
}

fn kind_index(kind: BackendKind) -> usize {
    match kind {
        BackendKind::TempusCycleAccurate => 0,
        BackendKind::NvdlaCycleAccurate => 1,
        BackendKind::FastFunctional => 2,
    }
}

/// Cycle-accurate backends get a longer watchdog leash than the
/// functional backend: their honest latency is orders of magnitude
/// higher, and a watchdog that fires on honest work just converts
/// slow successes into retries.
const ACCURATE_WATCHDOG_SCALE: u32 = 20;

fn watchdog_deadline(base: Duration, kind: BackendKind) -> Duration {
    match kind {
        BackendKind::FastFunctional => base,
        _ => base * ACCURATE_WATCHDOG_SCALE,
    }
}

/// An execution currently running on some worker, tracked for the
/// watchdog.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    backend: BackendKind,
    device: usize,
    started: Instant,
    deadline: Duration,
}

/// State shared between the pool handle and its workers.
#[derive(Debug)]
struct PoolShared {
    injector: FaultInjector,
    /// Watchdog base deadline (functional backend; cycle-accurate
    /// kinds get [`ACCURATE_WATCHDOG_SCALE`]×). `None` disables the
    /// watchdog and all per-job registry bookkeeping.
    watchdog: Option<Duration>,
    /// Executions in flight, keyed by `(job id, attempt)`.
    inflight: Mutex<HashMap<(u64, u32), Inflight>>,
    /// Attempts cancelled by the watchdog: their eventual outcomes
    /// are dropped on collect.
    abandoned: Mutex<HashSet<(u64, u32)>>,
    respawns: AtomicU64,
    watchdog_cancels: AtomicU64,
}

/// Everything needed to (re)spawn a worker thread.
#[derive(Debug)]
struct SpawnCtx {
    config: EngineConfig,
    powers: [f64; 3],
    /// Static/leakage fraction of `powers`, per backend kind.
    leak_fracs: [f64; 3],
    task_rx: Arc<Mutex<Receiver<PoolTask>>>,
    outcome_tx: Sender<PoolOutcome>,
    telemetry: Telemetry,
}

/// A resident pool of inference workers accepting incremental job
/// submission.
///
/// Dropping the pool without calling [`WorkerPool::shutdown`] detaches
/// the worker threads; they exit once the task channel closes.
#[derive(Debug)]
pub struct WorkerPool {
    task_tx: Sender<PoolTask>,
    outcome_rx: Receiver<PoolOutcome>,
    handles: Mutex<Vec<(usize, JoinHandle<WorkerStats>)>>,
    /// Stats recovered from workers that died and were respawned.
    retired: Mutex<Vec<WorkerStats>>,
    /// Outcomes synthesized by the watchdog, drained ahead of the
    /// channel.
    synthesized: Mutex<VecDeque<PoolOutcome>>,
    shared: Arc<PoolShared>,
    ctx: SpawnCtx,
    num_arrays: usize,
}

impl WorkerPool {
    /// Spawns `config.workers` resident worker threads. Each worker
    /// lazily instantiates one backend per [`BackendKind`] it is asked
    /// to run, and keeps it (cores, schedule caches) for the pool's
    /// lifetime. The `config.backend` field is ignored — the backend
    /// is chosen per task.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoWorkers`] when `config.workers == 0`.
    pub fn spawn(config: EngineConfig) -> Result<Self, RuntimeError> {
        Self::spawn_traced(config, Telemetry::disabled())
    }

    /// Like [`WorkerPool::spawn`], with a telemetry hub: each worker
    /// records one wall-clock `execute` span per job on its own
    /// `worker{i}` track. With a disabled hub this is exactly
    /// [`WorkerPool::spawn`] — workers hold a no-op sink and pay one
    /// branch per job.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoWorkers`] when `config.workers == 0`.
    pub fn spawn_traced(config: EngineConfig, telemetry: Telemetry) -> Result<Self, RuntimeError> {
        Self::spawn_chaos(config, telemetry, FaultInjector::disabled(), None)
    }

    /// Like [`WorkerPool::spawn_traced`], with a fault injector and an
    /// optional per-job watchdog deadline. A disabled injector plus
    /// `watchdog: None` is exactly [`WorkerPool::spawn_traced`]: no
    /// registry bookkeeping, one `Option` branch per job.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoWorkers`] when `config.workers == 0`.
    pub fn spawn_chaos(
        config: EngineConfig,
        telemetry: Telemetry,
        injector: FaultInjector,
        watchdog: Option<Duration>,
    ) -> Result<Self, RuntimeError> {
        if config.workers == 0 {
            return Err(RuntimeError::NoWorkers);
        }
        // Calibrated per-cycle array power per backend kind, so the
        // pool's energy figures match the batch engine's.
        let powers: [f64; 3] = {
            let mut p = [0.0; 3];
            for kind in BackendKind::ALL {
                p[kind_index(kind)] = array_power_mw(&config, kind);
            }
            p
        };
        let leak_fracs: [f64; 3] = {
            let mut f = [0.0; 3];
            for kind in BackendKind::ALL {
                f[kind_index(kind)] = array_leakage_fraction(&config, kind);
            }
            f
        };
        let (task_tx, task_rx) = channel::<PoolTask>();
        let task_rx = Arc::new(Mutex::new(task_rx));
        let (outcome_tx, outcome_rx) = channel::<PoolOutcome>();
        let shared = Arc::new(PoolShared {
            injector,
            watchdog,
            inflight: Mutex::new(HashMap::new()),
            abandoned: Mutex::new(HashSet::new()),
            respawns: AtomicU64::new(0),
            watchdog_cancels: AtomicU64::new(0),
        });
        let ctx = SpawnCtx {
            config,
            powers,
            leak_fracs,
            task_rx,
            outcome_tx,
            telemetry,
        };
        let handles = (0..ctx.config.workers)
            .map(|worker| (worker, spawn_worker(worker, &ctx, &shared)))
            .collect();
        let num_arrays = ctx.config.num_arrays.max(1);
        Ok(WorkerPool {
            task_tx,
            outcome_rx,
            handles: Mutex::new(handles),
            retired: Mutex::new(Vec::new()),
            synthesized: Mutex::new(VecDeque::new()),
            shared,
            ctx,
            num_arrays,
        })
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        lock_clean(&self.handles).len()
    }

    /// PE arrays of the modelled device.
    #[must_use]
    pub fn num_arrays(&self) -> usize {
        self.num_arrays
    }

    /// Workers respawned after dying (injected or organic).
    #[must_use]
    pub fn respawns(&self) -> u64 {
        self.shared.respawns.load(Ordering::Relaxed)
    }

    /// Executions cancelled by the watchdog.
    #[must_use]
    pub fn watchdog_cancels(&self) -> u64 {
        self.shared.watchdog_cancels.load(Ordering::Relaxed)
    }

    /// Submits one job for execution on `backend` at the full
    /// configured array width (PR 4 semantics). Returns immediately;
    /// the outcome arrives via [`WorkerPool::try_collect`] /
    /// [`WorkerPool::collect_timeout`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::PoolClosed`] when every worker has
    /// exited (all threads panicked or the pool is shutting down).
    pub fn submit(&self, job: Job, backend: BackendKind) -> Result<(), RuntimeError> {
        self.submit_assigned(job, backend, ArrayAssignment::full(self.num_arrays))
    }

    /// Submits one job under an explicit array-slot grant: the worker
    /// executes it at `assignment.granted` arrays (bit-identical to a
    /// pool configured with that array count) and stamps the
    /// assignment into the result.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::PoolClosed`] when every worker has
    /// exited.
    pub fn submit_assigned(
        &self,
        job: Job,
        backend: BackendKind,
        assignment: ArrayAssignment,
    ) -> Result<(), RuntimeError> {
        self.submit_routed(PoolTask {
            job,
            backend,
            assignment,
            device: 0,
            attempt: 0,
            inject: true,
            freq_level: 0,
        })
    }

    /// Submits a fully-addressed task (device, attempt, injection
    /// eligibility) — the serving layer's retry path.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::PoolClosed`] when every worker has
    /// exited.
    pub fn submit_routed(&self, task: PoolTask) -> Result<(), RuntimeError> {
        self.task_tx
            .send(task)
            .map_err(|_| RuntimeError::PoolClosed)
    }

    /// Housekeeping run on every collect: respawn dead workers and
    /// fire the watchdog on overdue executions.
    fn maintain(&self) {
        // Respawn any worker thread that died (injected worker death
        // or an unwind that escaped the per-job catch). Its stats are
        // recovered so shutdown totals stay exact.
        {
            let mut handles = lock_clean(&self.handles);
            for slot in handles.iter_mut() {
                if !slot.1.is_finished() {
                    continue;
                }
                let worker = slot.0;
                let fresh = spawn_worker(worker, &self.ctx, &self.shared);
                let dead = std::mem::replace(&mut slot.1, fresh);
                lock_clean(&self.retired).push(dead.join().unwrap_or_default());
                self.shared.respawns.fetch_add(1, Ordering::Relaxed);
                self.ctx.telemetry.count(Counter::WorkerRespawns, 1);
                let track = self.ctx.telemetry.track("pool", Clock::Wall, 0);
                self.ctx.telemetry.sink().instant(
                    track,
                    Stage::Respawn,
                    self.ctx.telemetry.now_ns(),
                    worker as u64,
                    0,
                );
            }
        }
        // Watchdog: cancel overdue executions. The stuck attempt is
        // marked abandoned so its eventual outcome (stalled, not
        // dead) is discarded instead of double-completing the job.
        if self.shared.watchdog.is_some() {
            let now = Instant::now();
            let overdue: Vec<((u64, u32), Inflight)> = {
                let mut inflight = lock_clean(&self.shared.inflight);
                let keys: Vec<(u64, u32)> = inflight
                    .iter()
                    .filter(|(_, e)| now.duration_since(e.started) > e.deadline)
                    .map(|(&k, _)| k)
                    .collect();
                keys.into_iter()
                    .filter_map(|k| inflight.remove(&k).map(|e| (k, e)))
                    .collect()
            };
            for ((job_id, attempt), entry) in overdue {
                lock_clean(&self.shared.abandoned).insert((job_id, attempt));
                self.shared.watchdog_cancels.fetch_add(1, Ordering::Relaxed);
                self.ctx.telemetry.count(Counter::WatchdogCancels, 1);
                lock_clean(&self.synthesized).push_back(PoolOutcome {
                    job_id,
                    backend: entry.backend,
                    device: entry.device,
                    attempt,
                    result: Err(RuntimeError::StuckJob { job_id }),
                });
            }
        }
    }

    /// Filters outcomes of watchdog-abandoned attempts.
    fn admit_outcome(&self, outcome: PoolOutcome) -> Option<PoolOutcome> {
        let key = (outcome.job_id, outcome.attempt);
        if lock_clean(&self.shared.abandoned).remove(&key) {
            return None;
        }
        Some(outcome)
    }

    /// Collects one completed outcome without blocking.
    #[must_use]
    pub fn try_collect(&self) -> Option<PoolOutcome> {
        self.maintain();
        if let Some(synth) = lock_clean(&self.synthesized).pop_front() {
            return Some(synth);
        }
        while let Ok(outcome) = self.outcome_rx.try_recv() {
            if let Some(outcome) = self.admit_outcome(outcome) {
                return Some(outcome);
            }
        }
        None
    }

    /// Collects one completed outcome, waiting up to `timeout`.
    #[must_use]
    pub fn collect_timeout(&self, timeout: Duration) -> Option<PoolOutcome> {
        self.maintain();
        if let Some(synth) = lock_clean(&self.synthesized).pop_front() {
            return Some(synth);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            match self.outcome_rx.recv_timeout(left) {
                Ok(outcome) => {
                    if let Some(outcome) = self.admit_outcome(outcome) {
                        return Some(outcome);
                    }
                }
                Err(_) => return None,
            }
        }
    }

    /// Closes the task channel, drains the workers and returns their
    /// final records (including schedule-cache counters accumulated
    /// over the pool's whole lifetime, and the records of any workers
    /// that died and were respawned). Outcomes still in flight when
    /// shutdown is called are discarded — collect (or use
    /// [`WorkerPool::shutdown_drain`]) before shutting down.
    #[must_use]
    pub fn shutdown(self) -> Vec<WorkerStats> {
        drop(self.task_tx);
        let handles = std::mem::take(&mut *lock_clean(&self.handles));
        let mut stats: Vec<WorkerStats> = lock_clean(&self.retired).drain(..).collect();
        stats.extend(
            handles
                .into_iter()
                .map(|(_, h)| h.join().unwrap_or_default()),
        );
        stats
    }

    /// Graceful shutdown: closes the task channel, collects in-flight
    /// outcomes for up to `drain`, then joins the workers. Returns
    /// the worker records, the outcomes drained while shutting down,
    /// and whether the drain deadline expired with work still in
    /// flight (those workers are detached, not abandoned mid-job —
    /// they exit when their current job completes).
    #[must_use]
    pub fn shutdown_drain(self, drain: Duration) -> (Vec<WorkerStats>, Vec<PoolOutcome>, bool) {
        drop(self.task_tx);
        let deadline = Instant::now() + drain;
        let mut drained: Vec<PoolOutcome> = lock_clean(&self.synthesized).drain(..).collect();
        let handles = std::mem::take(&mut *lock_clean(&self.handles));
        let mut timed_out = false;
        for (_, handle) in &handles {
            // Wait for each worker to finish its current job, pulling
            // outcomes as they stream back so the channel never fills.
            while !handle.is_finished() {
                if Instant::now() >= deadline {
                    timed_out = true;
                    break;
                }
                if let Ok(outcome) = self.outcome_rx.recv_timeout(Duration::from_millis(1)) {
                    drained.push(outcome);
                }
            }
            if timed_out {
                break;
            }
        }
        let mut stats: Vec<WorkerStats> = lock_clean(&self.retired).drain(..).collect();
        for (_, handle) in handles {
            if timed_out && !handle.is_finished() {
                // Bounded drain: detach the straggler. It exits after
                // its current job since the task channel is closed.
                continue;
            }
            stats.push(handle.join().unwrap_or_default());
        }
        while let Ok(outcome) = self.outcome_rx.try_recv() {
            drained.push(outcome);
        }
        (stats, drained, timed_out)
    }
}

fn spawn_worker(
    worker: usize,
    ctx: &SpawnCtx,
    shared: &Arc<PoolShared>,
) -> JoinHandle<WorkerStats> {
    let config = ctx.config.clone();
    let powers = ctx.powers;
    let leak_fracs = ctx.leak_fracs;
    let task_rx = Arc::clone(&ctx.task_rx);
    let outcome_tx = ctx.outcome_tx.clone();
    let telemetry = ctx.telemetry.clone();
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        worker_loop(
            worker,
            &config,
            powers,
            leak_fracs,
            &task_rx,
            &outcome_tx,
            &telemetry,
            &shared,
        )
    })
}

#[allow(clippy::too_many_lines)]
#[allow(clippy::too_many_arguments)] // one slot per pool-shared resource handed to the thread
fn worker_loop(
    worker: usize,
    config: &EngineConfig,
    powers: [f64; 3],
    leak_fracs: [f64; 3],
    task_rx: &Mutex<Receiver<PoolTask>>,
    outcome_tx: &Sender<PoolOutcome>,
    telemetry: &Telemetry,
    shared: &PoolShared,
) -> WorkerStats {
    let mut backends: [Option<Box<dyn InferenceBackend>>; 3] = [None, None, None];
    let mut sink = telemetry.sink();
    let track = telemetry.track(&format!("worker{worker}"), Clock::Wall, 0);
    let mut stats = WorkerStats {
        worker,
        ..WorkerStats::default()
    };
    loop {
        // Holding the lock while blocked on recv serialises task
        // pickup, which is exactly the semantics we want: one waiter
        // takes the next task, the rest queue on the mutex. A
        // poisoned lock (a sibling died holding it) is recovered, not
        // propagated — the receiver itself is still sound.
        let task = lock_clean(task_rx).recv();
        let Ok(PoolTask {
            job,
            backend: kind,
            assignment,
            device,
            attempt,
            inject,
            freq_level,
        }) = task
        else {
            break; // channel closed: pool is shutting down
        };
        let inflight_key = (job.id, attempt);
        if let Some(base) = shared.watchdog {
            lock_clean(&shared.inflight).insert(
                inflight_key,
                Inflight {
                    backend: kind,
                    device,
                    started: Instant::now(),
                    deadline: watchdog_deadline(base, kind),
                },
            );
        }
        // Chaos hook: the seeded plan may fail this attempt before
        // (or instead of) executing it. Disabled injectors return
        // None in one branch.
        let fault = if inject {
            shared
                .injector
                .decide(job.id, attempt, device, kind_index(kind))
        } else {
            None
        };
        if let Some(fault) = fault {
            telemetry.count(Counter::FaultsInjected, 1);
            sink.instant(
                track,
                Stage::Fault,
                telemetry.now_ns(),
                job.id,
                fault as u64,
            );
            match fault {
                FaultKind::Transient | FaultKind::DeviceFault => {
                    if shared.watchdog.is_some() {
                        lock_clean(&shared.inflight).remove(&inflight_key);
                    }
                    let outcome = PoolOutcome {
                        job_id: job.id,
                        backend: kind,
                        device,
                        attempt,
                        result: Err(RuntimeError::InjectedFault {
                            job_id: job.id,
                            device,
                        }),
                    };
                    if outcome_tx.send(outcome).is_err() {
                        break;
                    }
                    continue;
                }
                FaultKind::WorkerPanic => {
                    // Report the failure, then die: the pool's
                    // maintenance pass must notice the dead thread
                    // and respawn it to restore capacity.
                    if shared.watchdog.is_some() {
                        lock_clean(&shared.inflight).remove(&inflight_key);
                    }
                    let _ = outcome_tx.send(PoolOutcome {
                        job_id: job.id,
                        backend: kind,
                        device,
                        attempt,
                        result: Err(RuntimeError::WorkerPanicked { worker }),
                    });
                    break;
                }
                FaultKind::Stall => {
                    // Wedge past the watchdog deadline, then proceed:
                    // the watchdog cancels this attempt and the
                    // honest (late) outcome is discarded on collect.
                    let nap = shared
                        .watchdog
                        .map_or(Duration::from_millis(20), |d| d * 3)
                        .min(Duration::from_secs(1));
                    std::thread::sleep(nap);
                }
            }
        }
        let start = Instant::now();
        let start_ns = telemetry.now_ns();
        // A panicking backend must not silently lose the outcome:
        // the serving layer above counts in-flight jobs, and a
        // missing completion would wedge its dispatch gate forever.
        let executed = {
            let backend = backends[kind_index(kind)].get_or_insert_with(|| {
                let mut backend = kind.instantiate(
                    config.tempus,
                    config.nvdla,
                    config.gemm_grid,
                    config.num_arrays,
                );
                backend.set_streaming(config.streaming);
                backend
            });
            catch_unwind(AssertUnwindSafe(|| {
                backend.execute_on(&job, assignment.granted.max(1))
            }))
        };
        let result = match executed {
            Ok(executed) => executed.map(|run| {
                let wall_ns = start.elapsed().as_nanos() as u64;
                stats.jobs += 1;
                stats.sim_cycles += run.sim_cycles;
                stats.wall_ns += wall_ns;
                sink.span(
                    track,
                    Stage::Execute,
                    start_ns,
                    wall_ns,
                    job.id,
                    run.window_cycles,
                );
                if run.window_cycles > 0 {
                    telemetry.count(Counter::WindowCycles, run.window_cycles);
                }
                // Calibrated nominal energy, split into its
                // dynamic/static shares, then scaled to the
                // placement's DVFS level: dynamic ∝ V², static
                // ∝ (period ×) · V. At level 0 every factor is
                // exactly 1.0, reproducing the pre-split figure
                // bit-for-bit.
                let nominal_pj =
                    powers[kind_index(kind)] * run.total_array_cycles as f64 * PERIOD_NS;
                let leak = leak_fracs[kind_index(kind)];
                let lvl = tempus_core::freq::level(freq_level);
                let vscale = lvl.vscale_permille as f64 / tempus_core::freq::VSCALE_ONE as f64;
                let stretch = f64::from(lvl.period_num) / f64::from(lvl.period_den.max(1));
                let dynamic_nom = nominal_pj * (1.0 - leak);
                let static_nom = nominal_pj - dynamic_nom;
                let dynamic_energy_pj = dynamic_nom * vscale * vscale;
                let static_energy_pj = static_nom * stretch * vscale;
                let energy_pj = if freq_level == 0 {
                    nominal_pj
                } else {
                    dynamic_energy_pj + static_energy_pj
                };
                JobResult {
                    job_id: job.id,
                    job_name: job.name.clone(),
                    kind: job.payload.kind(),
                    output: run.output,
                    sim_cycles: run.sim_cycles,
                    total_array_cycles: run.total_array_cycles,
                    shards: run.shards,
                    shard_utilization: run.shard_utilization,
                    arrays_requested: assignment.requested,
                    arrays_granted: assignment.granted.max(1),
                    array_wait_cycles: assignment.wait_cycles,
                    energy_pj,
                    dynamic_energy_pj,
                    static_energy_pj,
                    freq_level,
                    wall_ns,
                    worker,
                    per_shard_cycles: run.per_shard_cycles,
                    reduction_cycles: run.reduction_cycles,
                    window_cycles: run.window_cycles,
                    peak_scratch_elems: run.peak_scratch_elems,
                }
            }),
            Err(_) => {
                // The backend's internal state is suspect after an
                // unwind; drop it and re-instantiate on next use.
                backends[kind_index(kind)] = None;
                Err(RuntimeError::WorkerPanicked { worker })
            }
        };
        if shared.watchdog.is_some() {
            lock_clean(&shared.inflight).remove(&inflight_key);
        }
        let outcome = PoolOutcome {
            job_id: job.id,
            backend: kind,
            device,
            attempt,
            result,
        };
        if outcome_tx.send(outcome).is_err() {
            break; // collector gone: nothing left to work for
        }
    }
    let mut cache: Option<CacheStats> = None;
    for backend in backends.iter().flatten() {
        if let Some(cs) = backend.cache_stats() {
            cache.get_or_insert_with(CacheStats::default).merge(&cs);
        }
    }
    stats.schedule_cache = cache;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempus_chaos::FaultPlan;
    use tempus_core::gemm::Matrix;

    fn gemm_job(id: u64, salt: i32) -> Job {
        let a = Matrix::from_fn(5, 6, move |r, c| {
            ((r as i32 * 31 + c as i32 * 17 + salt) % 255) - 127
        });
        let b = Matrix::from_fn(6, 4, move |r, c| {
            ((r as i32 * 13 + c as i32 * 41 + salt) % 255) - 127
        });
        Job::gemm(id, format!("gemm-{id}"), a, b)
    }

    #[test]
    fn zero_workers_rejected() {
        let cfg = EngineConfig::new(BackendKind::FastFunctional).with_workers(0);
        assert!(matches!(
            WorkerPool::spawn(cfg),
            Err(RuntimeError::NoWorkers)
        ));
    }

    #[test]
    fn incremental_submission_round_trips() {
        let pool =
            WorkerPool::spawn(EngineConfig::new(BackendKind::FastFunctional).with_workers(2))
                .unwrap();
        for id in 0..10u64 {
            pool.submit(gemm_job(id, id as i32), BackendKind::FastFunctional)
                .unwrap();
        }
        let mut seen = Vec::new();
        while seen.len() < 10 {
            let outcome = pool
                .collect_timeout(Duration::from_secs(10))
                .expect("outcome arrives");
            seen.push(outcome.job_id);
            assert!(outcome.result.is_ok());
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        let stats = pool.shutdown();
        assert_eq!(stats.iter().map(|w| w.jobs).sum::<u64>(), 10);
    }

    #[test]
    fn mixed_fidelity_agrees_on_outputs() {
        let pool =
            WorkerPool::spawn(EngineConfig::new(BackendKind::FastFunctional).with_workers(2))
                .unwrap();
        let job = gemm_job(0, 3);
        pool.submit(job.clone(), BackendKind::FastFunctional)
            .unwrap();
        let mut fast = None;
        let mut accurate = None;
        pool.submit(Job { id: 1, ..job }, BackendKind::TempusCycleAccurate)
            .unwrap();
        for _ in 0..2 {
            let outcome = pool
                .collect_timeout(Duration::from_secs(10))
                .expect("outcome arrives");
            let result = outcome.result.unwrap();
            match outcome.backend {
                BackendKind::FastFunctional => fast = Some(result),
                BackendKind::TempusCycleAccurate => accurate = Some(result),
                BackendKind::NvdlaCycleAccurate => unreachable!(),
            }
        }
        let (f, a) = (fast.unwrap(), accurate.unwrap());
        assert_eq!(f.output.digest(), a.output.digest());
        assert_eq!(f.sim_cycles, a.sim_cycles);
    }

    #[test]
    fn job_errors_do_not_kill_workers() {
        let pool =
            WorkerPool::spawn(EngineConfig::new(BackendKind::FastFunctional).with_workers(1))
                .unwrap();
        let bad = Job::gemm(0, "mismatched", Matrix::zeros(2, 3), Matrix::zeros(4, 2));
        pool.submit(bad, BackendKind::FastFunctional).unwrap();
        let outcome = pool.collect_timeout(Duration::from_secs(10)).unwrap();
        assert!(matches!(outcome.result, Err(RuntimeError::Arith(_))));
        // The worker survives and serves the next job.
        pool.submit(gemm_job(1, 0), BackendKind::FastFunctional)
            .unwrap();
        let outcome = pool.collect_timeout(Duration::from_secs(10)).unwrap();
        assert!(outcome.result.is_ok());
        let stats = pool.shutdown();
        assert_eq!(stats.iter().map(|w| w.jobs).sum::<u64>(), 1);
    }

    #[test]
    fn injected_transient_fault_fails_attempt_but_not_retry() {
        // Rate 1.0, all transient: attempt 0 always faults; a retry
        // submitted with inject: false must succeed.
        let injector = FaultInjector::enabled(FaultPlan::new(11, 1.0).with_weights(0, 0));
        let pool = WorkerPool::spawn_chaos(
            EngineConfig::new(BackendKind::FastFunctional).with_workers(1),
            Telemetry::disabled(),
            injector,
            None,
        )
        .unwrap();
        pool.submit(gemm_job(7, 1), BackendKind::FastFunctional)
            .unwrap();
        let outcome = pool.collect_timeout(Duration::from_secs(10)).unwrap();
        assert!(matches!(
            outcome.result,
            Err(RuntimeError::InjectedFault { job_id: 7, .. })
        ));
        pool.submit_routed(PoolTask {
            job: gemm_job(7, 1),
            backend: BackendKind::FastFunctional,
            assignment: ArrayAssignment::full(1),
            device: 0,
            attempt: 1,
            inject: false,
            freq_level: 0,
        })
        .unwrap();
        let outcome = pool.collect_timeout(Duration::from_secs(10)).unwrap();
        assert!(outcome.result.is_ok());
        assert_eq!(outcome.attempt, 1);
        let _ = pool.shutdown();
    }

    #[test]
    fn dead_workers_are_respawned() {
        // Every injected fault is a worker death. The single worker
        // dies on the first job; the pool must respawn it so an
        // injection-exempt follow-up still completes.
        let injector = FaultInjector::enabled(FaultPlan::new(5, 1.0).with_weights(16, 0));
        let pool = WorkerPool::spawn_chaos(
            EngineConfig::new(BackendKind::FastFunctional).with_workers(1),
            Telemetry::disabled(),
            injector,
            None,
        )
        .unwrap();
        pool.submit(gemm_job(0, 2), BackendKind::FastFunctional)
            .unwrap();
        let outcome = pool.collect_timeout(Duration::from_secs(10)).unwrap();
        assert!(matches!(
            outcome.result,
            Err(RuntimeError::WorkerPanicked { .. })
        ));
        // Collect calls run maintenance; wait for the respawn.
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.respawns() == 0 && Instant::now() < deadline {
            let _ = pool.try_collect();
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(pool.respawns() >= 1);
        pool.submit_routed(PoolTask {
            job: gemm_job(1, 2),
            backend: BackendKind::FastFunctional,
            assignment: ArrayAssignment::full(1),
            device: 0,
            attempt: 1,
            inject: false,
            freq_level: 0,
        })
        .unwrap();
        let outcome = pool.collect_timeout(Duration::from_secs(10)).unwrap();
        assert!(outcome.result.is_ok());
        let _ = pool.shutdown();
    }

    #[test]
    fn watchdog_cancels_stalled_jobs_and_discards_late_outcome() {
        // Every injected fault is a stall; the watchdog (20ms base,
        // stall sleeps 3×) must synthesize a StuckJob failure and
        // later drop the honest-but-late outcome.
        let injector = FaultInjector::enabled(FaultPlan::new(3, 1.0).with_weights(0, 16));
        let pool = WorkerPool::spawn_chaos(
            EngineConfig::new(BackendKind::FastFunctional).with_workers(1),
            Telemetry::disabled(),
            injector,
            Some(Duration::from_millis(20)),
        )
        .unwrap();
        pool.submit(gemm_job(9, 4), BackendKind::FastFunctional)
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        let outcome = loop {
            if let Some(o) = pool.try_collect() {
                break o;
            }
            assert!(Instant::now() < deadline, "watchdog never fired");
            std::thread::sleep(Duration::from_millis(5));
        };
        assert!(matches!(
            outcome.result,
            Err(RuntimeError::StuckJob { job_id: 9 })
        ));
        assert_eq!(pool.watchdog_cancels(), 1);
        // The stalled attempt's real outcome must be swallowed.
        assert!(pool.collect_timeout(Duration::from_millis(300)).is_none());
        let _ = pool.shutdown();
    }

    #[test]
    fn shutdown_drain_returns_inflight_outcomes() {
        let pool =
            WorkerPool::spawn(EngineConfig::new(BackendKind::FastFunctional).with_workers(2))
                .unwrap();
        for id in 0..8u64 {
            pool.submit(gemm_job(id, id as i32), BackendKind::FastFunctional)
                .unwrap();
        }
        let (stats, drained, timed_out) = pool.shutdown_drain(Duration::from_secs(10));
        assert!(!timed_out);
        assert_eq!(drained.len(), 8);
        assert_eq!(stats.iter().map(|w| w.jobs).sum::<u64>(), 8);
    }
}
