//! **tempus-runtime**: a batched, multi-threaded inference engine over
//! the Tempus Core reproduction, with pluggable fast/cycle-accurate
//! backends.
//!
//! The paper positions Tempus Core as a drop-in convolution core for
//! edge DLAs serving real workloads; this crate supplies the serving
//! layer above the core — in the spirit of the streaming/scheduling
//! frameworks the related Tempus/tuGEMM work argues for:
//!
//! * [`job`] — request-oriented work units: single convolutions, GEMMs
//!   (the tuGEMM workload shape) and whole networks;
//! * [`backend`] — one [`InferenceBackend`] trait, three
//!   implementations: the cycle-accurate Tempus Core
//!   ([`TempusBackend`]), the cycle-accurate NVDLA binary baseline
//!   ([`NvdlaBackend`]), and the **fast functional backend**
//!   ([`FunctionalBackend`]) that computes bit-identical outputs
//!   through the golden models while reporting Tempus latency via the
//!   closed-form model — orders of magnitude faster for large sweeps;
//! * [`engine`] — the worker pool: a deterministic seeded scheduler
//!   permutes the batch and deals it round-robin to worker threads,
//!   each owning its core instance and per-worker CSC stripe-schedule
//!   cache ([`tempus_core::schedule`]);
//! * [`pool`] — the resident [`WorkerPool`]: incremental one-job-at-a-
//!   time submission with streaming outcomes and per-worker backends
//!   that persist (caches included) across submissions — the substrate
//!   the `tempus-serve` streaming service builds on;
//! * [`ledger`] — the **array-slot scheduler**: a device-time
//!   [`ArrayLedger`] modelling the N PE arrays as a shared pool with
//!   per-array busy-until clocks, granting concurrent jobs disjoint
//!   array sets instead of handing every job the whole core;
//! * [`planner`] — the cost-aware [`ArrayPlanner`]: picks how many
//!   arrays a job should take by walking the closed-form width/cost
//!   curve until the marginal speedup of one more array stops paying;
//! * [`stats`] — aggregate throughput/latency/energy statistics,
//!   including the device-time makespan and packing efficiency.
//!
//! Equivalence contract (enforced by tests): for any job, all three
//! backends produce **bit-identical outputs**, and the functional
//! backend's closed-form cycles equal the cycle-accurate Tempus
//! simulation exactly.
//!
//! # Example
//!
//! ```
//! use tempus_runtime::{BackendKind, EngineConfig, InferenceEngine, Job};
//! use tempus_nvdla::conv::ConvParams;
//! use tempus_nvdla::cube::{DataCube, KernelSet};
//!
//! # fn main() -> Result<(), tempus_runtime::RuntimeError> {
//! let jobs: Vec<Job> = (0..8)
//!     .map(|i| {
//!         let f = DataCube::from_fn(5, 5, 4, move |x, y, c| {
//!             ((x + 2 * y + c + i as usize) % 17) as i32 - 8
//!         });
//!         let k = KernelSet::from_fn(4, 3, 3, 4, |k, r, s, c| ((k + r + s + c) % 9) as i32 - 4);
//!         Job::conv(i, format!("layer-{i}"), f, k, ConvParams::valid())
//!     })
//!     .collect();
//!
//! let fast = InferenceEngine::new(EngineConfig::new(BackendKind::FastFunctional))?;
//! let accurate = InferenceEngine::new(EngineConfig::new(BackendKind::TempusCycleAccurate))?;
//! let f = fast.run_batch(&jobs)?;
//! let a = accurate.run_batch(&jobs)?;
//! assert_eq!(f.output_digest(), a.output_digest());           // bit-identical
//! assert_eq!(f.aggregate.total_sim_cycles, a.aggregate.total_sim_cycles);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod engine;
mod error;
pub mod job;
pub mod ledger;
pub mod planner;
pub mod pool;
pub mod stats;

pub use backend::{
    BackendKind, Execution, FunctionalBackend, InferenceBackend, NvdlaBackend, StreamingConfig,
    TempusBackend,
};
pub use engine::{BatchReport, EngineConfig, InferenceEngine};
pub use error::RuntimeError;
pub use job::{Job, JobOutput, JobPayload, JobResult};
pub use ledger::{
    ArrayAssignment, ArrayLedger, ArrayPolicy, DeviceSummary, FreqChange, GovernorPolicy, Placement,
};
pub use planner::ArrayPlanner;
pub use pool::{PoolOutcome, PoolTask, WorkerPool};
pub use stats::{AggregateStats, WorkerStats};
