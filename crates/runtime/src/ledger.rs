//! Device-time array-slot ledger: the N PE arrays as a shared pool.
//!
//! PR 4 made every job shard across *all* `num_arrays` PE arrays —
//! worker-granular dispatch, where a job implicitly owns the whole
//! multi-array core for its duration. On fixed edge silicon serving
//! mixed traffic that is wasteful: a wide convolution that saturates
//! 8 arrays should not force a one-kernel-group GEMM to wait, and an
//! idle array is pure leakage. This module supplies the array-slot
//! view of the same silicon:
//!
//! * [`ArrayLedger`] — per-array **busy-until clocks** in device time
//!   (datapath cycles at the paper's 250 MHz). Jobs are placed one at
//!   a time; each placement grants a **disjoint** set of arrays, so
//!   wide and narrow jobs are co-resident whenever the clocks allow.
//! * [`ArrayAssignment`] — the per-job grant threaded through the
//!   pool to the backends: `requested` (the cost-aware width from
//!   [`plan_for_budget`](tempus_core::shard::plan_for_budget)),
//!   `granted` (what the ledger actually handed over) and
//!   `wait_cycles` (device time spent gathering the granted set).
//! * [`ArrayPolicy`] — the dispatch policy switch:
//!   [`ArrayPolicy::AllArrays`] reproduces PR 4 exactly (and stays
//!   bit-identical), [`ArrayPolicy::CostAware`] runs the budget
//!   planner and the ledger.
//!
//! Placement is **deterministic**: given the same placement order and
//! the same width/cost curves, grants, starts and waits are
//! bit-for-bit reproducible — no host timing enters the model. The
//! grant policy is finish-time aware: when fewer arrays are idle than
//! a job requested, the ledger compares *finishing earlier on the
//! idle arrays* against *waiting to gather the full request* using
//! the job's own cost curve, and takes whichever completes first
//! (ties prefer shrinking — it frees the queue behind).
//!
//! Every placement decision is split into a pure **preview** (compute
//! the [`Placement`] from `&self`) and an **apply** (commit it) so
//! schedulers above the ledger — the fleet device picker in
//! `tempus-fleet` — can price candidate devices without mutating
//! them. The ledger also keeps the **idle gaps** its grants open: when
//! a job waits to gather arrays, the early-freeing arrays sit idle
//! between their previous grant and the gathered start. Those gaps
//! are recorded per array (count and array-cycles in
//! [`DeviceSummary`]) and can be **backfilled**: a narrow job whose
//! whole `[start, start + duration)` interval fits inside recorded
//! gaps is placed *without moving any busy-until clock*, so it
//! provably delays no previously granted job.

use tempus_core::freq;
use tempus_core::shard::{BudgetPlan, WidenPolicy};

/// How jobs are granted PE arrays.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum ArrayPolicy {
    /// PR 4 semantics: every job takes the whole multi-array core
    /// (the shard planner still decides how many arrays it can use).
    #[default]
    AllArrays,
    /// Cost-aware co-scheduling: the budget planner picks the width,
    /// the ledger packs concurrent jobs onto disjoint array sets.
    CostAware(WidenPolicy),
}

impl ArrayPolicy {
    /// `true` for the co-scheduling policy.
    #[must_use]
    pub fn co_schedules(&self) -> bool {
        matches!(self, ArrayPolicy::CostAware(_))
    }
}

/// One job's array grant, threaded from the scheduler through the
/// worker pool into [`JobResult`](crate::job::JobResult).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayAssignment {
    /// Arrays the cost-aware planner asked for (equals the full
    /// configured width under [`ArrayPolicy::AllArrays`]).
    pub requested: usize,
    /// Arrays the ledger granted — the width the backend executes
    /// with. Equal grants produce bit-identical outputs and cycles to
    /// a backend configured with that array count.
    pub granted: usize,
    /// Device cycles the job waited past the earliest free array to
    /// gather its granted set (0 when it started on idle arrays).
    pub wait_cycles: u64,
}

impl ArrayAssignment {
    /// The whole-core grant of PR 4: requested = granted = the full
    /// configured width, no array wait.
    #[must_use]
    pub fn full(num_arrays: usize) -> Self {
        let n = num_arrays.max(1);
        ArrayAssignment {
            requested: n,
            granted: n,
            wait_cycles: 0,
        }
    }
}

/// One placement decision, with the device-time bookkeeping the
/// assignment alone does not carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// The grant handed to the job.
    pub assignment: ArrayAssignment,
    /// Device cycle the job's arrays were all free (its start).
    pub start_cycle: u64,
    /// Predicted device cycles the job holds its arrays.
    pub duration_cycles: u64,
    /// Predicted array-cycles of real work (summed shard cycles) —
    /// what the busy accounting credits when the placement commits.
    pub work_cycles: u64,
    /// `true` when the placement sits entirely inside recorded idle
    /// gaps: committing it moves no busy-until clock and can delay no
    /// previously granted job.
    pub backfilled: bool,
    /// Array ids held busy — disjoint from every co-resident job's.
    pub arrays: Vec<usize>,
    /// Duration at the nominal clock (DVFS level 0). `duration_cycles`
    /// is this stretched to `freq_level` — kept separately because
    /// the ceil stretch is not invertible.
    pub nominal_duration_cycles: u64,
    /// DVFS ladder level the placement's arrays run at (0 = nominal
    /// 250 MHz; the max over the granted arrays' governor levels).
    pub freq_level: u8,
}

impl Placement {
    /// Device cycle the placed job finishes.
    #[must_use]
    pub fn finish_cycle(&self) -> u64 {
        self.start_cycle + self.duration_cycles
    }

    /// This placement re-priced at DVFS level `level`: the duration is
    /// re-stretched from the nominal figure (`ceil` scaling, exact
    /// integers). Start cycle, grant and arrays are unchanged — the
    /// power-capped admission path walks ladder levels through this.
    #[must_use]
    pub fn at_level(&self, level: u8) -> Placement {
        let mut p = self.clone();
        p.freq_level = level;
        p.duration_cycles = freq::level(level).scale_cycles(self.nominal_duration_cycles);
        p
    }
}

/// One per-array frequency transition decided by the occupancy
/// governor, on the device clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreqChange {
    /// Array whose clock domain stepped.
    pub array: usize,
    /// The new DVFS ladder level.
    pub level: u8,
    /// Device cycle the step takes effect (the committing placement's
    /// finish).
    pub cycle: u64,
}

/// The deterministic occupancy-driven DVFS governor: each array keeps
/// an idle-fraction EWMA (permille) updated on every committed grant;
/// silent-heavy arrays step **down** the frequency ladder, saturated
/// arrays step back up. A pure function of the placement trace — no
/// host timing enters, so replaying the same trace yields the same
/// ladder walk bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GovernorPolicy {
    /// Deepest ladder level the governor may select.
    pub max_level: u8,
    /// Idle-fraction EWMA (permille) below which an array steps one
    /// level back up (toward the nominal clock).
    pub low_permille: u32,
    /// Idle-fraction EWMA (permille) above which an array steps one
    /// level down (slower clock, lower voltage).
    pub high_permille: u32,
}

impl GovernorPolicy {
    /// The edge-serving default: full ladder, step down past 50% idle,
    /// step up under 20% idle.
    #[must_use]
    pub fn edge_default() -> Self {
        GovernorPolicy {
            max_level: (freq::NUM_LEVELS - 1) as u8,
            low_permille: 200,
            high_permille: 500,
        }
    }
}

/// Aggregated device-time counters, published by the ledger (and, in
/// `AllArrays` mode, accumulated serially from completed jobs).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceSummary {
    /// Arrays the modelled device has.
    pub num_arrays: usize,
    /// Device cycle the last placed job finishes — the makespan of
    /// everything placed so far.
    pub makespan_cycles: u64,
    /// Array-cycles actually held busy across all placements.
    pub busy_cycles: u64,
    /// Device cycles jobs spent waiting to gather their arrays.
    pub wait_cycles: u64,
    /// Jobs placed.
    pub placements: u64,
    /// Sum of granted widths over all placements.
    pub granted_sum: u64,
    /// Idle gaps opened between grants: every time a grant started
    /// later than an array's previous busy-until, that array sat idle
    /// in between. Counts one per (array, gap) pair.
    pub idle_gap_count: u64,
    /// Net idle array-cycles across those gaps (opened minus
    /// reclaimed by backfilling) — the waste backfilling closes.
    pub idle_gap_cycles: u64,
    /// Placements committed entirely inside idle gaps.
    pub backfills: u64,
    /// Device array-cycles held at each DVFS ladder level (all in
    /// slot 0 with the governor off).
    pub level_residency: [u64; freq::NUM_LEVELS],
    /// Per-array frequency transitions the governor committed.
    pub freq_changes: u64,
}

impl DeviceSummary {
    /// Packing efficiency: busy array-cycles over the
    /// `num_arrays × makespan` device-time area (1.0 when nothing has
    /// been placed).
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        let area = self.num_arrays.max(1) as u64 * self.makespan_cycles;
        if area == 0 {
            1.0
        } else {
            self.busy_cycles as f64 / area as f64
        }
    }

    /// Mean arrays granted per placement (1.0 when nothing placed).
    #[must_use]
    pub fn avg_arrays_granted(&self) -> f64 {
        if self.placements == 0 {
            1.0
        } else {
            self.granted_sum as f64 / self.placements as f64
        }
    }
}

/// Most idle gaps remembered per array for backfilling. Older gaps
/// past the bound are forgotten (they stay counted as idle in the
/// summary — they just can no longer be reclaimed), so a long-lived
/// ledger's memory stays constant.
const MAX_GAPS_PER_ARRAY: usize = 32;

/// The array pool in device time: one busy-until clock per array.
#[derive(Debug, Clone)]
pub struct ArrayLedger {
    busy_until: Vec<u64>,
    /// Per-array idle `[from, to)` intervals between grants — sorted,
    /// disjoint, and always ending at or before the array's
    /// busy-until clock. Backfill placements consume from these.
    gaps: Vec<Vec<(u64, u64)>>,
    busy_cycles: u64,
    wait_cycles: u64,
    placements: u64,
    granted_sum: u64,
    gap_count: u64,
    gap_cycles: u64,
    backfills: u64,
    /// The occupancy-driven DVFS governor; `None` (the default) runs
    /// every array at the nominal clock and executes zero governor
    /// code — the pre-DVFS scheduler bit-for-bit.
    governor: Option<GovernorPolicy>,
    /// Per-array current DVFS ladder level.
    levels: Vec<u8>,
    /// Per-array idle-fraction EWMA, permille.
    idle_ewma_permille: Vec<u32>,
    /// Governor transitions not yet drained by the layer above.
    pending_freq_changes: Vec<FreqChange>,
    /// Total governor transitions committed (survives draining).
    freq_change_count: u64,
    /// Device array-cycles held at each ladder level.
    level_residency: [u64; freq::NUM_LEVELS],
}

impl ArrayLedger {
    /// A ledger over `num_arrays` idle arrays (clamped to ≥ 1).
    #[must_use]
    pub fn new(num_arrays: usize) -> Self {
        ArrayLedger::starting_at(num_arrays, 0)
    }

    /// A ledger whose arrays all free at `cycle` — a device joining a
    /// fleet on a ledger-clock boundary starts here, so its clocks
    /// line up with the devices already running.
    #[must_use]
    pub fn starting_at(num_arrays: usize, cycle: u64) -> Self {
        let n = num_arrays.max(1);
        ArrayLedger {
            busy_until: vec![cycle; n],
            gaps: vec![Vec::new(); n],
            busy_cycles: 0,
            wait_cycles: 0,
            placements: 0,
            granted_sum: 0,
            gap_count: 0,
            gap_cycles: 0,
            backfills: 0,
            governor: None,
            levels: vec![0; n],
            idle_ewma_permille: vec![0; n],
            pending_freq_changes: Vec::new(),
            freq_change_count: 0,
            level_residency: [0; freq::NUM_LEVELS],
        }
    }

    /// Enables the occupancy-driven DVFS governor. Without this call
    /// the ledger never leaves the nominal level and stays
    /// bit-identical to the pre-DVFS scheduler.
    #[must_use]
    pub fn with_governor(mut self, governor: GovernorPolicy) -> Self {
        self.governor = Some(governor);
        self
    }

    /// The configured governor, if any.
    #[must_use]
    pub fn governor(&self) -> Option<GovernorPolicy> {
        self.governor
    }

    /// Per-array current DVFS ladder levels.
    #[must_use]
    pub fn array_levels(&self) -> &[u8] {
        &self.levels
    }

    /// Drains the governor's committed frequency transitions since the
    /// last drain, in commit order — the fleet layer lowers these into
    /// telemetry events.
    pub fn drain_freq_changes(&mut self) -> Vec<FreqChange> {
        std::mem::take(&mut self.pending_freq_changes)
    }

    /// Arrays in the pool.
    #[must_use]
    pub fn num_arrays(&self) -> usize {
        self.busy_until.len()
    }

    /// Device cycle the earliest array frees — the time at which the
    /// scheduler next looks at the queue. Monotone non-decreasing
    /// across placements.
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.busy_until.iter().copied().min().unwrap_or(0)
    }

    /// Device cycle the last array frees — the makespan of everything
    /// placed so far.
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.busy_until.iter().copied().max().unwrap_or(0)
    }

    /// Aggregated counters for stats snapshots.
    #[must_use]
    pub fn summary(&self) -> DeviceSummary {
        DeviceSummary {
            num_arrays: self.num_arrays(),
            makespan_cycles: self.makespan(),
            busy_cycles: self.busy_cycles,
            wait_cycles: self.wait_cycles,
            placements: self.placements,
            granted_sum: self.granted_sum,
            idle_gap_count: self.gap_count,
            idle_gap_cycles: self.gap_cycles,
            backfills: self.backfills,
            level_residency: self.level_residency,
            freq_changes: self.freq_change_count,
        }
    }

    /// The per-array busy-until clocks — the invariant surface the
    /// backfilling contract is stated on (a backfill commit leaves
    /// every clock unchanged).
    #[must_use]
    pub fn busy_clocks(&self) -> &[u64] {
        &self.busy_until
    }

    /// Forgets idle gaps ending at or before `cycle`: with monotone
    /// arrivals they can never be backfilled again. Their cycles stay
    /// counted as idle in the summary.
    pub fn prune_gaps_before(&mut self, cycle: u64) {
        for per_array in &mut self.gaps {
            per_array.retain(|&(_, e)| e > cycle);
        }
    }

    /// Effective DVFS level of a grant: the max over its arrays'
    /// current governor levels, clamped by the governor's ceiling
    /// (0 — and zero work — with the governor off).
    fn effective_level(&self, arrays: &[usize]) -> u8 {
        match self.governor {
            None => 0,
            Some(g) => arrays
                .iter()
                .map(|&i| self.levels[i])
                .max()
                .unwrap_or(0)
                .min(g.max_level),
        }
    }

    /// Array ids sorted by (busy-until, id) — the deterministic grant
    /// order.
    fn freeing_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.busy_until.len()).collect();
        order.sort_by_key(|&i| (self.busy_until[i], i));
        order
    }

    /// Places one job arriving at `arrival_cycle` with the width/cost
    /// curve in `plan`. The grant policy:
    ///
    /// 1. the job is considered at `t = max(arrival, horizon)` — the
    ///    first device cycle an array is free at or after arrival;
    /// 2. if at least `plan.arrays` arrays are idle at `t`, the full
    ///    request is granted and starts immediately;
    /// 3. otherwise the ledger compares **shrink** (start now on the
    ///    idle arrays) against **wait** (gather the full request when
    ///    enough arrays free) by predicted finish time from the
    ///    plan's own cost curve, preferring shrink on ties.
    ///
    /// The busy clocks of the granted arrays advance to
    /// `start + duration`; `wait_cycles` is `start − max(arrival,
    /// horizon)` — the gather penalty beyond the earliest possible
    /// start.
    pub fn place(&mut self, plan: &BudgetPlan, arrival_cycle: u64) -> Placement {
        let placement = self.preview(plan, arrival_cycle);
        self.apply(&placement);
        placement
    }

    /// The placement [`ArrayLedger::place`] would commit, computed
    /// without mutating the ledger — device pickers price candidate
    /// devices with this and [`ArrayLedger::apply`] the winner.
    #[must_use]
    pub fn preview(&self, plan: &BudgetPlan, arrival_cycle: u64) -> Placement {
        let n = self.busy_until.len();
        let requested = plan.arrays.clamp(1, n);
        let order = self.freeing_order();
        let earliest = arrival_cycle.max(self.busy_until[order[0]]);
        let idle = order
            .iter()
            .filter(|&&i| self.busy_until[i] <= earliest)
            .count();
        debug_assert!(idle >= 1, "some array frees by the horizon");
        let (granted, start) = if idle >= requested {
            (requested, earliest)
        } else {
            let gather_start = arrival_cycle.max(self.busy_until[order[requested - 1]]);
            let finish_shrunk = earliest + plan.cost_at(idle).critical_path_cycles;
            let finish_gathered = gather_start + plan.cost_at(requested).critical_path_cycles;
            if finish_shrunk <= finish_gathered {
                (idle, earliest)
            } else {
                (requested, gather_start)
            }
        };
        let cost = plan.cost_at(granted);
        // The shard plan at the granted width may use fewer arrays
        // than granted (e.g. 3 kernel groups under a 4-array grant);
        // only the used ones hold a clock.
        let occupied = cost.used.clamp(1, granted);
        let arrays: Vec<usize> = order.into_iter().take(occupied).collect();
        let freq_level = self.effective_level(&arrays);
        Placement {
            assignment: ArrayAssignment {
                requested,
                granted,
                wait_cycles: start - earliest.min(start),
            },
            start_cycle: start,
            duration_cycles: freq::level(freq_level).scale_cycles(cost.critical_path_cycles),
            work_cycles: cost.total_array_cycles,
            backfilled: false,
            arrays,
            nominal_duration_cycles: cost.critical_path_cycles,
            freq_level,
        }
    }

    /// The placement of `plan` granted exactly `width` arrays (the
    /// gather start for that width; no shrink-vs-wait trade-off) —
    /// deadline-aware admission walks widths through this to find one
    /// whose finish meets the deadline.
    #[must_use]
    pub fn preview_width(&self, plan: &BudgetPlan, width: usize, arrival_cycle: u64) -> Placement {
        let n = self.busy_until.len();
        let requested = plan.arrays.clamp(1, n);
        let granted = width.clamp(1, n);
        let order = self.freeing_order();
        let earliest = arrival_cycle.max(self.busy_until[order[0]]);
        let start = arrival_cycle.max(self.busy_until[order[granted - 1]]);
        let cost = plan.cost_at(granted);
        let occupied = cost.used.clamp(1, granted);
        let arrays: Vec<usize> = order.into_iter().take(occupied).collect();
        let freq_level = self.effective_level(&arrays);
        Placement {
            assignment: ArrayAssignment {
                requested,
                granted,
                wait_cycles: start - earliest.min(start),
            },
            start_cycle: start,
            duration_cycles: freq::level(freq_level).scale_cycles(cost.critical_path_cycles),
            work_cycles: cost.total_array_cycles,
            backfilled: false,
            arrays,
            nominal_duration_cycles: cost.critical_path_cycles,
            freq_level,
        }
    }

    /// Looks for a **backfill** placement: a width whose whole
    /// `[start, start + duration)` interval fits inside idle gaps on
    /// enough arrays, starting at or after `arrival_cycle`. Such a
    /// placement moves no busy-until clock when committed, so it
    /// provably delays no previously granted job — the look-ahead
    /// queue's jump-ahead move. Returns the earliest-finishing fit
    /// (ties prefer narrower grants), or `None` when no gap fits.
    #[must_use]
    pub fn preview_backfill(&self, plan: &BudgetPlan, arrival_cycle: u64) -> Option<Placement> {
        let n = self.busy_until.len();
        let requested = plan.arrays.clamp(1, n);
        let mut best: Option<Placement> = None;
        for granted in 1..=requested {
            let cost = plan.cost_at(granted);
            let duration = cost.critical_path_cycles;
            if duration == 0 {
                continue; // zero-cost fallback plans never backfill
            }
            let occupied = cost.used.clamp(1, granted);
            // Candidate starts: each gap's start clamped to arrival,
            // kept only when the job still fits before the gap ends.
            let mut starts: Vec<u64> = self
                .gaps
                .iter()
                .flatten()
                .filter_map(|&(s, e)| {
                    let t = s.max(arrival_cycle);
                    (t + duration <= e).then_some(t)
                })
                .collect();
            starts.sort_unstable();
            starts.dedup();
            for &t in &starts {
                let arrays: Vec<usize> = (0..n)
                    .filter(|&i| {
                        self.gaps[i]
                            .iter()
                            .any(|&(s, e)| s <= t && t + duration <= e)
                    })
                    .take(occupied)
                    .collect();
                if arrays.len() < occupied {
                    continue;
                }
                // Down-clocked arrays stretch the interval: the fit
                // must hold at the grant's effective level, not the
                // nominal one (identical when the governor is off).
                let freq_level = self.effective_level(&arrays);
                let scaled = freq::level(freq_level).scale_cycles(duration);
                if scaled != duration
                    && !arrays
                        .iter()
                        .all(|&i| self.gaps[i].iter().any(|&(s, e)| s <= t && t + scaled <= e))
                {
                    continue;
                }
                let candidate = Placement {
                    assignment: ArrayAssignment {
                        requested,
                        granted,
                        wait_cycles: t - arrival_cycle.min(t),
                    },
                    start_cycle: t,
                    duration_cycles: scaled,
                    work_cycles: cost.total_array_cycles,
                    backfilled: true,
                    arrays,
                    nominal_duration_cycles: duration,
                    freq_level,
                };
                // The first feasible start is the earliest finish at
                // this width; across widths the earliest finish wins,
                // ties preferring the narrower grant (placed first).
                if best
                    .as_ref()
                    .is_none_or(|b| candidate.finish_cycle() < b.finish_cycle())
                {
                    best = Some(candidate);
                }
                break;
            }
        }
        best
    }

    /// Commits a previewed placement: advances busy clocks and the
    /// aggregate counters for a normal grant, or consumes the matching
    /// idle gaps for a backfill (leaving every clock unchanged).
    ///
    /// # Panics
    ///
    /// Panics (debug) when the placement does not fit the ledger state
    /// it was previewed against — previews must be committed before
    /// any other mutation.
    pub fn apply(&mut self, placement: &Placement) {
        let start = placement.start_cycle;
        let finish = placement.finish_cycle();
        if placement.backfilled {
            for &i in &placement.arrays {
                let gap = self.gaps[i]
                    .iter()
                    .position(|&(s, e)| s <= start && finish <= e)
                    .expect("backfill placement fits a recorded gap");
                let (s, e) = self.gaps[i].remove(gap);
                if s < start {
                    self.gaps[i].push((s, start));
                }
                if finish < e {
                    self.gaps[i].push((finish, e));
                }
                self.gaps[i].sort_unstable();
                self.gap_cycles -= placement.duration_cycles;
            }
            self.backfills += 1;
        } else {
            let governor = self.governor;
            for &i in &placement.arrays {
                debug_assert!(self.busy_until[i] <= start, "granted array still busy");
                let idle = start - self.busy_until[i].min(start);
                if start > self.busy_until[i] {
                    self.open_gap(i, self.busy_until[i], start);
                }
                self.busy_until[i] = finish;
                if let Some(g) = governor {
                    self.govern_array(i, idle, placement.duration_cycles, finish, g);
                }
            }
        }
        self.level_residency[(placement.freq_level as usize).min(freq::NUM_LEVELS - 1)] +=
            placement.arrays.len() as u64 * placement.duration_cycles;
        self.busy_cycles += placement.work_cycles;
        self.wait_cycles += placement.assignment.wait_cycles;
        self.placements += 1;
        self.granted_sum += placement.assignment.granted as u64;
    }

    /// One governor step for array `i` after committing a grant that
    /// left it idle for `idle` cycles and then busy for `busy`: the
    /// idle-fraction EWMA moves a quarter of the way toward this
    /// grant's idle share; crossing the high watermark steps the
    /// array one ladder level down (slower), crossing the low one
    /// steps it back up. Pure integer arithmetic on the placement
    /// trace — deterministic replay preserved.
    fn govern_array(&mut self, i: usize, idle: u64, busy: u64, cycle: u64, g: GovernorPolicy) {
        let total = idle + busy;
        let share = idle.saturating_mul(1000).checked_div(total).unwrap_or(0) as u32;
        let ewma = &mut self.idle_ewma_permille[i];
        *ewma = (*ewma * 3 + share) / 4;
        let current = self.levels[i];
        let next = if *ewma > g.high_permille {
            (current + 1)
                .min(g.max_level)
                .min((freq::NUM_LEVELS - 1) as u8)
        } else if *ewma < g.low_permille {
            current.saturating_sub(1)
        } else {
            current
        };
        if next != current {
            self.levels[i] = next;
            self.freq_change_count += 1;
            self.pending_freq_changes.push(FreqChange {
                array: i,
                level: next,
                cycle,
            });
        }
    }

    /// Reverts a committed placement — the inverse of
    /// [`ArrayLedger::apply`], used by the fleet layer to roll back
    /// grants held by a quarantined device so the work can re-route.
    ///
    /// For a normal grant each granted array's busy-until clock is
    /// pulled back from the placement's finish to its start (freeing
    /// the tail for re-placement); any gap the grant opened when it
    /// gathered stays recorded. For a backfill the consumed gap
    /// interval is re-opened. Reverting is exact when the placement
    /// is the newest commitment on its arrays — the only case the
    /// quarantine path produces, since a quarantined device admits
    /// nothing new. If a later placement already built on top of one
    /// of the arrays (its clock moved past this placement's finish),
    /// that array's clock is left untouched and the revert reports
    /// `false`; the aggregate counters are still unwound so the
    /// placement count stays an exact census of live grants.
    pub fn revert(&mut self, placement: &Placement) -> bool {
        let start = placement.start_cycle;
        let finish = placement.finish_cycle();
        let mut clean = true;
        if placement.backfilled {
            for &i in &placement.arrays {
                // Re-open the consumed interval. It is pushed back as
                // its own gap (not merged with the split remnants), so
                // a future backfill spanning the seam won't see it —
                // conservative, never incorrect.
                self.gaps[i].push((start, finish));
                self.gaps[i].sort_unstable();
                self.gap_cycles += placement.duration_cycles;
            }
            self.backfills = self.backfills.saturating_sub(1);
        } else {
            for &i in &placement.arrays {
                if self.busy_until[i] == finish {
                    self.busy_until[i] = start;
                } else {
                    clean = false;
                }
            }
        }
        let slot = (placement.freq_level as usize).min(freq::NUM_LEVELS - 1);
        self.level_residency[slot] = self.level_residency[slot]
            .saturating_sub(placement.arrays.len() as u64 * placement.duration_cycles);
        self.busy_cycles = self.busy_cycles.saturating_sub(placement.work_cycles);
        self.wait_cycles = self
            .wait_cycles
            .saturating_sub(placement.assignment.wait_cycles);
        self.placements = self.placements.saturating_sub(1);
        self.granted_sum = self
            .granted_sum
            .saturating_sub(placement.assignment.granted as u64);
        clean
    }

    /// Records the idle interval `[from, to)` on array `i`, evicting
    /// the oldest remembered gap past the per-array bound (evicted
    /// idle stays counted, it just cannot be reclaimed any more).
    fn open_gap(&mut self, i: usize, from: u64, to: u64) {
        self.gap_count += 1;
        self.gap_cycles += to - from;
        let per_array = &mut self.gaps[i];
        per_array.push((from, to));
        per_array.sort_unstable();
        if per_array.len() > MAX_GAPS_PER_ARRAY {
            per_array.remove(0);
        }
    }

    /// Places a whole-core job (PR 4 semantics): it waits for every
    /// array, holds all of them for `duration_cycles`, and its wait
    /// is the gather time from the earliest free array to the last.
    /// `busy_cycles` is the job's real work in array-cycles (its
    /// summed shard cycles) — holding all arrays while using fewer is
    /// exactly the waste this accounting exposes.
    pub fn place_exclusive(
        &mut self,
        duration_cycles: u64,
        busy_cycles: u64,
        arrival_cycle: u64,
    ) -> Placement {
        let n = self.busy_until.len();
        let earliest = arrival_cycle.max(self.horizon());
        let start = arrival_cycle.max(self.makespan());
        let arrays: Vec<usize> = (0..n).collect();
        let freq_level = self.effective_level(&arrays);
        let placement = Placement {
            assignment: ArrayAssignment {
                requested: n,
                granted: n,
                wait_cycles: start - earliest,
            },
            start_cycle: start,
            duration_cycles: freq::level(freq_level).scale_cycles(duration_cycles),
            work_cycles: busy_cycles,
            backfilled: false,
            arrays,
            nominal_duration_cycles: duration_cycles,
            freq_level,
        };
        self.apply(&placement);
        placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempus_core::shard::WidthCost;

    /// A plan whose cost curve is `total / width` cycles (perfect
    /// scaling), evaluated for every width up to `max`.
    fn linear_plan(arrays: usize, max: usize, total: u64) -> BudgetPlan {
        let widths: Vec<WidthCost> = (1..=max)
            .map(|w| WidthCost {
                arrays: w,
                used: w,
                critical_path_cycles: total / w as u64,
                reduction_cycles: 0,
                total_array_cycles: total,
                dynamic_energy_pj: 0,
                static_energy_pj: 0,
            })
            .collect();
        BudgetPlan {
            arrays,
            critical_path_cycles: widths[arrays - 1].critical_path_cycles,
            widths,
        }
    }

    #[test]
    fn narrow_jobs_pack_onto_disjoint_idle_arrays() {
        let mut ledger = ArrayLedger::new(4);
        let mut seen = Vec::new();
        for _ in 0..4 {
            let p = ledger.place(&BudgetPlan::single(100), 0);
            assert_eq!(p.assignment.granted, 1);
            assert_eq!(p.start_cycle, 0);
            assert_eq!(p.assignment.wait_cycles, 0);
            seen.extend(p.arrays);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3], "co-resident grants are disjoint");
        assert_eq!(ledger.makespan(), 100);
        assert!((ledger.summary().occupancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wide_job_waits_to_gather_when_worth_it() {
        let mut ledger = ArrayLedger::new(4);
        // A long narrow job occupies array 0 until cycle 50.
        let _ = ledger.place(&BudgetPlan::single(50), 0);
        // A perfectly scaling job wants all 4: finishing shrunk on 3
        // idle arrays (0 + 1200/3 = 400) beats gathering 4 at cycle
        // 50 (50 + 300 = 350)? No: 350 < 400, so it waits.
        let p = ledger.place(&linear_plan(4, 4, 1200), 0);
        assert_eq!(p.assignment.granted, 4);
        assert_eq!(p.start_cycle, 50);
        assert_eq!(p.assignment.wait_cycles, 50);
        assert_eq!(ledger.makespan(), 350);
    }

    #[test]
    fn wide_job_shrinks_when_waiting_loses() {
        let mut ledger = ArrayLedger::new(4);
        // Array 0 busy until 1000 — far longer than the job itself.
        let _ = ledger.place(&BudgetPlan::single(1000), 0);
        // Shrinking to 3 arrays (0 + 400) beats waiting for 4
        // (1000 + 300): grant 3 now, wait 0.
        let p = ledger.place(&linear_plan(4, 4, 1200), 0);
        assert_eq!(p.assignment.requested, 4);
        assert_eq!(p.assignment.granted, 3);
        assert_eq!(p.start_cycle, 0);
        assert_eq!(p.assignment.wait_cycles, 0);
        assert_eq!(ledger.makespan(), 1000);
    }

    #[test]
    fn exclusive_placements_serialize_the_device() {
        let mut ledger = ArrayLedger::new(4);
        let a = ledger.place_exclusive(100, 100, 0);
        let b = ledger.place_exclusive(50, 50, 0);
        assert_eq!(a.start_cycle, 0);
        assert_eq!(b.start_cycle, 100);
        assert_eq!(b.assignment.granted, 4);
        assert_eq!(ledger.makespan(), 150);
        assert_eq!(ledger.summary().busy_cycles, 150);
    }

    #[test]
    fn placements_never_overlap_on_one_array() {
        // Replay a mixed stream and check interval disjointness per
        // array id — the "disjoint array sets" contract.
        let mut ledger = ArrayLedger::new(3);
        let mut intervals: Vec<Vec<(u64, u64)>> = vec![Vec::new(); 3];
        let plans = [
            linear_plan(3, 3, 900),
            BudgetPlan::single(400),
            linear_plan(2, 3, 600),
            BudgetPlan::single(10),
            linear_plan(3, 3, 300),
        ];
        for plan in &plans {
            let p = ledger.place(plan, 0);
            for &a in &p.arrays {
                intervals[a].push((p.start_cycle, p.start_cycle + p.duration_cycles));
            }
        }
        for per_array in &intervals {
            let mut sorted = per_array.clone();
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlapping intervals: {w:?}");
            }
        }
    }

    #[test]
    fn arrivals_gate_start_times() {
        let mut ledger = ArrayLedger::new(2);
        let p = ledger.place(&BudgetPlan::single(100), 500);
        assert_eq!(p.start_cycle, 500);
        assert_eq!(p.assignment.wait_cycles, 0, "idle device: no wait");
        assert_eq!(ledger.makespan(), 600);
    }

    #[test]
    fn ledger_is_deterministic() {
        let run = || {
            let mut ledger = ArrayLedger::new(4);
            let mut trace = Vec::new();
            for i in 0..20u64 {
                let plan = if i % 3 == 0 {
                    linear_plan(4, 4, 4000)
                } else {
                    BudgetPlan::single(700 + i * 13)
                };
                let p = ledger.place(&plan, i * 50);
                trace.push((p.start_cycle, p.assignment.granted, p.arrays.clone()));
            }
            (trace, ledger.summary())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn gather_waits_open_idle_gaps() {
        let mut ledger = ArrayLedger::new(4);
        // Three short narrow jobs, then a long one: arrays 0-2 free at
        // 100, array 3 at 400.
        for _ in 0..3 {
            let _ = ledger.place(&BudgetPlan::single(100), 0);
        }
        let _ = ledger.place(&BudgetPlan::single(400), 0);
        // A perfectly scaling wide job gathers all 4 at cycle 400
        // (400 + 250 = 650 beats 100 + 1000/3 = 433? no: 433 < 650 —
        // pick totals so gathering wins): use 4000 total, shrunk on 3
        // at 100 → 1433, gathered on 4 at 400 → 1400. It gathers,
        // opening 300-cycle gaps on arrays 0-2.
        let p = ledger.place(&linear_plan(4, 4, 4000), 0);
        assert_eq!(p.assignment.granted, 4);
        assert_eq!(p.start_cycle, 400);
        let s = ledger.summary();
        assert_eq!(s.idle_gap_count, 3, "one gap per early-freeing array");
        assert_eq!(s.idle_gap_cycles, 900, "3 arrays x 300 idle cycles");
        assert_eq!(s.backfills, 0);
    }

    #[test]
    fn backfill_fits_inside_gaps_without_moving_clocks() {
        let mut ledger = ArrayLedger::new(4);
        for _ in 0..3 {
            let _ = ledger.place(&BudgetPlan::single(100), 0);
        }
        let _ = ledger.place(&BudgetPlan::single(400), 0);
        let _ = ledger.place(&linear_plan(4, 4, 4000), 0);
        let clocks_before = ledger.busy_clocks().to_vec();
        let idle_before = ledger.summary().idle_gap_cycles;
        // A 200-cycle narrow job fits the [100, 400) gaps.
        let p = ledger
            .preview_backfill(&BudgetPlan::single(200), 0)
            .expect("gap fits");
        assert!(p.backfilled);
        assert_eq!(p.start_cycle, 100);
        assert_eq!(p.duration_cycles, 200);
        ledger.apply(&p);
        assert_eq!(
            ledger.busy_clocks(),
            clocks_before.as_slice(),
            "backfill must not move any busy clock"
        );
        let s = ledger.summary();
        assert_eq!(s.backfills, 1);
        assert_eq!(s.idle_gap_cycles, idle_before - 200);
        // The consumed gap splits: a second identical backfill lands
        // on the next array's gap at the same cycles.
        let q = ledger
            .preview_backfill(&BudgetPlan::single(200), 0)
            .expect("two more gaps remain");
        assert_eq!(q.start_cycle, 100);
        assert_ne!(q.arrays, p.arrays, "next backfill takes another gap");
        // A job longer than any gap cannot backfill.
        assert!(ledger
            .preview_backfill(&BudgetPlan::single(301), 0)
            .is_none());
    }

    #[test]
    fn backfill_respects_arrival_inside_gap() {
        let mut ledger = ArrayLedger::new(2);
        let _ = ledger.place(&BudgetPlan::single(100), 0);
        let _ = ledger.place(&BudgetPlan::single(1000), 0);
        // Gather the pair at cycle 1000: array 0 idles [100, 1000).
        let _ = ledger.place(&linear_plan(2, 2, 2000), 0);
        // Arriving at 500, a 300-cycle job backfills [500, 800).
        let p = ledger
            .preview_backfill(&BudgetPlan::single(300), 500)
            .expect("fits after arrival");
        assert_eq!(p.start_cycle, 500);
        assert_eq!(p.assignment.wait_cycles, 0);
        // Arriving at 800 the remaining 200 cycles no longer fit.
        assert!(ledger
            .preview_backfill(&BudgetPlan::single(300), 800)
            .is_none());
    }

    #[test]
    fn preview_width_prices_fixed_grants() {
        let mut ledger = ArrayLedger::new(4);
        let _ = ledger.place(&BudgetPlan::single(50), 0);
        let plan = linear_plan(4, 4, 1200);
        // Width 3 starts now on the idle arrays; width 4 gathers at 50.
        let w3 = ledger.preview_width(&plan, 3, 0);
        assert_eq!((w3.start_cycle, w3.assignment.granted), (0, 3));
        assert_eq!(w3.finish_cycle(), 400);
        let w4 = ledger.preview_width(&plan, 4, 0);
        assert_eq!((w4.start_cycle, w4.assignment.granted), (50, 4));
        assert_eq!(w4.finish_cycle(), 350);
        assert_eq!(w4.assignment.wait_cycles, 50);
        // preview/place agree: place's decision equals the better of
        // the two fixed-width previews here.
        let placed = ledger.preview(&plan, 0);
        assert_eq!(placed.finish_cycle(), 350);
    }

    #[test]
    fn preview_is_pure_and_place_commits_it() {
        let mut ledger = ArrayLedger::new(3);
        let _ = ledger.place(&BudgetPlan::single(70), 0);
        let plan = linear_plan(3, 3, 900);
        let previewed = ledger.preview(&plan, 10);
        let before = ledger.summary();
        assert_eq!(ledger.preview(&plan, 10), previewed, "preview is pure");
        assert_eq!(ledger.summary(), before);
        let placed = ledger.place(&plan, 10);
        assert_eq!(placed, previewed);
    }

    #[test]
    fn starting_at_joins_on_a_clock_boundary() {
        let mut ledger = ArrayLedger::starting_at(2, 500);
        assert_eq!(ledger.horizon(), 500);
        let p = ledger.place(&BudgetPlan::single(100), 200);
        assert_eq!(p.start_cycle, 500, "no work before the join cycle");
        assert_eq!(p.assignment.wait_cycles, 0);
    }

    #[test]
    fn pruning_forgets_stale_gaps_but_keeps_the_account() {
        let mut ledger = ArrayLedger::new(2);
        let _ = ledger.place(&BudgetPlan::single(100), 0);
        let _ = ledger.place(&BudgetPlan::single(500), 0);
        let _ = ledger.place(&linear_plan(2, 2, 1000), 0); // gap [100, 500) on array 0
        let idle = ledger.summary().idle_gap_cycles;
        assert_eq!(idle, 400);
        ledger.prune_gaps_before(600);
        assert!(ledger
            .preview_backfill(&BudgetPlan::single(10), 0)
            .is_none());
        assert_eq!(ledger.summary().idle_gap_cycles, idle, "account survives");
    }

    #[test]
    fn revert_undoes_the_newest_placement_exactly() {
        let mut ledger = ArrayLedger::new(4);
        let _ = ledger.place(&BudgetPlan::single(100), 0);
        let before_clocks = ledger.busy_clocks().to_vec();
        let before = ledger.summary();
        let p = ledger.place(&linear_plan(4, 4, 1200), 0);
        assert!(ledger.revert(&p), "newest placement reverts clean");
        assert_eq!(ledger.busy_clocks(), before_clocks.as_slice());
        assert_eq!(ledger.summary(), before);
        // The freed capacity is re-placeable: placing again lands the
        // identical placement.
        let q = ledger.place(&linear_plan(4, 4, 1200), 0);
        assert_eq!(q, p);
    }

    #[test]
    fn revert_reopens_backfill_gaps() {
        let mut ledger = ArrayLedger::new(4);
        for _ in 0..3 {
            let _ = ledger.place(&BudgetPlan::single(100), 0);
        }
        let _ = ledger.place(&BudgetPlan::single(400), 0);
        let _ = ledger.place(&linear_plan(4, 4, 4000), 0);
        let idle_before = ledger.summary().idle_gap_cycles;
        let p = ledger
            .preview_backfill(&BudgetPlan::single(200), 0)
            .expect("gap fits");
        ledger.apply(&p);
        assert!(ledger.revert(&p));
        let s = ledger.summary();
        assert_eq!(s.idle_gap_cycles, idle_before, "gap account restored");
        assert_eq!(s.backfills, 0);
        // The re-opened interval is backfillable again.
        let q = ledger
            .preview_backfill(&BudgetPlan::single(200), 0)
            .expect("re-opened gap fits");
        assert_eq!(q.start_cycle, p.start_cycle);
    }

    #[test]
    fn revert_under_later_placements_reports_dirty_but_keeps_census() {
        let mut ledger = ArrayLedger::new(1);
        let a = ledger.place(&BudgetPlan::single(100), 0);
        let _b = ledger.place(&BudgetPlan::single(50), 0);
        // `a` is no longer the newest on array 0: its tail cannot be
        // freed, but the counters still unwind.
        let placements_before = ledger.summary().placements;
        assert!(!ledger.revert(&a));
        assert_eq!(ledger.summary().placements, placements_before - 1);
        assert_eq!(ledger.makespan(), 150, "clock untouched");
    }

    #[test]
    fn governor_downclocks_idle_heavy_arrays_deterministically() {
        let run = || {
            let mut ledger = ArrayLedger::new(1).with_governor(GovernorPolicy::edge_default());
            let mut trace = Vec::new();
            for i in 0..10u64 {
                // Sparse arrivals: the lone array idles ~900 of every
                // 1000 cycles, so the idle EWMA climbs past the high
                // watermark and the governor walks the ladder down.
                let p = ledger.place(&BudgetPlan::single(100), i * 1000);
                trace.push((p.freq_level, p.duration_cycles, p.start_cycle));
            }
            (trace, ledger.array_levels().to_vec(), ledger.summary())
        };
        let (trace, levels, summary) = run();
        assert_eq!(run(), (trace.clone(), levels.clone(), summary));
        assert!(levels[0] > 0, "idle-heavy array stepped down: {levels:?}");
        assert!(
            trace.iter().any(|&(lvl, d, _)| lvl > 0 && d > 100),
            "down-clocked placements stretch: {trace:?}"
        );
        assert!(summary.freq_changes > 0);
        assert!(summary.level_residency.iter().skip(1).any(|&c| c > 0));
    }

    #[test]
    fn no_governor_means_nominal_levels_everywhere() {
        let mut ledger = ArrayLedger::new(2);
        for i in 0..6u64 {
            let p = ledger.place(&BudgetPlan::single(100), i * 1000);
            assert_eq!(p.freq_level, 0);
            assert_eq!(p.duration_cycles, p.nominal_duration_cycles);
        }
        let s = ledger.summary();
        assert_eq!(s.freq_changes, 0);
        assert_eq!(s.level_residency[1..], [0; 3]);
        assert!(ledger.drain_freq_changes().is_empty());
    }

    #[test]
    fn at_level_rescales_from_the_nominal_duration() {
        let ledger = ArrayLedger::new(2);
        let p = ledger.preview(&BudgetPlan::single(101), 0);
        let slow = p.at_level(2);
        assert_eq!(slow.nominal_duration_cycles, 101);
        assert_eq!(slow.duration_cycles, 152); // ceil(101 * 3 / 2)
                                               // Round-trip through the nominal figure is exact.
        assert_eq!(slow.at_level(0), p);
    }

    #[test]
    fn policy_flags_read_correctly() {
        assert!(!ArrayPolicy::AllArrays.co_schedules());
        assert!(ArrayPolicy::CostAware(WidenPolicy::edge_default()).co_schedules());
        assert_eq!(ArrayAssignment::full(0).granted, 1);
        assert_eq!(ArrayAssignment::full(8).requested, 8);
    }
}
