//! The batched multi-threaded inference engine.
//!
//! Jobs are distributed by a **deterministic seeded scheduler**: the
//! batch is permuted by a seeded Fisher–Yates shuffle (a cheap model
//! of arrival-order randomisation that keeps heavy jobs from clumping
//! on one worker) and dealt round-robin to the worker threads. Each
//! worker owns its backend instance — cores and schedule caches are
//! worker-local, so execution is lock-free — and results are returned
//! sorted by job id. For a fixed `(jobs, seed, workers)` triple the
//! assignment, every per-job modelled statistic and the result order
//! are bit-for-bit reproducible; only host wall-clock varies.

use std::time::Instant;

use tempus_arith::IntPrecision;
use tempus_core::gemm::TubGemm;
use tempus_core::streaming::StreamPlan;
use tempus_core::TempusConfig;
use tempus_hwmodel::{Family, SynthModel};
use tempus_nvdla::config::NvdlaConfig;
use tempus_nvdla::cube::DataCube;
use tempus_nvdla::{fused, pdp};

use tempus_core::shard::WidenPolicy;

use crate::backend::{BackendKind, StreamingConfig};
use crate::error::RuntimeError;
use crate::job::{Job, JobPayload, JobResult};
use crate::ledger::{ArrayAssignment, ArrayLedger, ArrayPolicy};
use crate::planner::ArrayPlanner;
use crate::stats::{AggregateStats, WorkerStats, PERIOD_NS};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads (each owns a core instance). Must be ≥ 1.
    pub workers: usize,
    /// Scheduler seed: fixes the job permutation.
    pub seed: u64,
    /// Which backend the workers instantiate.
    pub backend: BackendKind,
    /// PE arrays per modelled DLA: jobs are sharded across them
    /// (kernel groups preferred, channel groups + cross-array
    /// reduction as fallback) and per-job latency becomes the sharded
    /// critical path. 1 models the paper's single-core socket.
    pub num_arrays: usize,
    /// How jobs are granted arrays: [`ArrayPolicy::AllArrays`] (every
    /// job takes the whole core — PR 4 semantics, the default) or
    /// [`ArrayPolicy::CostAware`] (the budget planner picks each
    /// job's width and the array-slot ledger packs jobs onto disjoint
    /// array sets).
    pub scheduling: ArrayPolicy,
    /// Tempus Core configuration (tempus and functional backends).
    pub tempus: TempusConfig,
    /// NVDLA baseline configuration (nvdla backend).
    pub nvdla: NvdlaConfig,
    /// GEMM PE-grid shape for all backends.
    pub gemm_grid: (usize, usize),
    /// Streaming execution: `Some` routes GEMM jobs through the
    /// bounded tile arena and network jobs through per-row fusion on
    /// every worker backend — bit-identical outputs and cycles, with
    /// peak scratch surfaced per job. `None` (default) materializes.
    pub streaming: Option<StreamingConfig>,
}

impl EngineConfig {
    /// Default configuration for `backend`: 4 workers, the paper's
    /// 16×16 cores, a 16×16 GEMM grid, seed 42.
    #[must_use]
    pub fn new(backend: BackendKind) -> Self {
        EngineConfig {
            workers: 4,
            seed: 42,
            backend,
            num_arrays: 1,
            scheduling: ArrayPolicy::AllArrays,
            tempus: TempusConfig::paper_16x16(),
            nvdla: NvdlaConfig::paper_16x16(),
            gemm_grid: (16, 16),
            streaming: None,
        }
    }

    /// Enables streaming execution on every worker backend (builder
    /// style).
    #[must_use]
    pub fn with_streaming(mut self, streaming: StreamingConfig) -> Self {
        self.streaming = Some(streaming);
        self
    }

    /// Overrides the worker count (builder style).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Overrides the scheduler seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the modelled PE-array count (builder style).
    #[must_use]
    pub fn with_arrays(mut self, num_arrays: usize) -> Self {
        self.num_arrays = num_arrays.max(1);
        self
    }

    /// Enables cost-aware array-slot co-scheduling with the default
    /// widening policy (builder style).
    #[must_use]
    pub fn with_co_scheduling(self) -> Self {
        self.with_scheduling(ArrayPolicy::CostAware(WidenPolicy::edge_default()))
    }

    /// Overrides the array-granting policy (builder style).
    #[must_use]
    pub fn with_scheduling(mut self, scheduling: ArrayPolicy) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// Overrides both core configurations' precision (builder style).
    #[must_use]
    pub fn with_precision(mut self, precision: IntPrecision) -> Self {
        self.tempus = self.tempus.with_precision(precision);
        self.nvdla = self.nvdla.with_precision(precision);
        self
    }

    /// Overrides the core configurations (builder style).
    #[must_use]
    pub fn with_cores(mut self, tempus: TempusConfig, nvdla: NvdlaConfig) -> Self {
        self.tempus = tempus;
        self.nvdla = nvdla;
        self
    }

    /// Smallest streaming-scratch arena `job` can execute under, in
    /// elements: the one-step-`tile_k` floor of the GEMM tile arena,
    /// or the widest per-row fused ring across a network's layers.
    /// Conv jobs stream nothing (0). Shape errors also floor at 0 —
    /// admission defers to execution to surface them as the caller's
    /// job-level failure.
    #[must_use]
    pub fn min_stream_scratch_elems(&self, job: &Job) -> u64 {
        match &job.payload {
            JobPayload::Conv { .. } => 0,
            JobPayload::Gemm { a, b } => {
                let engine = TubGemm::new(
                    self.gemm_grid.0,
                    self.gemm_grid.1,
                    self.tempus.base.precision,
                );
                StreamPlan::min_scratch_elems(&engine, a.rows(), a.cols(), b.cols())
            }
            JobPayload::Network { input, layers } => {
                let (mut w, mut h) = (input.w(), input.h());
                let mut peak = 0u64;
                for layer in layers {
                    let Ok((out_w, out_h)) =
                        layer
                            .conv
                            .output_dims(w, h, layer.kernels.r(), layer.kernels.s())
                    else {
                        return 0;
                    };
                    peak = peak.max(fused::fused_layer_scratch(
                        out_w,
                        layer.kernels.k(),
                        layer.pool.as_ref(),
                    ));
                    (w, h) = match &layer.pool {
                        Some(pool) => match pdp::apply(&DataCube::zeros(out_w, out_h, 1), pool) {
                            Ok(pooled) => (pooled.w(), pooled.h()),
                            Err(_) => return 0,
                        },
                        None => (out_w, out_h),
                    };
                }
                peak
            }
        }
    }
}

/// Per-cycle PE-array power for `kind` under `config`, in mW —
/// calibrated synthesis model for the family the backend models, at
/// the configured precision and array shape. Shared by the batch
/// engine and the incremental [`crate::pool::WorkerPool`] so their
/// energy figures agree.
#[must_use]
pub fn array_power_mw(config: &EngineConfig, kind: BackendKind) -> f64 {
    let hw = SynthModel::nangate45();
    let (family, precision, (k, n)) = match kind {
        BackendKind::NvdlaCycleAccurate => (
            Family::Binary,
            config.nvdla.precision,
            (config.nvdla.atomic_k, config.nvdla.atomic_c),
        ),
        BackendKind::TempusCycleAccurate | BackendKind::FastFunctional => (
            Family::Tub,
            config.tempus.base.precision,
            (config.tempus.base.atomic_k, config.tempus.base.atomic_c),
        ),
    };
    hw.pe_array(family, precision, k, n).power_mw
}

/// Static/leakage fraction of [`array_power_mw`] for `kind` under
/// `config`, in `[0, 1)` — from the same structural netlist rollup.
/// The DVFS energy split charges `power × (1 − f)` as dynamic
/// (voltage-squared-scaled) energy on working array-cycles and
/// `power × f` as static energy on busy wall time.
#[must_use]
pub fn array_leakage_fraction(config: &EngineConfig, kind: BackendKind) -> f64 {
    let hw = SynthModel::nangate45();
    let (family, precision, (k, n)) = match kind {
        BackendKind::NvdlaCycleAccurate => (
            Family::Binary,
            config.nvdla.precision,
            (config.nvdla.atomic_k, config.nvdla.atomic_c),
        ),
        BackendKind::TempusCycleAccurate | BackendKind::FastFunctional => (
            Family::Tub,
            config.tempus.base.precision,
            (config.tempus.base.atomic_k, config.tempus.base.atomic_c),
        ),
    };
    hw.leakage_fraction(family, precision, k, n)
}

/// A completed batch: per-job results (sorted by id), per-worker
/// records and batch aggregates.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-job results, sorted by job id.
    pub results: Vec<JobResult>,
    /// Per-worker records, indexed by worker.
    pub workers: Vec<WorkerStats>,
    /// Batch-level aggregates.
    pub aggregate: AggregateStats,
}

impl BatchReport {
    /// Combined digest over all job outputs (in job-id order) —
    /// comparing two backends' batch digests proves bit-identical
    /// results in one comparison.
    #[must_use]
    pub fn output_digest(&self) -> u64 {
        tempus_nvdla::cube::fnv1a(
            self.results
                .iter()
                .flat_map(|r| [r.job_id, r.output.digest()]),
        )
    }
}

/// The inference engine: configure once, run batches.
#[derive(Debug, Clone)]
pub struct InferenceEngine {
    config: EngineConfig,
    /// Per-cycle array power for the configured backend, in mW.
    array_power_mw: f64,
    /// Static/leakage fraction of `array_power_mw`.
    array_leak_frac: f64,
}

impl InferenceEngine {
    /// Builds an engine.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoWorkers`] when `workers == 0`.
    pub fn new(config: EngineConfig) -> Result<Self, RuntimeError> {
        if config.workers == 0 {
            return Err(RuntimeError::NoWorkers);
        }
        let array_power_mw = array_power_mw(&config, config.backend);
        let array_leak_frac = array_leakage_fraction(&config, config.backend);
        Ok(InferenceEngine {
            config,
            array_power_mw,
            array_leak_frac,
        })
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Deterministic job order: seeded Fisher–Yates permutation of
    /// `0..n` (SplitMix64 underneath).
    #[must_use]
    pub fn permutation(&self, n: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..n).collect();
        let mut state = self.config.seed ^ 0x6A09_E667_F3BC_C908;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        order
    }

    /// Executes a batch of jobs across the worker pool.
    ///
    /// # Errors
    ///
    /// Returns the first job error encountered (by worker, then
    /// submission order), or [`RuntimeError::WorkerPanicked`] if a
    /// worker thread died.
    pub fn run_batch(&self, jobs: &[Job]) -> Result<BatchReport, RuntimeError> {
        let order = self.permutation(jobs.len());
        let workers = self.config.workers.min(jobs.len()).max(1);
        // Deal the permuted batch round-robin onto the workers.
        let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); workers];
        for (slot, &job_idx) in order.iter().enumerate() {
            assignments[slot % workers].push(job_idx);
        }

        // Array-slot grants, decided up front in permutation order so
        // they are deterministic for a fixed (jobs, seed) pair: under
        // the cost-aware policy each job gets the width the budget
        // planner picked and the ledger packed; under the all-arrays
        // policy every job keeps the whole core (PR 4 semantics).
        let mut grants: Vec<ArrayAssignment> =
            vec![ArrayAssignment::full(self.config.num_arrays); jobs.len()];
        let device = if let ArrayPolicy::CostAware(policy) = self.config.scheduling {
            let mut planner = ArrayPlanner::new(&self.config, policy);
            let mut ledger = ArrayLedger::new(self.config.num_arrays);
            for &job_idx in &order {
                let plan = planner.plan_or_single(&jobs[job_idx]);
                grants[job_idx] = ledger.place(&plan, 0).assignment;
            }
            Some(ledger.summary())
        } else {
            None
        };
        let grants = &grants;

        let batch_start = Instant::now();
        let worker_outputs: Vec<Result<(Vec<JobResult>, WorkerStats), RuntimeError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = assignments
                    .iter()
                    .enumerate()
                    .map(|(worker_idx, assigned)| {
                        let config = &self.config;
                        let power = self.array_power_mw;
                        let leak = self.array_leak_frac;
                        scope.spawn(move || {
                            let mut backend = config.backend.instantiate(
                                config.tempus,
                                config.nvdla,
                                config.gemm_grid,
                                config.num_arrays,
                            );
                            backend.set_streaming(config.streaming);
                            let mut results = Vec::with_capacity(assigned.len());
                            let mut stats = WorkerStats {
                                worker: worker_idx,
                                ..WorkerStats::default()
                            };
                            for &job_idx in assigned {
                                let job = &jobs[job_idx];
                                let grant = grants[job_idx];
                                let start = Instant::now();
                                let run = backend.execute_on(job, grant.granted.max(1))?;
                                let wall_ns = start.elapsed().as_nanos() as u64;
                                // Split the calibrated total into its
                                // dynamic/static shares exactly: the
                                // sum reproduces the pre-split figure
                                // bit-for-bit. Batch runs always
                                // execute at the nominal level.
                                let energy_pj = power * run.total_array_cycles as f64 * PERIOD_NS;
                                let dynamic_energy_pj = energy_pj * (1.0 - leak);
                                let static_energy_pj = energy_pj - dynamic_energy_pj;
                                stats.jobs += 1;
                                stats.sim_cycles += run.sim_cycles;
                                stats.wall_ns += wall_ns;
                                results.push(JobResult {
                                    job_id: job.id,
                                    job_name: job.name.clone(),
                                    kind: job.payload.kind(),
                                    output: run.output,
                                    sim_cycles: run.sim_cycles,
                                    total_array_cycles: run.total_array_cycles,
                                    shards: run.shards,
                                    shard_utilization: run.shard_utilization,
                                    arrays_requested: grant.requested,
                                    arrays_granted: grant.granted.max(1),
                                    array_wait_cycles: grant.wait_cycles,
                                    energy_pj,
                                    dynamic_energy_pj,
                                    static_energy_pj,
                                    freq_level: 0,
                                    wall_ns,
                                    worker: worker_idx,
                                    per_shard_cycles: run.per_shard_cycles,
                                    reduction_cycles: run.reduction_cycles,
                                    window_cycles: run.window_cycles,
                                    peak_scratch_elems: run.peak_scratch_elems,
                                });
                            }
                            stats.schedule_cache = backend.cache_stats();
                            Ok((results, stats))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .enumerate()
                    .map(|(worker, h)| {
                        h.join()
                            .map_err(|_| RuntimeError::WorkerPanicked { worker })
                            .and_then(|r| r)
                    })
                    .collect()
            });
        let wall_ns = batch_start.elapsed().as_nanos() as u64;

        let mut results = Vec::with_capacity(jobs.len());
        let mut worker_stats = Vec::with_capacity(workers);
        for outcome in worker_outputs {
            let (mut rs, ws) = outcome?;
            results.append(&mut rs);
            worker_stats.push(ws);
        }
        results.sort_by_key(|r| r.job_id);

        let aggregate = AggregateStats::from_results(
            self.config.backend.name(),
            workers,
            &results,
            &worker_stats,
            wall_ns,
            self.config.num_arrays,
            device,
            self.array_power_mw * self.array_leak_frac,
        );
        Ok(BatchReport {
            results,
            workers: worker_stats,
            aggregate,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempus_core::gemm::Matrix;
    use tempus_nvdla::conv::ConvParams;
    use tempus_nvdla::cube::{DataCube, KernelSet};

    fn mixed_jobs(n: u64) -> Vec<Job> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    let features = DataCube::from_fn(5, 5, 4, move |x, y, c| {
                        ((x as i32 * 31 + y as i32 * 17 + c as i32 * 7 + i as i32) % 255) - 127
                    });
                    let kernels = KernelSet::from_fn(4, 3, 3, 4, move |k, r, s, c| {
                        ((k as i32 * 13 + r as i32 + s as i32 * 3 + c as i32 * 11 + i as i32) % 255)
                            - 127
                    });
                    Job::conv(
                        i,
                        format!("conv-{i}"),
                        features,
                        kernels,
                        ConvParams::valid(),
                    )
                } else {
                    let a = Matrix::from_fn(5, 6, move |r, c| {
                        ((r as i32 * 31 + c as i32 * 17 + i as i32) % 255) - 127
                    });
                    let b = Matrix::from_fn(6, 4, move |r, c| {
                        ((r as i32 * 13 + c as i32 * 41 + i as i32) % 255) - 127
                    });
                    Job::gemm(i, format!("gemm-{i}"), a, b)
                }
            })
            .collect()
    }

    #[test]
    fn zero_workers_rejected() {
        let cfg = EngineConfig::new(BackendKind::FastFunctional).with_workers(0);
        assert!(matches!(
            InferenceEngine::new(cfg),
            Err(RuntimeError::NoWorkers)
        ));
    }

    #[test]
    fn permutation_is_seeded_and_complete() {
        let a = InferenceEngine::new(EngineConfig::new(BackendKind::FastFunctional).with_seed(1))
            .unwrap();
        let b = InferenceEngine::new(EngineConfig::new(BackendKind::FastFunctional).with_seed(1))
            .unwrap();
        let c = InferenceEngine::new(EngineConfig::new(BackendKind::FastFunctional).with_seed(2))
            .unwrap();
        let pa = a.permutation(64);
        assert_eq!(pa, b.permutation(64));
        assert_ne!(pa, c.permutation(64));
        let mut sorted = pa.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn batch_results_are_sorted_and_reproducible() {
        let jobs = mixed_jobs(24);
        let engine =
            InferenceEngine::new(EngineConfig::new(BackendKind::FastFunctional).with_workers(3))
                .unwrap();
        let r1 = engine.run_batch(&jobs).unwrap();
        let r2 = engine.run_batch(&jobs).unwrap();
        assert_eq!(
            r1.results.iter().map(|r| r.job_id).collect::<Vec<_>>(),
            (0..24).collect::<Vec<_>>()
        );
        assert_eq!(r1.output_digest(), r2.output_digest());
        assert_eq!(r1.aggregate.total_sim_cycles, r2.aggregate.total_sim_cycles);
        assert_eq!(r1.aggregate.jobs, 24);
        assert!(r1.aggregate.total_energy_pj > 0.0);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let jobs = mixed_jobs(16);
        let digests: Vec<u64> = [1usize, 2, 4, 8]
            .into_iter()
            .map(|w| {
                let engine = InferenceEngine::new(
                    EngineConfig::new(BackendKind::FastFunctional).with_workers(w),
                )
                .unwrap();
                let report = engine.run_batch(&jobs).unwrap();
                assert_eq!(report.aggregate.workers, w.min(16));
                report.output_digest()
            })
            .collect();
        assert!(digests.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = InferenceEngine::new(EngineConfig::new(BackendKind::FastFunctional)).unwrap();
        let report = engine.run_batch(&[]).unwrap();
        assert_eq!(report.aggregate.jobs, 0);
        assert!(report.results.is_empty());
    }

    #[test]
    fn job_errors_propagate_from_workers() {
        let bad = vec![Job::gemm(
            0,
            "mismatched",
            Matrix::zeros(2, 3),
            Matrix::zeros(4, 2),
        )];
        let engine = InferenceEngine::new(EngineConfig::new(BackendKind::FastFunctional)).unwrap();
        assert!(matches!(
            engine.run_batch(&bad),
            Err(RuntimeError::Arith(_))
        ));
    }
}
