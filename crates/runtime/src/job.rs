//! Inference jobs and their results.

use std::fmt;

use tempus_core::gemm::Matrix;
use tempus_nvdla::conv::ConvParams;
use tempus_nvdla::cube::{DataCube, KernelSet};
use tempus_nvdla::network::NetworkLayer;

/// What a job computes.
#[derive(Debug, Clone)]
pub enum JobPayload {
    /// One convolution layer.
    Conv {
        /// Input feature cube.
        features: DataCube,
        /// Kernel weights.
        kernels: KernelSet,
        /// Convolution parameters.
        params: ConvParams,
    },
    /// One dense matrix product (the tuGEMM/tubGEMM workload shape).
    Gemm {
        /// Left operand (binary-held).
        a: Matrix,
        /// Right operand (temporally streamed).
        b: Matrix,
    },
    /// A whole network: convolution + SDP requantization (+ optional
    /// pooling) per layer.
    Network {
        /// Network input cube.
        input: DataCube,
        /// Layers in execution order.
        layers: Vec<NetworkLayer>,
    },
}

impl JobPayload {
    /// Short payload-kind tag for reporting.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            JobPayload::Conv { .. } => "conv",
            JobPayload::Gemm { .. } => "gemm",
            JobPayload::Network { .. } => "network",
        }
    }
}

/// One unit of work submitted to the engine.
#[derive(Debug, Clone)]
pub struct Job {
    /// Caller-assigned id; results are returned sorted by it.
    pub id: u64,
    /// Human-readable label for reports.
    pub name: String,
    /// The computation.
    pub payload: JobPayload,
}

impl Job {
    /// Builds a convolution job.
    #[must_use]
    pub fn conv(
        id: u64,
        name: impl Into<String>,
        features: DataCube,
        kernels: KernelSet,
        params: ConvParams,
    ) -> Self {
        Job {
            id,
            name: name.into(),
            payload: JobPayload::Conv {
                features,
                kernels,
                params,
            },
        }
    }

    /// Builds a GEMM job.
    #[must_use]
    pub fn gemm(id: u64, name: impl Into<String>, a: Matrix, b: Matrix) -> Self {
        Job {
            id,
            name: name.into(),
            payload: JobPayload::Gemm { a, b },
        }
    }

    /// Builds a whole-network job.
    #[must_use]
    pub fn network(
        id: u64,
        name: impl Into<String>,
        input: DataCube,
        layers: Vec<NetworkLayer>,
    ) -> Self {
        Job {
            id,
            name: name.into(),
            payload: JobPayload::Network { input, layers },
        }
    }

    /// Content-addressed key over everything that determines the
    /// job's output: inputs, weights and parameters — id and name are
    /// excluded, so two requests for the same computation share a key.
    /// The serving layer (`tempus-serve`) uses this to memoize results
    /// above the backend layer.
    #[must_use]
    pub fn content_key(&self) -> u64 {
        match &self.payload {
            JobPayload::Conv {
                features,
                kernels,
                params,
            } => tempus_nvdla::cube::fnv1a(
                [
                    1u64,
                    features.content_hash(),
                    kernels.content_hash(),
                    params.content_hash(),
                ]
                .into_iter(),
            ),
            JobPayload::Gemm { a, b } => {
                tempus_nvdla::cube::fnv1a([2u64, a.content_hash(), b.content_hash()].into_iter())
            }
            JobPayload::Network { input, layers } => tempus_nvdla::cube::fnv1a(
                [3u64, input.content_hash(), layers.len() as u64]
                    .into_iter()
                    .chain(layers.iter().map(NetworkLayer::content_hash)),
            ),
        }
    }
}

/// A job's computed output.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutput {
    /// Output cube (conv and network jobs).
    Cube(DataCube),
    /// Output matrix (GEMM jobs).
    Matrix(Matrix),
}

impl JobOutput {
    /// Order-stable content digest, comparable across backends.
    #[must_use]
    pub fn digest(&self) -> u64 {
        match self {
            JobOutput::Cube(cube) => cube.content_hash(),
            JobOutput::Matrix(m) => m.content_hash(),
        }
    }
}

/// One executed job's result.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Id of the job this answers.
    pub job_id: u64,
    /// Job label.
    pub job_name: String,
    /// Payload-kind tag (`conv`/`gemm`/`network`).
    pub kind: &'static str,
    /// The computed output.
    pub output: JobOutput,
    /// Modelled job latency in datapath cycles (simulated or
    /// closed-form, per backend); on a multi-array backend, the
    /// sharded critical path.
    pub sim_cycles: u64,
    /// Array-cycles summed over every shard (equals `sim_cycles` on a
    /// single array); energy scales with this.
    pub total_array_cycles: u64,
    /// PE arrays the job occupied (1 on single-array backends).
    pub shards: usize,
    /// Work balance across the arrays (1.0 when single-array or
    /// perfectly balanced).
    pub shard_utilization: f64,
    /// Arrays the scheduler requested for the job (the cost-aware
    /// width, or the full configured width under the all-arrays
    /// policy).
    pub arrays_requested: usize,
    /// Arrays the array-slot ledger granted — the width the backend
    /// executed with. Equals `arrays_requested` except when the
    /// ledger shrank the grant to start the job on idle arrays.
    pub arrays_granted: usize,
    /// Device cycles the job waited past the earliest free array to
    /// gather its granted set (0 without co-scheduling).
    pub array_wait_cycles: u64,
    /// Modelled energy at the executed frequency level, in pJ
    /// (`dynamic_energy_pj + static_energy_pj`).
    pub energy_pj: f64,
    /// Dynamic (switching) share of `energy_pj` — scales with the
    /// square of the supply voltage under DVFS.
    pub dynamic_energy_pj: f64,
    /// Static (leakage) share of `energy_pj`, charged on the busy
    /// wall window — stretches with the period under DVFS.
    pub static_energy_pj: f64,
    /// DVFS ladder level the job's arrays ran at (0 = nominal
    /// 250 MHz; always 0 with the frequency governor off).
    pub freq_level: u8,
    /// Host wall-clock spent executing the job, in nanoseconds.
    pub wall_ns: u64,
    /// Which worker ran it.
    pub worker: usize,
    /// Per-shard busy cycles, shard order (empty when the run was not
    /// sharded) — the telemetry layer renders these as per-array
    /// spans on the device timeline.
    pub per_shard_cycles: Vec<u64>,
    /// Cycles of the cross-array reduction stage within `sim_cycles`.
    pub reduction_cycles: u64,
    /// Window-batch cycles from `TempusStats` (cycle-accurate Tempus
    /// conv paths only).
    pub window_cycles: u64,
    /// Peak streaming-scratch high-water mark in elements (0 on
    /// materialized runs — non-zero only when the backend executed
    /// the job in streaming mode).
    pub peak_scratch_elems: u64,
}

impl fmt::Display for JobResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "job {} [{}] {}: {} cycles, {:.1} pJ, worker {}",
            self.job_id, self.kind, self.job_name, self.sim_cycles, self.energy_pj, self.worker
        )?;
        if self.shards > 1 {
            write!(
                f,
                ", {} arrays ({:.0}% balanced)",
                self.shards,
                self.shard_utilization * 100.0
            )?;
        }
        if self.arrays_granted < self.arrays_requested {
            write!(
                f,
                ", granted {}/{} arrays",
                self.arrays_granted, self.arrays_requested
            )?;
        }
        if self.array_wait_cycles > 0 {
            write!(f, ", waited {} cycles for arrays", self.array_wait_cycles)?;
        }
        Ok(())
    }
}
