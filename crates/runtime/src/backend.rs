//! Pluggable inference backends behind one trait.
//!
//! Three implementations of [`InferenceBackend`]:
//!
//! * [`TempusBackend`] — the cycle-accurate Tempus Core simulation
//!   (authoritative cycles, slowest);
//! * [`NvdlaBackend`] — the cycle-accurate binary NVDLA baseline;
//! * [`FunctionalBackend`] — computes **bit-identical outputs**
//!   through the golden functional models while reporting Tempus Core
//!   latency via the closed-form model (with per-worker stripe
//!   schedule caching) — orders of magnitude faster, for large
//!   sweeps.
//!
//! The equivalence contract — same outputs everywhere, and
//! `FunctionalBackend` cycles exactly equal to `TempusBackend` cycles
//! — is enforced by the workspace's property tests.

use tempus_core::gemm::{Matrix, TubGemm};
use tempus_core::schedule::{CacheStats, ScheduleCache};
use tempus_core::shard::{self, ShardAccum};
use tempus_core::streaming::{self, StreamPlan};
use tempus_core::{TempusConfig, TempusCore};
use tempus_nvdla::config::NvdlaConfig;
use tempus_nvdla::conv::direct_conv;
use tempus_nvdla::cube::DataCube;
use tempus_nvdla::fused;
use tempus_nvdla::network::{run_network, NetworkLayer};
use tempus_nvdla::pdp;
use tempus_nvdla::pipeline::{ConvCore, NvdlaConvCore};
use tempus_nvdla::sdp;

use crate::error::RuntimeError;
use crate::job::{Job, JobOutput, JobPayload};

/// Output plus the backend's modelled cycle counts and multi-array
/// shard accounting.
#[derive(Debug, Clone)]
pub struct Execution {
    /// The computed output.
    pub output: JobOutput,
    /// Modelled job latency in datapath cycles. On a multi-array
    /// backend this is the **sharded critical path**: the slowest
    /// shard plus any cross-array reduction stage.
    pub sim_cycles: u64,
    /// Array-cycles summed over every shard (equals `sim_cycles` on a
    /// single array) — the figure energy accounting scales with, since
    /// every array burns power while it runs.
    pub total_array_cycles: u64,
    /// PE arrays the job actually occupied.
    pub shards: usize,
    /// Work balance across the arrays: summed shard cycles over
    /// `shards × slowest shard` (1.0 when single-array or perfectly
    /// balanced).
    pub shard_utilization: f64,
    /// Per-shard busy cycles, one per occupied array, shard order.
    /// Empty on single-array runs and on whole-network jobs (whose
    /// layers shard independently) — telemetry renders those as one
    /// flat busy interval instead of per-shard spans.
    pub per_shard_cycles: Vec<u64>,
    /// Cycles of the cross-array reduction stage included in
    /// `sim_cycles` (0 when the split needed no reduction).
    pub reduction_cycles: u64,
    /// Window-batch cycles reported by `TempusStats` — non-zero only
    /// on the cycle-accurate Tempus conv paths, where the PCU
    /// actually streams windows.
    pub window_cycles: u64,
    /// Peak streaming-scratch high-water mark in elements — non-zero
    /// only when the backend executed the job in streaming mode
    /// (bounded tile arena for GEMMs, fused per-row ring for
    /// networks). 0 on materialized runs.
    pub peak_scratch_elems: u64,
}

impl Execution {
    /// A single-array execution: latency and array-cycles coincide.
    #[must_use]
    pub fn single(output: JobOutput, sim_cycles: u64) -> Self {
        Execution {
            output,
            sim_cycles,
            total_array_cycles: sim_cycles,
            shards: 1,
            shard_utilization: 1.0,
            per_shard_cycles: Vec::new(),
            reduction_cycles: 0,
            window_cycles: 0,
            peak_scratch_elems: 0,
        }
    }

    /// Attaches the window-batch cycle count (builder style).
    #[must_use]
    pub fn with_window_cycles(mut self, window_cycles: u64) -> Self {
        self.window_cycles = window_cycles;
        self
    }

    /// Attaches the streaming-scratch high-water mark (builder style).
    #[must_use]
    pub fn with_peak_scratch(mut self, peak_scratch_elems: u64) -> Self {
        self.peak_scratch_elems = peak_scratch_elems;
        self
    }
}

/// Streaming-execution knobs threaded to every worker backend.
///
/// With streaming enabled, GEMM jobs run through the bounded
/// double-buffered tile arena ([`tempus_core::streaming`]) and network
/// jobs fuse conv → SDP → pool per output row
/// ([`tempus_nvdla::fused`]) — bit-identical outputs and cycles, with
/// the peak-scratch high-water mark surfaced on [`Execution`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamingConfig {
    /// Optional scratch-arena budget in elements for streamed GEMMs.
    /// `None` lets each backend pick its default window depth (the
    /// wider PE-grid edge). A budget below the one-step-window floor
    /// clamps to the floor — the honest peak is still reported, and
    /// budget *enforcement* is the admission layer's job.
    pub scratch_budget_elems: Option<u64>,
}

/// The one place a streamed GEMM picks its window depth, shared by
/// all backends so they cannot drift: the deepest plan fitting the
/// budget when one is set (clamped to the one-step floor when even
/// that does not fit), otherwise the wider PE-grid edge.
fn gemm_stream_plan(engine: &TubGemm, a: &Matrix, b: &Matrix, cfg: StreamingConfig) -> StreamPlan {
    let (m, n, p) = (a.rows(), a.cols(), b.cols());
    match cfg.scratch_budget_elems {
        Some(budget) => {
            StreamPlan::for_budget(engine, m, n, p, budget).unwrap_or_else(|| StreamPlan::new(1))
        }
        None => StreamPlan::new(engine.grid_m().max(engine.grid_p()).min(n.max(1))),
    }
}

/// The pluggable backend contract: every worker owns one instance
/// (`Send`, no shared state) and executes whole jobs.
pub trait InferenceBackend: Send {
    /// Backend name for reports.
    fn name(&self) -> &'static str;

    /// Executes one job at the backend's full configured width.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors (shape, precision, capacity).
    fn execute(&mut self, job: &Job) -> Result<Execution, RuntimeError>;

    /// Executes one job on `num_arrays` of the backend's PE arrays —
    /// the array-slot scheduler's entry point. The contract: the run
    /// is **bit-identical** (outputs, cycles, shard accounting) to a
    /// backend configured with `num_arrays` executing the same job,
    /// so a granted width fully determines the result.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors (shape, precision, capacity).
    fn execute_on(&mut self, job: &Job, num_arrays: usize) -> Result<Execution, RuntimeError>;

    /// Schedule-cache counters, for backends that cache.
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }

    /// Switches the backend into (or out of) streaming execution.
    /// The contract: outputs and every modelled cycle figure are
    /// bit-identical to materialized execution — streaming changes
    /// only the memory shape, surfaced as
    /// [`Execution::peak_scratch_elems`]. The default ignores the
    /// request (for backends with nothing to stream).
    fn set_streaming(&mut self, _config: Option<StreamingConfig>) {}
}

/// The one place a sharded single-layer run (conv or GEMM, any
/// backend) folds into an [`Execution`]: latency is the critical path
/// (slowest shard plus reduction), the energy-bearing array-cycles
/// are the per-shard sum, and balance comes from the same cycle
/// vector — so the three backends cannot drift in how they merge.
fn sharded_execution(
    output: JobOutput,
    used_arrays: usize,
    per_shard_cycles: &[u64],
    reduction_cycles: u64,
) -> Execution {
    let max_shard = per_shard_cycles.iter().copied().max().unwrap_or(0);
    Execution {
        output,
        sim_cycles: max_shard + reduction_cycles,
        total_array_cycles: per_shard_cycles.iter().sum(),
        shards: used_arrays,
        shard_utilization: shard::balance(per_shard_cycles),
        per_shard_cycles: per_shard_cycles.to_vec(),
        reduction_cycles,
        window_cycles: 0,
        peak_scratch_elems: 0,
    }
}

/// The whole-network counterpart: per-layer critical paths sum, the
/// accumulator carries occupancy and balance across layers.
fn network_execution(
    output: DataCube,
    critical_path_cycles: u64,
    total_array_cycles: u64,
    accum: &ShardAccum,
) -> Execution {
    Execution {
        output: JobOutput::Cube(output),
        sim_cycles: critical_path_cycles,
        total_array_cycles,
        shards: accum.max_used(),
        shard_utilization: accum.balance(),
        per_shard_cycles: Vec::new(),
        reduction_cycles: 0,
        window_cycles: 0,
        peak_scratch_elems: 0,
    }
}

/// Which backend an engine instantiates per worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Cycle-accurate Tempus Core.
    TempusCycleAccurate,
    /// Cycle-accurate binary NVDLA baseline.
    NvdlaCycleAccurate,
    /// Fast functional model with closed-form Tempus latency.
    FastFunctional,
}

impl BackendKind {
    /// All backends, in comparison order.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::TempusCycleAccurate,
        BackendKind::NvdlaCycleAccurate,
        BackendKind::FastFunctional,
    ];

    /// Stable name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::TempusCycleAccurate => "tempus-cycle-accurate",
            BackendKind::NvdlaCycleAccurate => "nvdla-cycle-accurate",
            BackendKind::FastFunctional => "fast-functional",
        }
    }

    /// Builds one worker-owned backend instance modelling a DLA with
    /// `num_arrays` PE arrays.
    #[must_use]
    pub fn instantiate(
        self,
        tempus: TempusConfig,
        nvdla: NvdlaConfig,
        gemm_grid: (usize, usize),
        num_arrays: usize,
    ) -> Box<dyn InferenceBackend> {
        match self {
            BackendKind::TempusCycleAccurate => {
                Box::new(TempusBackend::new(tempus, gemm_grid).with_arrays(num_arrays))
            }
            BackendKind::NvdlaCycleAccurate => {
                Box::new(NvdlaBackend::new(nvdla, gemm_grid).with_arrays(num_arrays))
            }
            BackendKind::FastFunctional => {
                Box::new(FunctionalBackend::new(tempus, gemm_grid).with_arrays(num_arrays))
            }
        }
    }
}

/// Executes a whole network on a multi-array core: every layer is
/// sharded across the arrays, the job's latency is the sum of
/// per-layer critical paths, and shard occupancy/balance accumulate
/// across layers. Mirrors [`run_network`]'s SDP/PDP post-processing
/// exactly.
fn run_network_sharded<C: ConvCore>(
    core: &mut C,
    input: &DataCube,
    layers: &[NetworkLayer],
    num_arrays: usize,
) -> Result<(DataCube, u64, u64, ShardAccum), RuntimeError> {
    let mut x = input.clone();
    let mut critical = 0u64;
    let mut total_array = 0u64;
    let mut accum = ShardAccum::new();
    for layer in layers {
        let run = shard::convolve_sharded_with(
            core,
            &x,
            &layer.kernels,
            &layer.conv,
            num_arrays,
            |_| {},
        )?;
        critical += run.critical_path_cycles;
        total_array += run.stats.cycles;
        accum.add(&run.per_shard_cycles());
        let (requant, _) = sdp::apply(&run.output, &layer.sdp)?;
        x = match &layer.pool {
            Some(pool) => pdp::apply(&requant, pool)?,
            None => requant,
        };
    }
    Ok((x, critical, total_array, accum))
}

/// The streamed counterpart of [`run_network_sharded`] (and of the
/// single-array [`run_network`] loop): convolution runs unchanged on
/// the cycle-accurate core — streaming does not touch the conv
/// datapath, so cycles are identical — but SDP and pooling fuse per
/// conv output row through the bounded ring, never materializing the
/// intermediate requantized cube. Returns the network output, the
/// critical-path and array-cycle sums, the shard accumulator and the
/// fused-ring peak scratch (max over layers).
fn run_network_streamed<C: ConvCore>(
    core: &mut C,
    input: &DataCube,
    layers: &[NetworkLayer],
    num_arrays: usize,
) -> Result<(DataCube, u64, u64, ShardAccum, u64), RuntimeError> {
    let mut x = input.clone();
    let mut critical = 0u64;
    let mut total_array = 0u64;
    let mut accum = ShardAccum::new();
    let mut peak_scratch = 0u64;
    for layer in layers {
        let conv_out = if num_arrays > 1 {
            let run = shard::convolve_sharded_with(
                core,
                &x,
                &layer.kernels,
                &layer.conv,
                num_arrays,
                |_| {},
            )?;
            critical += run.critical_path_cycles;
            total_array += run.stats.cycles;
            accum.add(&run.per_shard_cycles());
            run.output
        } else {
            let run = core.convolve(&x, &layer.kernels, &layer.conv)?;
            critical += run.stats.cycles;
            total_array += run.stats.cycles;
            run.output
        };
        let fused = fused::fuse_post_conv(&conv_out, &layer.sdp, layer.pool.as_ref())?;
        peak_scratch = peak_scratch.max(fused.peak_scratch_elems);
        x = fused.output;
    }
    Ok((x, critical, total_array, accum, peak_scratch))
}

/// Cycle-accurate Tempus Core backend.
#[derive(Debug, Clone)]
pub struct TempusBackend {
    core: TempusCore,
    gemm: TubGemm,
    num_arrays: usize,
    streaming: Option<StreamingConfig>,
}

impl TempusBackend {
    /// Creates a single-array backend; the GEMM path uses a `grid` PE
    /// array at the core's precision.
    #[must_use]
    pub fn new(config: TempusConfig, grid: (usize, usize)) -> Self {
        TempusBackend {
            gemm: TubGemm::new(grid.0, grid.1, config.base.precision),
            core: TempusCore::new(config),
            num_arrays: 1,
            streaming: None,
        }
    }

    /// Models a DLA with `num_arrays` PE arrays (builder style): jobs
    /// are sharded across the arrays and latency is the critical path.
    #[must_use]
    pub fn with_arrays(mut self, num_arrays: usize) -> Self {
        self.num_arrays = num_arrays.max(1);
        self
    }
}

impl InferenceBackend for TempusBackend {
    fn name(&self) -> &'static str {
        BackendKind::TempusCycleAccurate.name()
    }

    fn execute(&mut self, job: &Job) -> Result<Execution, RuntimeError> {
        let arrays = self.num_arrays;
        self.execute_on(job, arrays)
    }

    fn execute_on(&mut self, job: &Job, num_arrays: usize) -> Result<Execution, RuntimeError> {
        match &job.payload {
            JobPayload::Conv {
                features,
                kernels,
                params,
            } => {
                if num_arrays > 1 {
                    let run = self
                        .core
                        .convolve_sharded(features, kernels, params, num_arrays)?;
                    let per_shard = run.per_shard_cycles();
                    let windows = self.core.last_tempus_stats().total_window_cycles;
                    Ok(sharded_execution(
                        JobOutput::Cube(run.output),
                        run.plan.used_arrays(),
                        &per_shard,
                        run.reduction_cycles,
                    )
                    .with_window_cycles(windows))
                } else {
                    let run = self.core.convolve(features, kernels, params)?;
                    let windows = self.core.last_tempus_stats().total_window_cycles;
                    Ok(
                        Execution::single(JobOutput::Cube(run.output), run.stats.cycles)
                            .with_window_cycles(windows),
                    )
                }
            }
            JobPayload::Gemm { a, b } => {
                if let Some(cfg) = self.streaming {
                    let plan = gemm_stream_plan(&self.gemm, a, b, cfg);
                    if num_arrays > 1 {
                        let streamed = self
                            .gemm
                            .multiply_sharded_streamed(a, b, num_arrays, &plan)?;
                        Ok(sharded_execution(
                            JobOutput::Matrix(streamed.run.output),
                            streamed.run.plan.used_arrays(),
                            &streamed.run.per_shard_cycles,
                            0,
                        )
                        .with_peak_scratch(streamed.stream.peak_scratch_elems))
                    } else {
                        let run = self.gemm.multiply_streamed(a, b, &plan)?;
                        Ok(
                            Execution::single(JobOutput::Matrix(run.output), run.stats.cycles)
                                .with_peak_scratch(run.stream.peak_scratch_elems),
                        )
                    }
                } else if num_arrays > 1 {
                    let run = self.gemm.multiply_sharded(a, b, num_arrays)?;
                    Ok(sharded_execution(
                        JobOutput::Matrix(run.output),
                        run.plan.used_arrays(),
                        &run.per_shard_cycles,
                        0,
                    ))
                } else {
                    let run = self.gemm.multiply(a, b)?;
                    Ok(Execution::single(
                        JobOutput::Matrix(run.output),
                        run.stats.cycles,
                    ))
                }
            }
            JobPayload::Network { input, layers } => {
                if self.streaming.is_some() {
                    let (output, critical, total_array, accum, peak) =
                        run_network_streamed(&mut self.core, input, layers, num_arrays)?;
                    Ok(if num_arrays > 1 {
                        network_execution(output, critical, total_array, &accum)
                    } else {
                        Execution::single(JobOutput::Cube(output), critical)
                    }
                    .with_peak_scratch(peak))
                } else if num_arrays > 1 {
                    let (output, critical, total_array, accum) =
                        run_network_sharded(&mut self.core, input, layers, num_arrays)?;
                    Ok(network_execution(output, critical, total_array, &accum))
                } else {
                    let run = run_network(&mut self.core, input, layers)?;
                    let cycles = run.total_cycles();
                    Ok(Execution::single(JobOutput::Cube(run.output), cycles))
                }
            }
        }
    }

    fn set_streaming(&mut self, config: Option<StreamingConfig>) {
        self.streaming = config;
    }
}

/// Cycle-accurate binary NVDLA baseline backend.
#[derive(Debug, Clone)]
pub struct NvdlaBackend {
    core: NvdlaConvCore,
    grid: (usize, usize),
    num_arrays: usize,
    streaming: Option<StreamingConfig>,
}

impl NvdlaBackend {
    /// Creates a single-array backend.
    #[must_use]
    pub fn new(config: NvdlaConfig, grid: (usize, usize)) -> Self {
        NvdlaBackend {
            core: NvdlaConvCore::new(config),
            grid,
            num_arrays: 1,
            streaming: None,
        }
    }

    /// Models a DLA with `num_arrays` MAC arrays (builder style).
    #[must_use]
    pub fn with_arrays(mut self, num_arrays: usize) -> Self {
        self.num_arrays = num_arrays.max(1);
        self
    }

    /// Binary outer-product GEMM cycle model: one rank-1 update per
    /// cycle per grid tile (no temporal streaming).
    fn binary_gemm_cycles(&self, a: &Matrix, b: &Matrix) -> u64 {
        let m_tiles = a.rows().div_ceil(self.grid.0) as u64;
        let p_tiles = b.cols().div_ceil(self.grid.1) as u64;
        m_tiles * p_tiles * a.cols() as u64
    }

    /// Per-shard binary GEMM cycles under the multi-array tile split:
    /// the sharded axis's tile count partitions, the other axis stays
    /// whole.
    fn sharded_binary_gemm_cycles(
        &self,
        a: &Matrix,
        b: &Matrix,
        num_arrays: usize,
    ) -> (usize, Vec<u64>) {
        let m_tiles = a.rows().div_ceil(self.grid.0);
        let p_tiles = b.cols().div_ceil(self.grid.1);
        let plan = shard::plan_gemm(m_tiles, p_tiles, num_arrays);
        let n = a.cols() as u64;
        let per_shard = match plan.axis {
            shard::GemmAxis::Single => vec![self.binary_gemm_cycles(a, b)],
            shard::GemmAxis::Cols => plan
                .tiles
                .iter()
                .map(|&(lo, hi)| m_tiles as u64 * (hi - lo) as u64 * n)
                .collect(),
            shard::GemmAxis::Rows => plan
                .tiles
                .iter()
                .map(|&(lo, hi)| (hi - lo) as u64 * p_tiles as u64 * n)
                .collect(),
        };
        (plan.used_arrays(), per_shard)
    }
}

impl InferenceBackend for NvdlaBackend {
    fn name(&self) -> &'static str {
        BackendKind::NvdlaCycleAccurate.name()
    }

    fn execute(&mut self, job: &Job) -> Result<Execution, RuntimeError> {
        let arrays = self.num_arrays;
        self.execute_on(job, arrays)
    }

    fn execute_on(&mut self, job: &Job, num_arrays: usize) -> Result<Execution, RuntimeError> {
        match &job.payload {
            JobPayload::Conv {
                features,
                kernels,
                params,
            } => {
                if num_arrays > 1 {
                    let run = shard::convolve_sharded_with(
                        &mut self.core,
                        features,
                        kernels,
                        params,
                        num_arrays,
                        |_| {},
                    )?;
                    let per_shard = run.per_shard_cycles();
                    Ok(sharded_execution(
                        JobOutput::Cube(run.output),
                        run.plan.used_arrays(),
                        &per_shard,
                        run.reduction_cycles,
                    ))
                } else {
                    let run = self.core.convolve(features, kernels, params)?;
                    Ok(Execution::single(
                        JobOutput::Cube(run.output),
                        run.stats.cycles,
                    ))
                }
            }
            JobPayload::Gemm { a, b } => {
                let precision = self.core.config().precision;
                check_matrix(a, precision)?;
                check_matrix(b, precision)?;
                let (shards, per_shard) = self.sharded_binary_gemm_cycles(a, b, num_arrays);
                if let Some(cfg) = self.streaming {
                    // The binary cycle model is untouched by streaming
                    // (staging hides behind compute); only the product
                    // runs through the bounded arena.
                    let engine = TubGemm::new(self.grid.0, self.grid.1, precision);
                    let plan = gemm_stream_plan(&engine, a, b, cfg);
                    let (output, stream) = streaming::stream_product(a, b, self.grid, &plan)?;
                    Ok(
                        sharded_execution(JobOutput::Matrix(output), shards, &per_shard, 0)
                            .with_peak_scratch(stream.peak_scratch_elems),
                    )
                } else {
                    let output = a.multiply(b)?;
                    Ok(sharded_execution(
                        JobOutput::Matrix(output),
                        shards,
                        &per_shard,
                        0,
                    ))
                }
            }
            JobPayload::Network { input, layers } => {
                if self.streaming.is_some() {
                    let (output, critical, total_array, accum, peak) =
                        run_network_streamed(&mut self.core, input, layers, num_arrays)?;
                    Ok(if num_arrays > 1 {
                        network_execution(output, critical, total_array, &accum)
                    } else {
                        Execution::single(JobOutput::Cube(output), critical)
                    }
                    .with_peak_scratch(peak))
                } else if num_arrays > 1 {
                    let (output, critical, total_array, accum) =
                        run_network_sharded(&mut self.core, input, layers, num_arrays)?;
                    Ok(network_execution(output, critical, total_array, &accum))
                } else {
                    let run = run_network(&mut self.core, input, layers)?;
                    let cycles = run.total_cycles();
                    Ok(Execution::single(JobOutput::Cube(run.output), cycles))
                }
            }
        }
    }

    fn set_streaming(&mut self, config: Option<StreamingConfig>) {
        self.streaming = config;
    }
}

fn check_matrix(
    m: &Matrix,
    precision: tempus_arith::IntPrecision,
) -> Result<(), tempus_arith::ArithError> {
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            precision.check(m.get(i, j))?;
        }
    }
    Ok(())
}

/// Fast functional backend: golden-model outputs, closed-form Tempus
/// latency, per-worker schedule caching.
#[derive(Debug, Clone)]
pub struct FunctionalBackend {
    config: TempusConfig,
    gemm: TubGemm,
    cache: ScheduleCache,
    num_arrays: usize,
    streaming: Option<StreamingConfig>,
}

impl FunctionalBackend {
    /// Creates a single-array backend with an empty schedule cache.
    #[must_use]
    pub fn new(config: TempusConfig, grid: (usize, usize)) -> Self {
        FunctionalBackend {
            gemm: TubGemm::new(grid.0, grid.1, config.base.precision),
            config,
            cache: ScheduleCache::new(),
            num_arrays: 1,
            streaming: None,
        }
    }

    /// Models a DLA with `num_arrays` PE arrays (builder style): the
    /// closed-form latency reproduces the sharded critical path of the
    /// cycle-accurate multi-array engine exactly.
    #[must_use]
    pub fn with_arrays(mut self, num_arrays: usize) -> Self {
        self.num_arrays = num_arrays.max(1);
        self
    }
}

impl InferenceBackend for FunctionalBackend {
    fn name(&self) -> &'static str {
        BackendKind::FastFunctional.name()
    }

    fn execute(&mut self, job: &Job) -> Result<Execution, RuntimeError> {
        let arrays = self.num_arrays;
        self.execute_on(job, arrays)
    }

    fn execute_on(&mut self, job: &Job, num_arrays: usize) -> Result<Execution, RuntimeError> {
        match &job.payload {
            JobPayload::Conv {
                features,
                kernels,
                params,
            } => {
                tempus_nvdla::conv::check_operands(features, kernels, self.config.base.precision)?;
                if num_arrays > 1 {
                    let latency = self.cache.predict_sharded(
                        features,
                        kernels,
                        params,
                        &self.config,
                        num_arrays,
                    )?;
                    let output = direct_conv(features, kernels, params)?;
                    Ok(sharded_execution(
                        JobOutput::Cube(output),
                        latency.plan.used_arrays(),
                        &latency.per_shard_cycles,
                        latency.reduction_cycles,
                    ))
                } else {
                    let latency = self
                        .cache
                        .predict(features, kernels, params, &self.config)?;
                    let output = direct_conv(features, kernels, params)?;
                    Ok(Execution::single(
                        JobOutput::Cube(output),
                        latency.total_cycles,
                    ))
                }
            }
            JobPayload::Gemm { a, b } => {
                check_matrix(a, self.config.base.precision)?;
                check_matrix(b, self.config.base.precision)?;
                if let Some(cfg) = self.streaming {
                    let plan = gemm_stream_plan(&self.gemm, a, b, cfg);
                    // The product streams through the bounded arena;
                    // the closed-form streamed model reuses the
                    // materialized cycle model verbatim (double
                    // buffering hides staging), so cycles cannot
                    // drift from the cycle-accurate backends.
                    let (output, stream) = streaming::stream_product(
                        a,
                        b,
                        (self.gemm.grid_m(), self.gemm.grid_p()),
                        &plan,
                    )?;
                    let model = self.gemm.streamed_cycle_model(a, b, num_arrays, &plan);
                    Ok(sharded_execution(
                        JobOutput::Matrix(output),
                        model.plan.used_arrays(),
                        &model.per_shard_cycles,
                        0,
                    )
                    .with_peak_scratch(stream.peak_scratch_elems))
                } else {
                    let output = a.multiply(b)?;
                    // One closed-form window model serves both shapes: at
                    // one array the plan is `Single` and the lone shard's
                    // cycles equal `TubGemm::multiply`'s accounting, so
                    // there is no separate single-array copy to drift.
                    let (plan, per_shard) = self.gemm.sharded_cycle_model(a, b, num_arrays);
                    Ok(sharded_execution(
                        JobOutput::Matrix(output),
                        plan.used_arrays(),
                        &per_shard,
                        0,
                    ))
                }
            }
            JobPayload::Network { input, layers } => {
                if self.streaming.is_some() {
                    let (output, critical, total_array, accum, peak) =
                        self.run_network_functional_streamed(input, layers, num_arrays)?;
                    Ok(if num_arrays > 1 {
                        network_execution(output, critical, total_array, &accum)
                    } else {
                        Execution::single(JobOutput::Cube(output), critical)
                    }
                    .with_peak_scratch(peak))
                } else {
                    let (output, critical, total_array, accum) =
                        self.run_network_functional(input, layers, num_arrays)?;
                    if num_arrays > 1 {
                        Ok(network_execution(output, critical, total_array, &accum))
                    } else {
                        Ok(Execution::single(JobOutput::Cube(output), critical))
                    }
                }
            }
        }
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }

    fn set_streaming(&mut self, config: Option<StreamingConfig>) {
        self.streaming = config;
    }
}

impl FunctionalBackend {
    /// Network execution mirroring
    /// [`tempus_nvdla::network::run_network`] with the convolution
    /// replaced by golden model + closed-form (sharded) latency.
    /// Returns `(output, critical_path, total_array_cycles, accum)`;
    /// on a single array the two cycle figures coincide.
    fn run_network_functional(
        &mut self,
        input: &DataCube,
        layers: &[NetworkLayer],
        num_arrays: usize,
    ) -> Result<(DataCube, u64, u64, ShardAccum), RuntimeError> {
        let mut x = input.clone();
        let mut critical = 0u64;
        let mut total_array = 0u64;
        let mut accum = ShardAccum::new();
        for layer in layers {
            tempus_nvdla::conv::check_operands(&x, &layer.kernels, self.config.base.precision)?;
            if num_arrays > 1 {
                let latency = self.cache.predict_sharded(
                    &x,
                    &layer.kernels,
                    &layer.conv,
                    &self.config,
                    num_arrays,
                )?;
                critical += latency.critical_path_cycles;
                total_array += latency.total_array_cycles;
                accum.add(&latency.per_shard_cycles);
            } else {
                let latency = self
                    .cache
                    .predict(&x, &layer.kernels, &layer.conv, &self.config)?;
                critical += latency.total_cycles;
                total_array += latency.total_cycles;
            }
            let conv_out = direct_conv(&x, &layer.kernels, &layer.conv)?;
            let (requant, _) = sdp::apply(&conv_out, &layer.sdp)?;
            x = match &layer.pool {
                Some(pool) => pdp::apply(&requant, pool)?,
                None => requant,
            };
        }
        Ok((x, critical, total_array, accum))
    }

    /// The fully fused streamed counterpart of
    /// [`FunctionalBackend::run_network_functional`]: each layer runs
    /// through [`fused::run_layer_fused`] — the conv output cube never
    /// materializes — while the memoized closed-form latency
    /// ([`ScheduleCache::predict_streamed`] per layer) is unchanged
    /// from the materialized prediction. Also returns the fused-ring
    /// peak scratch (max over layers).
    fn run_network_functional_streamed(
        &mut self,
        input: &DataCube,
        layers: &[NetworkLayer],
        num_arrays: usize,
    ) -> Result<(DataCube, u64, u64, ShardAccum, u64), RuntimeError> {
        let mut x = input.clone();
        let mut critical = 0u64;
        let mut total_array = 0u64;
        let mut accum = ShardAccum::new();
        let mut peak_scratch = 0u64;
        for layer in layers {
            tempus_nvdla::conv::check_operands(&x, &layer.kernels, self.config.base.precision)?;
            if num_arrays > 1 {
                let latency = self.cache.predict_sharded(
                    &x,
                    &layer.kernels,
                    &layer.conv,
                    &self.config,
                    num_arrays,
                )?;
                critical += latency.critical_path_cycles;
                total_array += latency.total_array_cycles;
                accum.add(&latency.per_shard_cycles);
            } else {
                let streamed =
                    self.cache
                        .predict_streamed(&x, &layer.kernels, &layer.conv, &self.config)?;
                critical += streamed.latency.total_cycles;
                total_array += streamed.latency.total_cycles;
            }
            let fused = fused::run_layer_fused(&x, layer)?;
            peak_scratch = peak_scratch.max(fused.peak_scratch_elems);
            x = fused.output;
        }
        Ok((x, critical, total_array, accum, peak_scratch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempus_nvdla::conv::ConvParams;
    use tempus_nvdla::cube::KernelSet;

    fn conv_job(id: u64) -> Job {
        let features = DataCube::from_fn(6, 6, 8, |x, y, c| {
            ((x as i32 * 31 + y as i32 * 17 + c as i32 * 7) % 255) - 127
        });
        let kernels = KernelSet::from_fn(8, 3, 3, 8, |k, r, s, c| {
            ((k as i32 * 13 + r as i32 * 5 + s as i32 * 3 + c as i32 * 11) % 255) - 127
        });
        Job::conv(
            id,
            "conv",
            features,
            kernels,
            ConvParams::unit_stride_same(3),
        )
    }

    fn gemm_job(id: u64) -> Job {
        let a = Matrix::from_fn(7, 9, |i, j| ((i as i32 * 31 + j as i32 * 17) % 255) - 127);
        let b = Matrix::from_fn(9, 5, |i, j| ((i as i32 * 13 + j as i32 * 41) % 255) - 127);
        Job::gemm(id, "gemm", a, b)
    }

    fn network_job(id: u64) -> Job {
        let input = DataCube::from_fn(6, 6, 4, |x, y, c| {
            ((x as i32 * 31 + y as i32 * 17 + c as i32 * 7) % 255) - 127
        });
        let k1 = KernelSet::from_fn(8, 3, 3, 4, |k, r, s, c| {
            ((k as i32 * 13 + r as i32 * 5 + s as i32 * 3 + c as i32 * 11) % 255) - 127
        });
        let k2 = KernelSet::from_fn(4, 3, 3, 8, |k, r, s, c| {
            ((k as i32 * 7 + r as i32 * 3 + s as i32 * 5 + c as i32) % 255) - 127
        });
        let layers = vec![
            NetworkLayer::conv_relu(
                "l1",
                k1,
                ConvParams::unit_stride_same(3),
                6,
                tempus_arith::IntPrecision::Int8,
            ),
            NetworkLayer::conv_relu(
                "l2",
                k2,
                ConvParams::unit_stride_same(3),
                6,
                tempus_arith::IntPrecision::Int8,
            )
            .with_pool(tempus_nvdla::pdp::PoolParams::max(2)),
        ];
        Job::network(id, "net", input, layers)
    }

    #[test]
    fn functional_conv_matches_tempus_exactly() {
        let mut tempus = TempusBackend::new(TempusConfig::nv_small(), (4, 4));
        let mut fast = FunctionalBackend::new(TempusConfig::nv_small(), (4, 4));
        let job = conv_job(1);
        let t = tempus.execute(&job).unwrap();
        let f = fast.execute(&job).unwrap();
        assert_eq!(t.output, f.output);
        assert_eq!(t.sim_cycles, f.sim_cycles);
    }

    #[test]
    fn functional_gemm_matches_tempus_exactly() {
        let mut tempus = TempusBackend::new(TempusConfig::nv_small(), (4, 4));
        let mut fast = FunctionalBackend::new(TempusConfig::nv_small(), (4, 4));
        let job = gemm_job(2);
        let t = tempus.execute(&job).unwrap();
        let f = fast.execute(&job).unwrap();
        assert_eq!(t.output, f.output);
        assert_eq!(t.sim_cycles, f.sim_cycles);
        assert_eq!(t.output.digest(), f.output.digest());
    }

    #[test]
    fn nvdla_agrees_on_outputs_with_different_cycles() {
        let mut tempus = TempusBackend::new(TempusConfig::nv_small(), (4, 4));
        let mut nvdla = NvdlaBackend::new(NvdlaConfig::nv_small(), (4, 4));
        for job in [conv_job(3), gemm_job(4)] {
            let t = tempus.execute(&job).unwrap();
            let n = nvdla.execute(&job).unwrap();
            assert_eq!(t.output, n.output, "{}", job.name);
            assert!(t.sim_cycles > n.sim_cycles, "tub pays a latency premium");
        }
    }

    #[test]
    fn out_of_precision_jobs_are_rejected() {
        let a = Matrix::from_fn(2, 2, |_, _| 1000);
        let b = Matrix::from_fn(2, 2, |_, _| 1);
        let job = Job::gemm(9, "hot", a, b);
        let mut fast = FunctionalBackend::new(TempusConfig::nv_small(), (4, 4));
        assert!(matches!(fast.execute(&job), Err(RuntimeError::Arith(_))));
    }

    #[test]
    fn multi_array_backends_agree_on_outputs_and_cycles() {
        // Tempus and functional backends must agree on the sharded
        // critical path, array-cycles, occupancy and balance for every
        // array count; NVDLA agrees on outputs.
        for arrays in [1usize, 2, 3, 4, 8] {
            let mut tempus =
                TempusBackend::new(TempusConfig::nv_small(), (4, 4)).with_arrays(arrays);
            let mut fast =
                FunctionalBackend::new(TempusConfig::nv_small(), (4, 4)).with_arrays(arrays);
            let mut nvdla = NvdlaBackend::new(NvdlaConfig::nv_small(), (4, 4)).with_arrays(arrays);
            for job in [conv_job(10), gemm_job(11)] {
                let t = tempus.execute(&job).unwrap();
                let f = fast.execute(&job).unwrap();
                let n = nvdla.execute(&job).unwrap();
                assert_eq!(t.output, f.output, "{} arrays={arrays}", job.name);
                assert_eq!(t.output, n.output, "{} arrays={arrays}", job.name);
                assert_eq!(t.sim_cycles, f.sim_cycles, "{} arrays={arrays}", job.name);
                assert_eq!(
                    t.total_array_cycles, f.total_array_cycles,
                    "{} arrays={arrays}",
                    job.name
                );
                assert_eq!(t.shards, f.shards, "{} arrays={arrays}", job.name);
                assert_eq!(
                    t.shard_utilization.to_bits(),
                    f.shard_utilization.to_bits(),
                    "{} arrays={arrays}",
                    job.name
                );
            }
        }
    }

    #[test]
    fn multi_array_conv_cuts_latency_and_conserves_output() {
        // 8 kernels on an 8-cell array is a single kernel group, so 2
        // arrays fall back to channel-group splitting (32 channels =
        // 4 groups) with the cross-array reduction stage.
        let features = DataCube::from_fn(6, 6, 32, |x, y, c| {
            ((x as i32 * 31 + y as i32 * 17 + c as i32 * 7) % 255) - 127
        });
        let kernels = tempus_nvdla::cube::KernelSet::from_fn(8, 3, 3, 32, |k, r, s, c| {
            ((k as i32 * 13 + r as i32 * 5 + s as i32 * 3 + c as i32 * 11) % 255) - 127
        });
        let job = Job::conv(
            20,
            "wide-conv",
            features,
            kernels,
            tempus_nvdla::conv::ConvParams::valid(),
        );
        let mut single = TempusBackend::new(TempusConfig::nv_small(), (4, 4));
        let mut dual = TempusBackend::new(TempusConfig::nv_small(), (4, 4)).with_arrays(2);
        let s = single.execute(&job).unwrap();
        let d = dual.execute(&job).unwrap();
        assert_eq!(s.output, d.output);
        assert_eq!(d.shards, 2);
        assert!(d.sim_cycles < s.sim_cycles);
        assert!(d.total_array_cycles >= s.sim_cycles);
    }

    #[test]
    fn streaming_matches_materialized_across_backends() {
        // Streaming is a memory-shape transform only: outputs and
        // every modelled cycle figure are bit-identical on all three
        // backends, single- and multi-array; only the peak-scratch
        // figure distinguishes the runs.
        for kind in BackendKind::ALL {
            for arrays in [1usize, 3] {
                let mut plain = kind.instantiate(
                    TempusConfig::nv_small(),
                    NvdlaConfig::nv_small(),
                    (4, 4),
                    arrays,
                );
                let mut streamed = kind.instantiate(
                    TempusConfig::nv_small(),
                    NvdlaConfig::nv_small(),
                    (4, 4),
                    arrays,
                );
                streamed.set_streaming(Some(StreamingConfig::default()));
                for job in [gemm_job(30), network_job(31)] {
                    let p = plain.execute(&job).unwrap();
                    let s = streamed.execute(&job).unwrap();
                    let tag = format!("{} {} arrays={arrays}", kind.name(), job.name);
                    assert_eq!(p.output, s.output, "{tag}");
                    assert_eq!(p.sim_cycles, s.sim_cycles, "{tag}");
                    assert_eq!(p.total_array_cycles, s.total_array_cycles, "{tag}");
                    assert_eq!(p.shards, s.shards, "{tag}");
                    assert_eq!(p.peak_scratch_elems, 0, "{tag}");
                    assert!(s.peak_scratch_elems > 0, "{tag}");
                }
            }
        }
    }

    #[test]
    fn scratch_budget_caps_streamed_gemm_arena() {
        let mut backend = FunctionalBackend::new(TempusConfig::nv_small(), (4, 4));
        backend.set_streaming(Some(StreamingConfig {
            scratch_budget_elems: Some(200),
        }));
        let run = backend.execute(&gemm_job(40)).unwrap();
        assert!(run.peak_scratch_elems > 0 && run.peak_scratch_elems <= 200);
        // An infeasible budget clamps to the one-step-window floor
        // and reports the honest (over-budget) peak; rejecting such
        // jobs is the serving layer's admission decision.
        backend.set_streaming(Some(StreamingConfig {
            scratch_budget_elems: Some(1),
        }));
        let clamped = backend.execute(&gemm_job(41)).unwrap();
        assert!(clamped.peak_scratch_elems > 1);
    }

    #[test]
    fn backend_kinds_instantiate() {
        for kind in BackendKind::ALL {
            let mut backend =
                kind.instantiate(TempusConfig::nv_small(), NvdlaConfig::nv_small(), (4, 4), 2);
            let run = backend.execute(&conv_job(7)).unwrap();
            assert!(run.sim_cycles > 0);
            assert_eq!(backend.name(), kind.name());
        }
    }
}
