//! Pluggable inference backends behind one trait.
//!
//! Three implementations of [`InferenceBackend`]:
//!
//! * [`TempusBackend`] — the cycle-accurate Tempus Core simulation
//!   (authoritative cycles, slowest);
//! * [`NvdlaBackend`] — the cycle-accurate binary NVDLA baseline;
//! * [`FunctionalBackend`] — computes **bit-identical outputs**
//!   through the golden functional models while reporting Tempus Core
//!   latency via the closed-form model (with per-worker stripe
//!   schedule caching) — orders of magnitude faster, for large
//!   sweeps.
//!
//! The equivalence contract — same outputs everywhere, and
//! `FunctionalBackend` cycles exactly equal to `TempusBackend` cycles
//! — is enforced by the workspace's property tests.

use tempus_core::gemm::{Matrix, TubGemm};
use tempus_core::schedule::{CacheStats, ScheduleCache};
use tempus_core::{TempusConfig, TempusCore};
use tempus_nvdla::config::NvdlaConfig;
use tempus_nvdla::conv::direct_conv;
use tempus_nvdla::cube::DataCube;
use tempus_nvdla::network::{run_network, NetworkLayer};
use tempus_nvdla::pdp;
use tempus_nvdla::pipeline::{ConvCore, NvdlaConvCore};
use tempus_nvdla::sdp;

use crate::error::RuntimeError;
use crate::job::{Job, JobOutput, JobPayload};

/// Output plus the backend's modelled cycle count.
#[derive(Debug, Clone)]
pub struct Execution {
    /// The computed output.
    pub output: JobOutput,
    /// Modelled datapath cycles.
    pub sim_cycles: u64,
}

/// The pluggable backend contract: every worker owns one instance
/// (`Send`, no shared state) and executes whole jobs.
pub trait InferenceBackend: Send {
    /// Backend name for reports.
    fn name(&self) -> &'static str;

    /// Executes one job.
    ///
    /// # Errors
    ///
    /// Propagates substrate errors (shape, precision, capacity).
    fn execute(&mut self, job: &Job) -> Result<Execution, RuntimeError>;

    /// Schedule-cache counters, for backends that cache.
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }
}

/// Which backend an engine instantiates per worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Cycle-accurate Tempus Core.
    TempusCycleAccurate,
    /// Cycle-accurate binary NVDLA baseline.
    NvdlaCycleAccurate,
    /// Fast functional model with closed-form Tempus latency.
    FastFunctional,
}

impl BackendKind {
    /// All backends, in comparison order.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::TempusCycleAccurate,
        BackendKind::NvdlaCycleAccurate,
        BackendKind::FastFunctional,
    ];

    /// Stable name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::TempusCycleAccurate => "tempus-cycle-accurate",
            BackendKind::NvdlaCycleAccurate => "nvdla-cycle-accurate",
            BackendKind::FastFunctional => "fast-functional",
        }
    }

    /// Builds one worker-owned backend instance.
    #[must_use]
    pub fn instantiate(
        self,
        tempus: TempusConfig,
        nvdla: NvdlaConfig,
        gemm_grid: (usize, usize),
    ) -> Box<dyn InferenceBackend> {
        match self {
            BackendKind::TempusCycleAccurate => Box::new(TempusBackend::new(tempus, gemm_grid)),
            BackendKind::NvdlaCycleAccurate => Box::new(NvdlaBackend::new(nvdla, gemm_grid)),
            BackendKind::FastFunctional => Box::new(FunctionalBackend::new(tempus, gemm_grid)),
        }
    }
}

/// Cycle-accurate Tempus Core backend.
#[derive(Debug, Clone)]
pub struct TempusBackend {
    core: TempusCore,
    gemm: TubGemm,
}

impl TempusBackend {
    /// Creates the backend; the GEMM path uses a `grid` PE array at
    /// the core's precision.
    #[must_use]
    pub fn new(config: TempusConfig, grid: (usize, usize)) -> Self {
        TempusBackend {
            gemm: TubGemm::new(grid.0, grid.1, config.base.precision),
            core: TempusCore::new(config),
        }
    }
}

impl InferenceBackend for TempusBackend {
    fn name(&self) -> &'static str {
        BackendKind::TempusCycleAccurate.name()
    }

    fn execute(&mut self, job: &Job) -> Result<Execution, RuntimeError> {
        match &job.payload {
            JobPayload::Conv {
                features,
                kernels,
                params,
            } => {
                let run = self.core.convolve(features, kernels, params)?;
                Ok(Execution {
                    output: JobOutput::Cube(run.output),
                    sim_cycles: run.stats.cycles,
                })
            }
            JobPayload::Gemm { a, b } => {
                let run = self.gemm.multiply(a, b)?;
                Ok(Execution {
                    output: JobOutput::Matrix(run.output),
                    sim_cycles: run.stats.cycles,
                })
            }
            JobPayload::Network { input, layers } => {
                let run = run_network(&mut self.core, input, layers)?;
                Ok(Execution {
                    sim_cycles: run.total_cycles(),
                    output: JobOutput::Cube(run.output),
                })
            }
        }
    }
}

/// Cycle-accurate binary NVDLA baseline backend.
#[derive(Debug, Clone)]
pub struct NvdlaBackend {
    core: NvdlaConvCore,
    grid: (usize, usize),
}

impl NvdlaBackend {
    /// Creates the backend.
    #[must_use]
    pub fn new(config: NvdlaConfig, grid: (usize, usize)) -> Self {
        NvdlaBackend {
            core: NvdlaConvCore::new(config),
            grid,
        }
    }

    /// Binary outer-product GEMM cycle model: one rank-1 update per
    /// cycle per grid tile (no temporal streaming).
    fn binary_gemm_cycles(&self, a: &Matrix, b: &Matrix) -> u64 {
        let m_tiles = a.rows().div_ceil(self.grid.0) as u64;
        let p_tiles = b.cols().div_ceil(self.grid.1) as u64;
        m_tiles * p_tiles * a.cols() as u64
    }
}

impl InferenceBackend for NvdlaBackend {
    fn name(&self) -> &'static str {
        BackendKind::NvdlaCycleAccurate.name()
    }

    fn execute(&mut self, job: &Job) -> Result<Execution, RuntimeError> {
        match &job.payload {
            JobPayload::Conv {
                features,
                kernels,
                params,
            } => {
                let run = self.core.convolve(features, kernels, params)?;
                Ok(Execution {
                    output: JobOutput::Cube(run.output),
                    sim_cycles: run.stats.cycles,
                })
            }
            JobPayload::Gemm { a, b } => {
                let precision = self.core.config().precision;
                check_matrix(a, precision)?;
                check_matrix(b, precision)?;
                let output = a.multiply(b)?;
                Ok(Execution {
                    sim_cycles: self.binary_gemm_cycles(a, b),
                    output: JobOutput::Matrix(output),
                })
            }
            JobPayload::Network { input, layers } => {
                let run = run_network(&mut self.core, input, layers)?;
                Ok(Execution {
                    sim_cycles: run.total_cycles(),
                    output: JobOutput::Cube(run.output),
                })
            }
        }
    }
}

fn check_matrix(
    m: &Matrix,
    precision: tempus_arith::IntPrecision,
) -> Result<(), tempus_arith::ArithError> {
    for i in 0..m.rows() {
        for j in 0..m.cols() {
            precision.check(m.get(i, j))?;
        }
    }
    Ok(())
}

/// Fast functional backend: golden-model outputs, closed-form Tempus
/// latency, per-worker schedule caching.
#[derive(Debug, Clone)]
pub struct FunctionalBackend {
    config: TempusConfig,
    gemm: TubGemm,
    cache: ScheduleCache,
}

impl FunctionalBackend {
    /// Creates the backend with an empty schedule cache.
    #[must_use]
    pub fn new(config: TempusConfig, grid: (usize, usize)) -> Self {
        FunctionalBackend {
            gemm: TubGemm::new(grid.0, grid.1, config.base.precision),
            config,
            cache: ScheduleCache::new(),
        }
    }

    /// Closed-form tubGEMM cycle model, exactly mirroring
    /// [`TubGemm::multiply`]'s accounting: per grid tile and outer
    /// step, the window is the largest streamed `|B|` magnitude under
    /// 2s-unary encoding, floored at one cycle.
    fn gemm_cycles(&self, a: &Matrix, b: &Matrix) -> u64 {
        let mut cycles = 0u64;
        let m_tiles = a.rows().div_ceil(self.gemm.grid_m()) as u64;
        for p0 in (0..b.cols()).step_by(self.gemm.grid_p()) {
            let p1 = (p0 + self.gemm.grid_p()).min(b.cols());
            for t in 0..a.cols() {
                let window = (p0..p1)
                    .map(|j| b.get(t, j).unsigned_abs().div_ceil(2))
                    .max()
                    .unwrap_or(0);
                cycles += u64::from(window.max(1));
            }
        }
        cycles * m_tiles
    }
}

impl InferenceBackend for FunctionalBackend {
    fn name(&self) -> &'static str {
        BackendKind::FastFunctional.name()
    }

    fn execute(&mut self, job: &Job) -> Result<Execution, RuntimeError> {
        match &job.payload {
            JobPayload::Conv {
                features,
                kernels,
                params,
            } => {
                tempus_nvdla::conv::check_operands(features, kernels, self.config.base.precision)?;
                let latency = self
                    .cache
                    .predict(features, kernels, params, &self.config)?;
                let output = direct_conv(features, kernels, params)?;
                Ok(Execution {
                    output: JobOutput::Cube(output),
                    sim_cycles: latency.total_cycles,
                })
            }
            JobPayload::Gemm { a, b } => {
                check_matrix(a, self.config.base.precision)?;
                check_matrix(b, self.config.base.precision)?;
                let output = a.multiply(b)?;
                Ok(Execution {
                    sim_cycles: self.gemm_cycles(a, b),
                    output: JobOutput::Matrix(output),
                })
            }
            JobPayload::Network { input, layers } => {
                let (output, cycles) = self.run_network_functional(input, layers)?;
                Ok(Execution {
                    output: JobOutput::Cube(output),
                    sim_cycles: cycles,
                })
            }
        }
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        Some(self.cache.stats())
    }
}

impl FunctionalBackend {
    /// Network execution mirroring
    /// [`tempus_nvdla::network::run_network`] with the convolution
    /// replaced by golden model + closed-form latency.
    fn run_network_functional(
        &mut self,
        input: &DataCube,
        layers: &[NetworkLayer],
    ) -> Result<(DataCube, u64), RuntimeError> {
        let mut x = input.clone();
        let mut cycles = 0u64;
        for layer in layers {
            tempus_nvdla::conv::check_operands(&x, &layer.kernels, self.config.base.precision)?;
            let latency = self
                .cache
                .predict(&x, &layer.kernels, &layer.conv, &self.config)?;
            cycles += latency.total_cycles;
            let conv_out = direct_conv(&x, &layer.kernels, &layer.conv)?;
            let (requant, _) = sdp::apply(&conv_out, &layer.sdp)?;
            x = match &layer.pool {
                Some(pool) => pdp::apply(&requant, pool)?,
                None => requant,
            };
        }
        Ok((x, cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempus_nvdla::conv::ConvParams;
    use tempus_nvdla::cube::KernelSet;

    fn conv_job(id: u64) -> Job {
        let features = DataCube::from_fn(6, 6, 8, |x, y, c| {
            ((x as i32 * 31 + y as i32 * 17 + c as i32 * 7) % 255) - 127
        });
        let kernels = KernelSet::from_fn(8, 3, 3, 8, |k, r, s, c| {
            ((k as i32 * 13 + r as i32 * 5 + s as i32 * 3 + c as i32 * 11) % 255) - 127
        });
        Job::conv(
            id,
            "conv",
            features,
            kernels,
            ConvParams::unit_stride_same(3),
        )
    }

    fn gemm_job(id: u64) -> Job {
        let a = Matrix::from_fn(7, 9, |i, j| ((i as i32 * 31 + j as i32 * 17) % 255) - 127);
        let b = Matrix::from_fn(9, 5, |i, j| ((i as i32 * 13 + j as i32 * 41) % 255) - 127);
        Job::gemm(id, "gemm", a, b)
    }

    #[test]
    fn functional_conv_matches_tempus_exactly() {
        let mut tempus = TempusBackend::new(TempusConfig::nv_small(), (4, 4));
        let mut fast = FunctionalBackend::new(TempusConfig::nv_small(), (4, 4));
        let job = conv_job(1);
        let t = tempus.execute(&job).unwrap();
        let f = fast.execute(&job).unwrap();
        assert_eq!(t.output, f.output);
        assert_eq!(t.sim_cycles, f.sim_cycles);
    }

    #[test]
    fn functional_gemm_matches_tempus_exactly() {
        let mut tempus = TempusBackend::new(TempusConfig::nv_small(), (4, 4));
        let mut fast = FunctionalBackend::new(TempusConfig::nv_small(), (4, 4));
        let job = gemm_job(2);
        let t = tempus.execute(&job).unwrap();
        let f = fast.execute(&job).unwrap();
        assert_eq!(t.output, f.output);
        assert_eq!(t.sim_cycles, f.sim_cycles);
        assert_eq!(t.output.digest(), f.output.digest());
    }

    #[test]
    fn nvdla_agrees_on_outputs_with_different_cycles() {
        let mut tempus = TempusBackend::new(TempusConfig::nv_small(), (4, 4));
        let mut nvdla = NvdlaBackend::new(NvdlaConfig::nv_small(), (4, 4));
        for job in [conv_job(3), gemm_job(4)] {
            let t = tempus.execute(&job).unwrap();
            let n = nvdla.execute(&job).unwrap();
            assert_eq!(t.output, n.output, "{}", job.name);
            assert!(t.sim_cycles > n.sim_cycles, "tub pays a latency premium");
        }
    }

    #[test]
    fn out_of_precision_jobs_are_rejected() {
        let a = Matrix::from_fn(2, 2, |_, _| 1000);
        let b = Matrix::from_fn(2, 2, |_, _| 1);
        let job = Job::gemm(9, "hot", a, b);
        let mut fast = FunctionalBackend::new(TempusConfig::nv_small(), (4, 4));
        assert!(matches!(fast.execute(&job), Err(RuntimeError::Arith(_))));
    }

    #[test]
    fn backend_kinds_instantiate() {
        for kind in BackendKind::ALL {
            let mut backend =
                kind.instantiate(TempusConfig::nv_small(), NvdlaConfig::nv_small(), (4, 4));
            let run = backend.execute(&conv_job(7)).unwrap();
            assert!(run.sim_cycles > 0);
            assert_eq!(backend.name(), kind.name());
        }
    }
}
