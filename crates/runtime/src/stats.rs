//! Aggregate throughput/latency/energy statistics for a batch run.

use std::fmt;

use tempus_core::schedule::CacheStats;

use crate::job::JobResult;
use crate::ledger::DeviceSummary;

/// Clock period at the paper's 250 MHz evaluation clock, in ns —
/// re-exported from the hardware model so the runtime's energy and
/// sim-time figures stay coupled to the timing reports.
pub use tempus_hwmodel::timing::CLOCK_PERIOD_NS as PERIOD_NS;

/// Per-worker execution record.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Worker index.
    pub worker: usize,
    /// Jobs executed.
    pub jobs: u64,
    /// Modelled cycles summed over the worker's jobs.
    pub sim_cycles: u64,
    /// Host wall-clock the worker spent executing, in ns.
    pub wall_ns: u64,
    /// Schedule-cache counters, when the backend caches.
    pub schedule_cache: Option<CacheStats>,
}

/// Batch-level aggregates.
#[derive(Debug, Clone)]
pub struct AggregateStats {
    /// Backend that ran the batch.
    pub backend: &'static str,
    /// Worker threads used.
    pub workers: usize,
    /// Jobs executed.
    pub jobs: u64,
    /// Modelled cycles summed over all jobs.
    pub total_sim_cycles: u64,
    /// Modelled execution time on hardware at 250 MHz, in µs.
    pub sim_time_us: f64,
    /// Modelled energy over all jobs, in pJ.
    pub total_energy_pj: f64,
    /// Dynamic (switching) share of `total_energy_pj` — energy spent
    /// on working array-cycles, voltage-squared-scaled under DVFS.
    pub dynamic_energy_pj: f64,
    /// Static (leakage) share of `total_energy_pj` — leakage charged
    /// while arrays were busy on a job (idle tails of a sharded run
    /// included).
    pub static_energy_pj: f64,
    /// Leakage burned in the ledger's idle gaps **between** jobs —
    /// array-cycles no job owned, charged at the leakage (not
    /// active) rate. Not part of `total_energy_pj`, which sums job
    /// energies only.
    pub idle_leakage_pj: f64,
    /// Host wall-clock for the whole batch, in ns.
    pub wall_ns: u64,
    /// Host throughput: jobs per wall-clock second.
    pub jobs_per_sec: f64,
    /// Mean modelled cycles per job.
    pub avg_job_sim_cycles: f64,
    /// Largest single-job modelled cycle count (tail latency).
    pub max_job_sim_cycles: u64,
    /// Array-cycles summed over every job and shard — what the energy
    /// figure scales with (equals `total_sim_cycles` on single-array
    /// configurations).
    pub total_array_cycles: u64,
    /// Mean PE arrays occupied per job (1.0 on single-array
    /// configurations).
    pub avg_shards_per_job: f64,
    /// Mean per-job work balance across arrays (1.0 when single-array
    /// or perfectly balanced).
    pub avg_shard_utilization: f64,
    /// Device-time view of the batch on the array pool: under the
    /// cost-aware policy this is the ledger's account (makespan,
    /// packing efficiency, array-wait); under the all-arrays policy
    /// it is the serial whole-core equivalent (each job owns the
    /// device, makespan is the sum of job latencies).
    pub device: DeviceSummary,
    /// Device cycles jobs spent waiting to gather their granted
    /// arrays (0 without co-scheduling).
    pub total_array_wait_cycles: u64,
    /// Mean arrays granted per job.
    pub avg_arrays_granted: f64,
    /// Schedule-cache counters merged across workers.
    pub schedule_cache: Option<CacheStats>,
    /// Largest per-job streaming-scratch high-water mark in elements
    /// (0 when no job streamed) — the figure a deployment sizes its
    /// scratch SRAM against.
    pub peak_scratch_elems: u64,
    /// Jobs that executed in streaming mode (non-zero peak scratch).
    pub streamed_jobs: u64,
}

impl AggregateStats {
    /// Computes aggregates from per-job results and worker records.
    /// `device` is the array-slot ledger's account when the batch was
    /// co-scheduled; `None` derives the all-arrays serial equivalent
    /// (each job owns the whole `num_arrays`-wide core in turn).
    /// `idle_leakage_mw` is the per-array leakage power used to price
    /// the ledger's idle gaps (0.0 when unknown — gaps then cost
    /// nothing, the pre-DVFS accounting).
    #[must_use]
    #[allow(clippy::too_many_arguments)] // one value per accounting domain being folded
    pub fn from_results(
        backend: &'static str,
        workers: usize,
        results: &[JobResult],
        worker_stats: &[WorkerStats],
        wall_ns: u64,
        num_arrays: usize,
        device: Option<DeviceSummary>,
        idle_leakage_mw: f64,
    ) -> Self {
        let jobs = results.len() as u64;
        let total_sim_cycles: u64 = results.iter().map(|r| r.sim_cycles).sum();
        let total_energy_pj: f64 = results.iter().map(|r| r.energy_pj).sum();
        let dynamic_energy_pj: f64 = results.iter().map(|r| r.dynamic_energy_pj).sum();
        let static_energy_pj: f64 = results.iter().map(|r| r.static_energy_pj).sum();
        let max_job_sim_cycles = results.iter().map(|r| r.sim_cycles).max().unwrap_or(0);
        let total_array_cycles: u64 = results.iter().map(|r| r.total_array_cycles).sum();
        let total_shards: u64 = results.iter().map(|r| r.shards as u64).sum();
        let util_sum: f64 = results.iter().map(|r| r.shard_utilization).sum();
        let granted_sum: u64 = results.iter().map(|r| r.arrays_granted as u64).sum();
        let wait_sum: u64 = results.iter().map(|r| r.array_wait_cycles).sum();
        let peak_scratch_elems = results
            .iter()
            .map(|r| r.peak_scratch_elems)
            .max()
            .unwrap_or(0);
        let streamed_jobs = results.iter().filter(|r| r.peak_scratch_elems > 0).count() as u64;
        let device = device.unwrap_or(DeviceSummary {
            num_arrays: num_arrays.max(1),
            makespan_cycles: total_sim_cycles,
            busy_cycles: total_array_cycles,
            wait_cycles: wait_sum,
            placements: jobs,
            granted_sum,
            ..DeviceSummary::default()
        });
        let idle_leakage_pj = idle_leakage_mw * device.idle_gap_cycles as f64 * PERIOD_NS;
        let mut schedule_cache: Option<CacheStats> = None;
        for ws in worker_stats {
            if let Some(cs) = &ws.schedule_cache {
                schedule_cache
                    .get_or_insert_with(CacheStats::default)
                    .merge(cs);
            }
        }
        AggregateStats {
            backend,
            workers,
            jobs,
            total_sim_cycles,
            sim_time_us: total_sim_cycles as f64 * PERIOD_NS * 1e-3,
            total_energy_pj,
            dynamic_energy_pj,
            static_energy_pj,
            idle_leakage_pj,
            wall_ns,
            jobs_per_sec: if wall_ns == 0 {
                0.0
            } else {
                jobs as f64 / (wall_ns as f64 * 1e-9)
            },
            avg_job_sim_cycles: if jobs == 0 {
                0.0
            } else {
                total_sim_cycles as f64 / jobs as f64
            },
            max_job_sim_cycles,
            total_array_cycles,
            avg_shards_per_job: if jobs == 0 {
                1.0
            } else {
                total_shards as f64 / jobs as f64
            },
            avg_shard_utilization: if jobs == 0 {
                1.0
            } else {
                util_sum / jobs as f64
            },
            device,
            total_array_wait_cycles: wait_sum,
            avg_arrays_granted: if jobs == 0 {
                1.0
            } else {
                granted_sum as f64 / jobs as f64
            },
            schedule_cache,
            peak_scratch_elems,
            streamed_jobs,
        }
    }
}

impl fmt::Display for AggregateStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} jobs on {} workers in {:.2} ms ({:.0} jobs/s); \
             {} modelled cycles ({:.1} us @250MHz), {:.1} nJ",
            self.backend,
            self.jobs,
            self.workers,
            self.wall_ns as f64 * 1e-6,
            self.jobs_per_sec,
            self.total_sim_cycles,
            self.sim_time_us,
            self.total_energy_pj * 1e-3,
        )?;
        if self.idle_leakage_pj > 0.0 {
            write!(
                f,
                " ({:.1} nJ dynamic, {:.1} nJ busy leakage, {:.1} nJ idle leakage)",
                self.dynamic_energy_pj * 1e-3,
                self.static_energy_pj * 1e-3,
                self.idle_leakage_pj * 1e-3,
            )?;
        }
        if self.avg_shards_per_job > 1.0 {
            write!(
                f,
                "; {:.1} arrays/job ({:.0}% balanced, {} array-cycles)",
                self.avg_shards_per_job,
                self.avg_shard_utilization * 100.0,
                self.total_array_cycles,
            )?;
        }
        if self.device.num_arrays > 1 {
            write!(
                f,
                "; device makespan {} cycles ({:.0}% packed, {:.1} arrays granted/job, {} wait cycles)",
                self.device.makespan_cycles,
                self.device.occupancy() * 100.0,
                self.avg_arrays_granted,
                self.total_array_wait_cycles,
            )?;
        }
        if self.streamed_jobs > 0 {
            write!(
                f,
                "; {} streamed jobs, peak scratch {} elems",
                self.streamed_jobs, self.peak_scratch_elems,
            )?;
        }
        if let Some(cs) = &self.schedule_cache {
            write!(
                f,
                "; schedule cache {}h/{}m, latency memo {}h/{}m",
                cs.schedule_hits, cs.schedule_misses, cs.latency_hits, cs.latency_misses
            )?;
        }
        Ok(())
    }
}
