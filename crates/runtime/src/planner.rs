//! Cost-aware array-width planning for runtime jobs.
//!
//! [`ArrayPlanner`] turns one [`Job`] into a
//! [`BudgetPlan`](tempus_core::shard::BudgetPlan): the width/cost
//! curve over candidate array counts plus the chosen width where the
//! marginal speedup of one more array stops paying
//! ([`plan_for_budget`]). The curves come from the closed-form models
//! that are pinned bit-identical to the cycle-accurate engines:
//!
//! * conv — [`ScheduleCache::predict_sharded`] (per-shard cycles ==
//!   the simulated sharded run, memoized per shape × weights ×
//!   width);
//! * GEMM — [`TubGemm::sharded_cycle_model`] (exact by the same
//!   pinned contract);
//! * network — per-layer conv predictions summed along the layer
//!   chain, with shapes propagated through SDP/PDP on zero cubes
//!   (predicted cycles depend only on shapes and weights, never on
//!   activation values).
//!
//! The estimates price **Tempus** device time. When the executing
//! backend is the binary NVDLA baseline the decision is still made on
//! the Tempus curve — a scheduling heuristic, not an accounting
//! figure; the job's reported cycles always come from its own
//! backend.

use tempus_core::gemm::TubGemm;
use tempus_core::schedule::ScheduleCache;
use tempus_core::shard::{plan_for_budget, BudgetPlan, WidenPolicy, WidthCost};
use tempus_core::TempusConfig;
use tempus_nvdla::cube::DataCube;
use tempus_nvdla::pdp;

use crate::backend::BackendKind;
use crate::engine::{array_leakage_fraction, array_power_mw, EngineConfig};
use crate::error::RuntimeError;
use crate::job::{Job, JobPayload};
use crate::stats::PERIOD_NS;

/// Per-dispatcher width planner: owns its own schedule cache (the
/// same memoization the functional backend uses), so repeated
/// templates cost one hash lookup per candidate width.
#[derive(Debug, Clone)]
pub struct ArrayPlanner {
    policy: WidenPolicy,
    num_arrays: usize,
    tempus: TempusConfig,
    gemm: TubGemm,
    cache: ScheduleCache,
    /// Per-cycle Tempus array power in mW (the planner prices Tempus
    /// device time) — basis of the width curve's energy points.
    power_mw: f64,
    /// Static/leakage fraction of `power_mw`, from the calibrated
    /// synthesis model.
    leak_frac: f64,
}

impl ArrayPlanner {
    /// Builds a planner for `config`'s modelled device under
    /// `policy`.
    #[must_use]
    pub fn new(config: &EngineConfig, policy: WidenPolicy) -> Self {
        ArrayPlanner {
            policy,
            num_arrays: config.num_arrays.max(1),
            tempus: config.tempus,
            gemm: TubGemm::new(
                config.gemm_grid.0,
                config.gemm_grid.1,
                config.tempus.base.precision,
            ),
            cache: ScheduleCache::new(),
            power_mw: array_power_mw(config, BackendKind::TempusCycleAccurate),
            leak_frac: array_leakage_fraction(config, BackendKind::TempusCycleAccurate),
        }
    }

    /// Closed-form nominal-level energy split for one width point:
    /// dynamic (switching) energy on working array-cycles, static
    /// (leakage) energy on the busy-until wall window — `used`
    /// arrays held for the critical path, idle tails included.
    fn energy_split(&self, used: usize, critical: u64, total_array: u64) -> (u64, u64) {
        let dynamic = self.power_mw * (1.0 - self.leak_frac) * total_array as f64 * PERIOD_NS;
        let wall = used as u64 * critical;
        let stat = self.power_mw * self.leak_frac * wall as f64 * PERIOD_NS;
        (dynamic.round() as u64, stat.round() as u64)
    }

    /// The configured device width (the planner never requests more).
    #[must_use]
    pub fn num_arrays(&self) -> usize {
        self.num_arrays
    }

    /// The cost-aware width decision for `job`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the closed-form models (the same
    /// job would fail identically at execution; dispatchers fall back
    /// to [`BudgetPlan::single`] and let the backend report it).
    pub fn plan(&mut self, job: &Job) -> Result<BudgetPlan, RuntimeError> {
        let policy = self.policy;
        plan_for_budget(self.num_arrays, &policy, |w| self.width_cost(job, w))
    }

    /// [`ArrayPlanner::plan`] with the shared fallback the
    /// dispatchers use: a job whose cost cannot be estimated gets a
    /// zero-duration single-array plan — it executes at width 1 and
    /// the backend surfaces the underlying error.
    #[must_use]
    pub fn plan_or_single(&mut self, job: &Job) -> BudgetPlan {
        self.plan(job).unwrap_or_else(|_| BudgetPlan::single(0))
    }

    /// The exact closed-form cost of running `job` at `arrays` —
    /// for conv and GEMM on the Tempus backends this equals the
    /// executed critical path bit-for-bit (the pinned model
    /// contract); for networks the layer chain is walked on zero
    /// cubes, which is exact too because predicted cycles depend only
    /// on shapes and weights, never on activation values.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the closed-form models.
    pub fn width_cost(&mut self, job: &Job, arrays: usize) -> Result<WidthCost, RuntimeError> {
        match &job.payload {
            JobPayload::Conv {
                features,
                kernels,
                params,
            } => {
                let latency =
                    self.cache
                        .predict_sharded(features, kernels, params, &self.tempus, arrays)?;
                let used = latency.plan.used_arrays();
                let (dynamic_energy_pj, static_energy_pj) = self.energy_split(
                    used,
                    latency.critical_path_cycles,
                    latency.total_array_cycles,
                );
                Ok(WidthCost {
                    arrays,
                    used,
                    critical_path_cycles: latency.critical_path_cycles,
                    reduction_cycles: latency.reduction_cycles,
                    total_array_cycles: latency.total_array_cycles,
                    dynamic_energy_pj,
                    static_energy_pj,
                })
            }
            JobPayload::Gemm { a, b } => {
                let (plan, per_shard) = self.gemm.sharded_cycle_model(a, b, arrays);
                let used = plan.used_arrays();
                let critical = per_shard.iter().copied().max().unwrap_or(0);
                let total_array: u64 = per_shard.iter().sum();
                let (dynamic_energy_pj, static_energy_pj) =
                    self.energy_split(used, critical, total_array);
                Ok(WidthCost {
                    arrays,
                    used,
                    critical_path_cycles: critical,
                    reduction_cycles: 0,
                    total_array_cycles: total_array,
                    dynamic_energy_pj,
                    static_energy_pj,
                })
            }
            JobPayload::Network { input, layers } => {
                // Shapes alone determine the predicted cycles, so the
                // layer chain is walked on zero cubes: each layer's
                // conv output dims come from its parameters, pooling
                // from PDP itself.
                let (mut w, mut h) = (input.w(), input.h());
                let mut used = 1usize;
                let mut critical = 0u64;
                let mut reduction = 0u64;
                let mut total_array = 0u64;
                for layer in layers {
                    let zeros = DataCube::zeros(w, h, layer.kernels.c());
                    let latency = self.cache.predict_sharded(
                        &zeros,
                        &layer.kernels,
                        &layer.conv,
                        &self.tempus,
                        arrays,
                    )?;
                    used = used.max(latency.plan.used_arrays());
                    critical += latency.critical_path_cycles;
                    reduction += latency.reduction_cycles;
                    total_array += latency.total_array_cycles;
                    let (out_w, out_h) =
                        layer
                            .conv
                            .output_dims(w, h, layer.kernels.r(), layer.kernels.s())?;
                    (w, h) = match &layer.pool {
                        Some(pool) => {
                            let pooled = pdp::apply(&DataCube::zeros(out_w, out_h, 1), pool)?;
                            (pooled.w(), pooled.h())
                        }
                        None => (out_w, out_h),
                    };
                }
                let (dynamic_energy_pj, static_energy_pj) =
                    self.energy_split(used, critical, total_array);
                Ok(WidthCost {
                    arrays,
                    used,
                    critical_path_cycles: critical,
                    reduction_cycles: reduction,
                    total_array_cycles: total_array,
                    dynamic_energy_pj,
                    static_energy_pj,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendKind, FunctionalBackend, InferenceBackend};
    use tempus_core::gemm::Matrix;
    use tempus_nvdla::conv::ConvParams;
    use tempus_nvdla::cube::KernelSet;

    fn planner(arrays: usize) -> ArrayPlanner {
        let config = EngineConfig::new(BackendKind::FastFunctional)
            .with_cores(
                TempusConfig::nv_small(),
                tempus_nvdla::config::NvdlaConfig::nv_small(),
            )
            .with_arrays(arrays);
        ArrayPlanner::new(&config, WidenPolicy::edge_default())
    }

    fn wide_conv() -> Job {
        // 32 kernels / atomic_k 8 = 4 kernel groups: widens well.
        let features = DataCube::from_fn(6, 6, 8, |x, y, c| {
            ((x as i32 * 31 + y as i32 * 17 + c as i32 * 7) % 255) - 127
        });
        let kernels = KernelSet::from_fn(32, 3, 3, 8, |k, r, s, c| {
            ((k as i32 * 13 + r as i32 * 5 + s as i32 * 3 + c as i32 * 11) % 255) - 127
        });
        Job::conv(0, "wide", features, kernels, ConvParams::valid())
    }

    fn narrow_gemm() -> Job {
        let a = Matrix::from_fn(3, 4, |i, j| ((i * 7 + j) % 9) as i32 - 4);
        let b = Matrix::from_fn(4, 3, |i, j| ((i * 5 + j) % 9) as i32 - 4);
        Job::gemm(1, "narrow", a, b)
    }

    #[test]
    fn wide_convs_request_multiple_arrays() {
        let mut planner = planner(4);
        let plan = planner.plan(&wide_conv()).unwrap();
        assert!(plan.arrays >= 2, "kernel-rich conv should widen");
        assert!(
            plan.cost_at(plan.arrays).critical_path_cycles < plan.cost_at(1).critical_path_cycles
        );
    }

    #[test]
    fn narrow_jobs_stay_narrow() {
        // A 3x3 GEMM on a (16, 16) grid is one output tile: widening
        // cannot help, and the planner must not request idle arrays.
        let mut planner = planner(8);
        let plan = planner.plan(&narrow_gemm()).unwrap();
        assert_eq!(plan.arrays, 1);
    }

    #[test]
    fn conv_curve_matches_the_functional_backend_exactly() {
        // The planner's predicted critical path at width w equals the
        // functional backend's sim_cycles when granted w — the ledger
        // schedules with exactly the cycles the backend will report.
        let job = wide_conv();
        let mut planner = planner(4);
        let plan = planner.plan(&job).unwrap();
        for w in 1..=plan.widths.len() {
            let mut backend =
                FunctionalBackend::new(TempusConfig::nv_small(), (16, 16)).with_arrays(w);
            let run = backend.execute(&job).unwrap();
            assert_eq!(
                plan.cost_at(w).critical_path_cycles,
                run.sim_cycles,
                "width {w}"
            );
        }
    }

    #[test]
    fn bad_shapes_error_like_execution_would() {
        let bad = Job::gemm(9, "bad", Matrix::zeros(2, 3), Matrix::zeros(4, 2));
        let mut planner = planner(4);
        // GEMM width curves never error (the closed-form model is
        // total); conv shape errors do propagate.
        assert!(planner.plan(&bad).is_ok());
        let mismatched = Job::conv(
            10,
            "mismatch",
            DataCube::zeros(4, 4, 3),
            KernelSet::zeros(2, 3, 3, 5),
            ConvParams::valid(),
        );
        assert!(planner.plan(&mismatched).is_err());
    }
}
