use crate::ClockDomain;

/// Tracks how many cycles a block spent active versus clock-gated.
///
/// NVDLA's MAC cells support clock gating "during idle or underutilized
/// conditions" (§II-C) and Tempus Core keeps zero-weight PEs silent
/// (§V-C); this counter is how both models account for it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityCounter {
    active: u64,
    gated: u64,
}

impl ActivityCounter {
    /// Creates a counter with no recorded cycles.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one cycle in the active state.
    pub fn record_active(&mut self) {
        self.active += 1;
    }

    /// Records one cycle in the gated (idle) state.
    pub fn record_gated(&mut self) {
        self.gated += 1;
    }

    /// Records `n` cycles at once.
    pub fn record_active_n(&mut self, n: u64) {
        self.active += n;
    }

    /// Records `n` gated cycles at once.
    pub fn record_gated_n(&mut self, n: u64) {
        self.gated += n;
    }

    /// Records one whole compute window in bulk: `active` active
    /// cycles and `window - active` gated ones. This is the counter
    /// update the window-batched simulation engine computes
    /// arithmetically (`active = min(window, stream_cycles)`) instead
    /// of ticking per cycle.
    ///
    /// # Panics
    ///
    /// Panics when `active > window` (debug builds only).
    pub fn record_window(&mut self, active: u64, window: u64) {
        debug_assert!(active <= window, "active {active} exceeds window {window}");
        self.active += active;
        self.gated += window - active;
    }

    /// Cycles spent active.
    #[must_use]
    pub fn active_cycles(self) -> u64 {
        self.active
    }

    /// Cycles spent gated.
    #[must_use]
    pub fn gated_cycles(self) -> u64 {
        self.gated
    }

    /// Total recorded cycles.
    #[must_use]
    pub fn total_cycles(self) -> u64 {
        self.active + self.gated
    }

    /// Fraction of cycles active (0 when nothing recorded).
    #[must_use]
    pub fn utilization(self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.active as f64 / total as f64
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: ActivityCounter) {
        self.active += other.active;
        self.gated += other.gated;
    }

    /// Clears all counts.
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

/// Per-shard activity record for multi-array execution: one PE
/// array's clock alongside its [`ActivityCounter`]. The sharded
/// drivers in `tempus-core` emit one of these per array so
/// cycle/pulse/utilization accounting stays attributable after the
/// merge.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardActivity {
    /// Shard (array) index within the plan.
    pub shard: usize,
    /// Cycles this array's clock ran for its shard of the job.
    pub cycles: u64,
    /// Pulse-active vs gated PE-cycles on this array.
    pub activity: ActivityCounter,
}

impl ShardActivity {
    /// Creates a record for shard `shard`.
    #[must_use]
    pub fn new(shard: usize, cycles: u64, activity: ActivityCounter) -> Self {
        ShardActivity {
            shard,
            cycles,
            activity,
        }
    }

    /// This array's PE utilization over its shard: active PE-cycles
    /// per lane-cycle (0 when the shard ran no cycles).
    #[must_use]
    pub fn utilization(&self, lanes: usize) -> f64 {
        let lane_cycles = self.cycles * lanes as u64;
        if lane_cycles == 0 {
            0.0
        } else {
            self.activity.active_cycles() as f64 / lane_cycles as f64
        }
    }
}

/// Sums shard records into `(total_cycles, merged_activity)` — the
/// aggregate the single-array statistics compare against.
#[must_use]
pub fn merge_shards(shards: &[ShardActivity]) -> (u64, ActivityCounter) {
    let mut cycles = 0u64;
    let mut activity = ActivityCounter::new();
    for s in shards {
        cycles += s.cycles;
        activity.merge(s.activity);
    }
    (cycles, activity)
}

/// Integrates energy over recorded activity: active cycles burn dynamic
/// plus leakage power, gated cycles burn leakage only.
#[derive(Debug, Clone, Copy)]
pub struct EnergyAccumulator {
    clock: ClockDomain,
    dynamic_mw: f64,
    leakage_mw: f64,
    energy_pj: f64,
}

impl EnergyAccumulator {
    /// Creates an accumulator for a block drawing `dynamic_mw` when
    /// active and `leakage_mw` always, in clock domain `clock`.
    ///
    /// # Panics
    ///
    /// Panics if either power is negative or non-finite.
    #[must_use]
    pub fn new(clock: ClockDomain, dynamic_mw: f64, leakage_mw: f64) -> Self {
        assert!(
            dynamic_mw >= 0.0 && dynamic_mw.is_finite(),
            "dynamic power must be non-negative"
        );
        assert!(
            leakage_mw >= 0.0 && leakage_mw.is_finite(),
            "leakage power must be non-negative"
        );
        EnergyAccumulator {
            clock,
            dynamic_mw,
            leakage_mw,
            energy_pj: 0.0,
        }
    }

    /// Accounts `cycles` of active operation.
    pub fn add_active(&mut self, cycles: u64) {
        self.energy_pj += self
            .clock
            .energy_pj(self.dynamic_mw + self.leakage_mw, cycles);
    }

    /// Accounts `cycles` of gated operation (leakage only).
    pub fn add_gated(&mut self, cycles: u64) {
        self.energy_pj += self.clock.energy_pj(self.leakage_mw, cycles);
    }

    /// Accounts a whole [`ActivityCounter`].
    pub fn add_activity(&mut self, activity: ActivityCounter) {
        self.add_active(activity.active_cycles());
        self.add_gated(activity.gated_cycles());
    }

    /// Total accumulated energy in picojoules.
    #[must_use]
    pub fn energy_pj(&self) -> f64 {
        self.energy_pj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_counts_both_states() {
        let mut a = ActivityCounter::new();
        a.record_active();
        a.record_active();
        a.record_gated_n(2);
        assert_eq!(a.total_cycles(), 4);
        assert!((a.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_counter_has_zero_utilization() {
        assert_eq!(ActivityCounter::new().utilization(), 0.0);
    }

    #[test]
    fn record_window_splits_active_and_gated() {
        let mut bulk = ActivityCounter::new();
        bulk.record_window(3, 10);
        let mut ticked = ActivityCounter::new();
        for c in 0..10u64 {
            if c < 3 {
                ticked.record_active();
            } else {
                ticked.record_gated();
            }
        }
        assert_eq!(bulk, ticked);
        bulk.record_window(0, 0);
        assert_eq!(bulk.total_cycles(), 10);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ActivityCounter::new();
        a.record_active_n(3);
        let mut b = ActivityCounter::new();
        b.record_gated_n(5);
        a.merge(b);
        assert_eq!(a.active_cycles(), 3);
        assert_eq!(a.gated_cycles(), 5);
    }

    #[test]
    fn shard_records_merge_and_report_utilization() {
        let mut a = ActivityCounter::new();
        a.record_window(6, 10);
        let mut b = ActivityCounter::new();
        b.record_window(2, 10);
        let shards = [ShardActivity::new(0, 5, a), ShardActivity::new(1, 5, b)];
        assert!((shards[0].utilization(2) - 0.6).abs() < 1e-12);
        let (cycles, merged) = merge_shards(&shards);
        assert_eq!(cycles, 10);
        assert_eq!(merged.active_cycles(), 8);
        assert_eq!(merged.gated_cycles(), 12);
        assert_eq!(ShardActivity::default().utilization(4), 0.0);
    }

    #[test]
    fn energy_active_includes_leakage() {
        // 1 mW dynamic + 0.5 mW leakage at 4 ns/cycle:
        // active cycle = 6 pJ, gated cycle = 2 pJ.
        let mut e = EnergyAccumulator::new(ClockDomain::paper(), 1.0, 0.5);
        e.add_active(1);
        assert!((e.energy_pj() - 6.0).abs() < 1e-12);
        e.add_gated(1);
        assert!((e.energy_pj() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn energy_from_activity_counter() {
        let mut a = ActivityCounter::new();
        a.record_active_n(10);
        a.record_gated_n(10);
        let mut e = EnergyAccumulator::new(ClockDomain::paper(), 2.0, 0.0);
        e.add_activity(a);
        assert!((e.energy_pj() - 80.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_rejected() {
        let _ = EnergyAccumulator::new(ClockDomain::paper(), -1.0, 0.0);
    }
}
