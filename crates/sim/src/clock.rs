/// A clock domain: frequency and cycle/time conversions.
///
/// The paper fixes 250 MHz (4 ns period) for all synthesis and energy
/// numbers (§IV); [`ClockDomain::paper`] returns exactly that domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockDomain {
    freq_mhz: f64,
}

impl ClockDomain {
    /// Creates a clock domain at `freq_mhz` megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `freq_mhz` is not finite and positive.
    #[must_use]
    pub fn new(freq_mhz: f64) -> Self {
        assert!(
            freq_mhz.is_finite() && freq_mhz > 0.0,
            "clock frequency must be positive"
        );
        ClockDomain { freq_mhz }
    }

    /// The paper's evaluation clock: 250 MHz, 4 ns period (§IV).
    #[must_use]
    pub fn paper() -> Self {
        ClockDomain::new(250.0)
    }

    /// Frequency in MHz.
    #[must_use]
    pub fn freq_mhz(self) -> f64 {
        self.freq_mhz
    }

    /// Clock period in nanoseconds.
    #[must_use]
    pub fn period_ns(self) -> f64 {
        1e3 / self.freq_mhz
    }

    /// Wall-clock duration of `cycles` cycles, in nanoseconds.
    #[must_use]
    pub fn cycles_to_ns(self, cycles: u64) -> f64 {
        cycles as f64 * self.period_ns()
    }

    /// Energy in picojoules consumed by a block drawing `power_mw`
    /// milliwatts for `cycles` cycles (`E = P·t`; 1 mW · 1 ns = 1 pJ).
    #[must_use]
    pub fn energy_pj(self, power_mw: f64, cycles: u64) -> f64 {
        power_mw * self.cycles_to_ns(cycles)
    }
}

impl Default for ClockDomain {
    fn default() -> Self {
        ClockDomain::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clock_is_250_mhz_4_ns() {
        let c = ClockDomain::paper();
        assert_eq!(c.freq_mhz(), 250.0);
        assert!((c.period_ns() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn energy_matches_paper_binary_array_example() {
        // §V-C: binary 16x16 INT8 array at 3.8 mW for 1 cycle of 4 ns
        // gives ~15 pJ.
        let c = ClockDomain::paper();
        let e = c.energy_pj(3.8, 1);
        assert!((e - 15.2).abs() < 1e-9, "got {e}");
    }

    #[test]
    fn energy_matches_paper_tub_array_example() {
        // §V-C: tub array 1.42 mW for 33 cycles -> ~187 pJ.
        let c = ClockDomain::paper();
        let e = c.energy_pj(1.42, 33);
        assert!((e - 187.44).abs() < 0.01, "got {e}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = ClockDomain::new(0.0);
    }
}
