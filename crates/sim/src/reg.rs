use std::fmt;

/// A two-phase simulation register.
///
/// During a cycle's evaluation phase the component drives the register's
/// next value with [`set_next`](Reg::set_next); at the clock edge
/// [`commit`](Reg::commit) makes it visible. Reading via
/// [`get`](Reg::get) always returns the *current* (pre-edge) value, so
/// evaluation order between sibling registers does not matter — exactly
/// like non-blocking assignment in RTL.
///
/// The register counts commits that changed its value ("toggles"), which
/// feeds the activity-based power model.
#[derive(Debug, Clone)]
pub struct Reg<T> {
    current: T,
    next: Option<T>,
    toggles: u64,
    commits: u64,
}

impl<T: Clone + PartialEq> Reg<T> {
    /// Creates a register holding `initial`.
    pub fn new(initial: T) -> Self {
        Reg {
            current: initial,
            next: None,
            toggles: 0,
            commits: 0,
        }
    }

    /// Current (committed) value.
    pub fn get(&self) -> T {
        self.current.clone()
    }

    /// Borrows the current value without cloning.
    pub fn peek(&self) -> &T {
        &self.current
    }

    /// Schedules `value` to become current at the next [`commit`](Reg::commit).
    /// Driving twice in one cycle keeps the latest value (last write wins,
    /// as in procedural RTL).
    pub fn set_next(&mut self, value: T) {
        self.next = Some(value);
    }

    /// Clock edge: commits the scheduled value, if any. A cycle without a
    /// `set_next` holds the register (implicit enable off).
    pub fn commit(&mut self) {
        self.commits += 1;
        if let Some(next) = self.next.take() {
            if next != self.current {
                self.toggles += 1;
            }
            self.current = next;
        }
    }

    /// Immediately overwrites the current value, bypassing the two-phase
    /// protocol. Intended for reset paths only.
    pub fn force(&mut self, value: T) {
        self.current = value;
        self.next = None;
    }

    /// Number of commits that changed the stored value.
    pub fn toggles(&self) -> u64 {
        self.toggles
    }

    /// Number of clock edges seen.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Fraction of edges on which the register toggled (0 when never
    /// clocked). This is the activity factor α of the power model.
    pub fn activity(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.toggles as f64 / self.commits as f64
        }
    }
}

impl<T: Clone + PartialEq + Default> Default for Reg<T> {
    fn default() -> Self {
        Reg::new(T::default())
    }
}

impl<T: fmt::Display> fmt::Display for Reg<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_visible_only_after_commit() {
        let mut r = Reg::new(0u32);
        r.set_next(5);
        assert_eq!(r.get(), 0, "next value must not leak before the edge");
        r.commit();
        assert_eq!(r.get(), 5);
    }

    #[test]
    fn hold_when_not_driven() {
        let mut r = Reg::new(7u32);
        r.commit();
        assert_eq!(r.get(), 7);
        assert_eq!(r.toggles(), 0);
    }

    #[test]
    fn last_write_wins_within_a_cycle() {
        let mut r = Reg::new(0u32);
        r.set_next(1);
        r.set_next(2);
        r.commit();
        assert_eq!(r.get(), 2);
    }

    #[test]
    fn toggle_counting_ignores_same_value_commits() {
        let mut r = Reg::new(1u32);
        r.set_next(1);
        r.commit();
        assert_eq!(r.toggles(), 0);
        r.set_next(2);
        r.commit();
        assert_eq!(r.toggles(), 1);
        assert_eq!(r.commits(), 2);
        assert!((r.activity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn force_clears_pending_next() {
        let mut r = Reg::new(0u32);
        r.set_next(9);
        r.force(3);
        r.commit();
        assert_eq!(r.get(), 3, "reset must cancel in-flight writes");
    }

    #[test]
    fn activity_zero_before_any_clock() {
        let r = Reg::new(0u8);
        assert_eq!(r.activity(), 0.0);
    }
}
