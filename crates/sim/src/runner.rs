use std::error::Error;
use std::fmt;

use crate::{ClockDomain, Clocked};

/// Error returned by [`Simulator`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The run exceeded its watchdog budget without satisfying the stop
    /// condition — usually a deadlocked handshake.
    WatchdogExpired {
        /// Cycles executed before giving up.
        cycles: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::WatchdogExpired { cycles } => {
                write!(f, "simulation watchdog expired after {cycles} cycles")
            }
        }
    }
}

impl Error for SimError {}

/// Drives a [`Clocked`] component cycle by cycle with a watchdog.
///
/// The simulator tracks total cycles across runs so several convolution
/// tiles can be simulated back-to-back with a cumulative cycle count.
#[derive(Debug, Clone)]
pub struct Simulator {
    clock: ClockDomain,
    total_cycles: u64,
}

impl Simulator {
    /// Creates a simulator in clock domain `clock`.
    #[must_use]
    pub fn new(clock: ClockDomain) -> Self {
        Simulator {
            clock,
            total_cycles: 0,
        }
    }

    /// Creates a simulator at the paper's 250 MHz evaluation clock.
    #[must_use]
    pub fn at_250_mhz() -> Self {
        Simulator::new(ClockDomain::paper())
    }

    /// The simulator's clock domain.
    #[must_use]
    pub fn clock(&self) -> ClockDomain {
        self.clock
    }

    /// Cycles executed so far across all runs.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Wall-clock nanoseconds simulated so far.
    #[must_use]
    pub fn elapsed_ns(&self) -> f64 {
        self.clock.cycles_to_ns(self.total_cycles)
    }

    /// Ticks `dut` until `done` returns `true`, or errs after
    /// `max_cycles` additional cycles. Returns the number of cycles this
    /// run consumed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WatchdogExpired`] when the condition never
    /// became true within the budget.
    pub fn run_until<C: Clocked>(
        &mut self,
        dut: &mut C,
        mut done: impl FnMut(&C) -> bool,
        max_cycles: u64,
    ) -> Result<u64, SimError> {
        let mut cycles = 0u64;
        while !done(dut) {
            if cycles >= max_cycles {
                return Err(SimError::WatchdogExpired { cycles });
            }
            dut.tick();
            cycles += 1;
            self.total_cycles += 1;
        }
        Ok(cycles)
    }

    /// Ticks `dut` exactly `cycles` times.
    pub fn run_for<C: Clocked>(&mut self, dut: &mut C, cycles: u64) {
        for _ in 0..cycles {
            dut.tick();
        }
        self.total_cycles += cycles;
    }

    /// Resets both the device and the simulator's cycle counter.
    pub fn reset<C: Clocked>(&mut self, dut: &mut C) {
        dut.reset();
        self.total_cycles = 0;
    }
}

impl Default for Simulator {
    fn default() -> Self {
        Simulator::at_250_mhz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    struct Counter {
        value: Reg<u64>,
    }

    impl Clocked for Counter {
        fn tick(&mut self) {
            self.value.set_next(self.value.get() + 1);
            self.value.commit();
        }
        fn reset(&mut self) {
            self.value.force(0);
        }
    }

    #[test]
    fn run_until_counts_cycles() {
        let mut c = Counter { value: Reg::new(0) };
        let mut sim = Simulator::at_250_mhz();
        let n = sim.run_until(&mut c, |c| c.value.get() == 7, 100).unwrap();
        assert_eq!(n, 7);
        assert_eq!(sim.total_cycles(), 7);
        assert!((sim.elapsed_ns() - 28.0).abs() < 1e-12);
    }

    #[test]
    fn run_until_immediate_condition_is_zero_cycles() {
        let mut c = Counter { value: Reg::new(0) };
        let mut sim = Simulator::at_250_mhz();
        let n = sim.run_until(&mut c, |_| true, 10).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn watchdog_trips_on_deadlock() {
        let mut c = Counter { value: Reg::new(0) };
        let mut sim = Simulator::at_250_mhz();
        let err = sim.run_until(&mut c, |_| false, 16).unwrap_err();
        assert_eq!(err, SimError::WatchdogExpired { cycles: 16 });
    }

    #[test]
    fn reset_clears_counters() {
        let mut c = Counter { value: Reg::new(0) };
        let mut sim = Simulator::at_250_mhz();
        sim.run_for(&mut c, 5);
        sim.reset(&mut c);
        assert_eq!(sim.total_cycles(), 0);
        assert_eq!(c.value.get(), 0);
    }
}
