use std::collections::VecDeque;

/// A bounded FIFO with occupancy statistics, modelling the buffer blocks
/// that Tempus Core adds "to accommodate multiple tub cycles per partial
/// sum computation" (§III).
///
/// Push/pop within a cycle follow valid/ready semantics: a push succeeds
/// only when the FIFO has space (`ready`), a pop only when it holds data
/// (`valid`).
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    pushes: u64,
    pops: u64,
    stall_cycles: u64,
}

impl<T> Fifo<T> {
    /// Creates a FIFO holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be nonzero");
        Fifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
            pushes: 0,
            pops: 0,
            stall_cycles: 0,
        }
    }

    /// `true` when a consumer can pop this cycle.
    #[must_use]
    pub fn valid(&self) -> bool {
        !self.items.is_empty()
    }

    /// `true` when a producer can push this cycle.
    #[must_use]
    pub fn ready(&self) -> bool {
        self.items.len() < self.capacity
    }

    /// Offers `item`; returns it back when the FIFO is full (producer
    /// must retry next cycle) and records a stall.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.ready() {
            self.items.push_back(item);
            self.pushes += 1;
            Ok(())
        } else {
            self.stall_cycles += 1;
            Err(item)
        }
    }

    /// Pops the oldest entry, if any.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.pops += 1;
        }
        item
    }

    /// Peeks at the oldest entry without consuming it.
    #[must_use]
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total successful pushes.
    #[must_use]
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total successful pops.
    #[must_use]
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Number of rejected pushes (back-pressure events).
    #[must_use]
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Drops all contents and statistics (reset).
    pub fn clear(&mut self) {
        self.items.clear();
        self.pushes = 0;
        self.pops = 0;
        self.stall_cycles = 0;
    }
}

/// A single-entry pipeline stage with valid/ready handshake — the
/// "output registers to maintain functionality" of §III.
#[derive(Debug, Clone, Default)]
pub struct Pipe<T> {
    slot: Option<T>,
}

impl<T> Pipe<T> {
    /// Creates an empty stage.
    #[must_use]
    pub fn new() -> Self {
        Pipe { slot: None }
    }

    /// `true` when the stage holds data.
    #[must_use]
    pub fn valid(&self) -> bool {
        self.slot.is_some()
    }

    /// `true` when the stage can accept data.
    #[must_use]
    pub fn ready(&self) -> bool {
        self.slot.is_none()
    }

    /// Loads the stage; returns the item back when occupied.
    pub fn load(&mut self, item: T) -> Result<(), T> {
        if self.slot.is_none() {
            self.slot = Some(item);
            Ok(())
        } else {
            Err(item)
        }
    }

    /// Drains the stage.
    pub fn take(&mut self) -> Option<T> {
        self.slot.take()
    }

    /// Peeks without draining.
    #[must_use]
    pub fn peek(&self) -> Option<&T> {
        self.slot.as_ref()
    }

    /// Empties the stage (reset).
    pub fn clear(&mut self) {
        self.slot = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_respects_capacity_and_order() {
        let mut f = Fifo::new(2);
        assert!(f.push(1).is_ok());
        assert!(f.push(2).is_ok());
        assert_eq!(f.push(3), Err(3));
        assert_eq!(f.stall_cycles(), 1);
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), None);
        assert_eq!(f.pushes(), 2);
        assert_eq!(f.pops(), 2);
    }

    #[test]
    fn fifo_valid_ready_track_occupancy() {
        let mut f = Fifo::new(1);
        assert!(!f.valid());
        assert!(f.ready());
        f.push(9u8).unwrap();
        assert!(f.valid());
        assert!(!f.ready());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_fifo_rejected() {
        let _: Fifo<u8> = Fifo::new(0);
    }

    #[test]
    fn fifo_clear_resets_stats() {
        let mut f = Fifo::new(1);
        f.push(1).unwrap();
        let _ = f.push(2);
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.pushes(), 0);
        assert_eq!(f.stall_cycles(), 0);
    }

    #[test]
    fn pipe_single_occupancy() {
        let mut p = Pipe::new();
        assert!(p.ready());
        p.load(5u32).unwrap();
        assert!(p.valid());
        assert_eq!(p.load(6), Err(6));
        assert_eq!(p.peek(), Some(&5));
        assert_eq!(p.take(), Some(5));
        assert!(p.ready());
        assert_eq!(p.take(), None);
    }
}
