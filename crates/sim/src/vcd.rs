use std::fmt::Write as _;

/// A value recordable in a VCD trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcdValue {
    /// Single-bit value.
    Bit(bool),
    /// Multi-bit bus value (stored as the raw two's complement bits).
    Vector(u64),
}

/// A minimal value-change-dump (VCD) writer for waveform inspection of
/// the cycle-accurate models.
///
/// Signals are declared up front, then values are recorded per cycle;
/// only changes are emitted, as the format requires. The output is
/// returned as a `String` so callers decide where it goes.
///
/// ```
/// use tempus_sim::{VcdWriter, VcdValue};
///
/// let mut vcd = VcdWriter::new("pcu_tb", 4);
/// let valid = vcd.add_signal("out_valid", 1);
/// let psum = vcd.add_signal("partial_sum", 20);
/// vcd.record(0, valid, VcdValue::Bit(false));
/// vcd.record(0, psum, VcdValue::Vector(0));
/// vcd.record(3, valid, VcdValue::Bit(true));
/// vcd.record(3, psum, VcdValue::Vector(1234));
/// let text = vcd.finish();
/// assert!(text.contains("$var wire 1"));
/// assert!(text.contains("#12")); // cycle 3 at 4 ns/cycle
/// ```
#[derive(Debug, Clone)]
pub struct VcdWriter {
    module: String,
    period_ns: u64,
    signals: Vec<SignalDecl>,
    changes: Vec<(u64, usize, VcdValue)>,
    last: Vec<Option<VcdValue>>,
}

#[derive(Debug, Clone)]
struct SignalDecl {
    name: String,
    width: u32,
}

/// Handle to a declared VCD signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalId(usize);

impl VcdWriter {
    /// Creates a writer for a module scope named `module` with a clock
    /// period of `period_ns` nanoseconds.
    #[must_use]
    pub fn new(module: &str, period_ns: u64) -> Self {
        VcdWriter {
            module: module.to_string(),
            period_ns,
            signals: Vec::new(),
            changes: Vec::new(),
            last: Vec::new(),
        }
    }

    /// Declares a signal of `width` bits and returns its handle.
    pub fn add_signal(&mut self, name: &str, width: u32) -> SignalId {
        self.signals.push(SignalDecl {
            name: name.to_string(),
            width,
        });
        self.last.push(None);
        SignalId(self.signals.len() - 1)
    }

    /// Records `value` on `signal` at `cycle`. Unchanged values are
    /// dropped, matching VCD semantics.
    pub fn record(&mut self, cycle: u64, signal: SignalId, value: VcdValue) {
        if self.last[signal.0] != Some(value) {
            self.last[signal.0] = Some(value);
            self.changes.push((cycle, signal.0, value));
        }
    }

    /// Serialises the trace to VCD text.
    #[must_use]
    pub fn finish(mut self) -> String {
        self.changes.sort_by_key(|&(cycle, _, _)| cycle);
        let mut out = String::new();
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module {} $end", self.module);
        for (i, sig) in self.signals.iter().enumerate() {
            let _ = writeln!(
                out,
                "$var wire {} {} {} $end",
                sig.width,
                ident(i),
                sig.name
            );
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        let mut current_time: Option<u64> = None;
        for (cycle, idx, value) in &self.changes {
            let t = cycle * self.period_ns;
            if current_time != Some(t) {
                let _ = writeln!(out, "#{t}");
                current_time = Some(t);
            }
            match value {
                VcdValue::Bit(b) => {
                    let _ = writeln!(out, "{}{}", u8::from(*b), ident(*idx));
                }
                VcdValue::Vector(v) => {
                    let _ = writeln!(out, "b{v:b} {}", ident(*idx));
                }
            }
        }
        out
    }
}

/// VCD identifier for signal index `i`: printable ASCII starting at `!`.
fn ident(i: usize) -> String {
    let mut s = String::new();
    let mut i = i;
    loop {
        s.push(char::from(b'!' + (i % 94) as u8));
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_declares_signals() {
        let mut vcd = VcdWriter::new("top", 4);
        vcd.add_signal("a", 1);
        vcd.add_signal("bus", 8);
        let text = vcd.finish();
        assert!(text.contains("$scope module top $end"));
        assert!(text.contains("$var wire 1 ! a $end"));
        assert!(text.contains("$var wire 8 \" bus $end"));
    }

    #[test]
    fn unchanged_values_are_deduplicated() {
        let mut vcd = VcdWriter::new("top", 1);
        let s = vcd.add_signal("a", 1);
        vcd.record(0, s, VcdValue::Bit(true));
        vcd.record(1, s, VcdValue::Bit(true));
        vcd.record(2, s, VcdValue::Bit(false));
        let text = vcd.finish();
        assert_eq!(text.matches("1!").count(), 1);
        assert_eq!(text.matches("0!").count(), 1);
    }

    #[test]
    fn timestamps_scale_with_period() {
        let mut vcd = VcdWriter::new("top", 4);
        let s = vcd.add_signal("a", 4);
        vcd.record(5, s, VcdValue::Vector(9));
        let text = vcd.finish();
        assert!(text.contains("#20"));
        assert!(text.contains("b1001 !"));
    }

    #[test]
    fn ident_is_unique_for_many_signals() {
        let ids: Vec<String> = (0..500).map(ident).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }
}
