//! Two-phase clocked simulation kernel for the Tempus Core reproduction.
//!
//! The paper evaluates RTL with commercial simulators and EDA tools; this
//! crate is the Rust substitute: a small, deterministic synchronous
//! simulation framework with
//!
//! * [`Reg`] — a two-phase register (`set_next` during evaluation,
//!   committed at the clock edge) with toggle counting;
//! * [`Clocked`] — the trait every cycle-accurate component implements;
//! * [`Fifo`] / [`Pipe`] — valid/ready handshake building blocks, used by
//!   the PCU's multi-cycle handshaking logic (§III);
//! * [`ActivityCounter`] / [`EnergyAccumulator`] — per-component activity
//!   tracking feeding the workload-dependent energy evaluation (§V-C);
//! * [`ClockDomain`] — cycle/time conversions at the paper's fixed
//!   250 MHz clock;
//! * [`VcdWriter`] — a minimal value-change-dump writer for waveform
//!   inspection of the cycle-accurate models;
//! * [`Simulator`] — a watchdog-guarded run loop.
//!
//! # Example
//!
//! ```
//! use tempus_sim::{Clocked, Reg, Simulator};
//!
//! struct Counter { value: Reg<u32> }
//! impl Clocked for Counter {
//!     fn tick(&mut self) {
//!         self.value.set_next(self.value.get() + 1);
//!         self.value.commit();
//!     }
//!     fn reset(&mut self) { self.value.force(0); }
//! }
//!
//! let mut c = Counter { value: Reg::new(0) };
//! let mut sim = Simulator::at_250_mhz();
//! let cycles = sim.run_until(&mut c, |c| c.value.get() == 10, 100).unwrap();
//! assert_eq!(cycles, 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod clocked;
mod counters;
mod handshake;
mod reg;
mod runner;
mod scoreboard;
mod vcd;

pub use clock::ClockDomain;
pub use clocked::Clocked;
pub use counters::{merge_shards, ActivityCounter, EnergyAccumulator, ShardActivity};
pub use handshake::{Fifo, Pipe};
pub use reg::Reg;
pub use runner::{SimError, Simulator};
pub use scoreboard::{Scoreboard, ScoreboardError};
pub use vcd::{VcdValue, VcdWriter};
