/// A synchronous (clock-edge driven) component.
///
/// Implementations perform all combinational evaluation *and* state
/// commit inside [`tick`](Clocked::tick); composite components tick
/// their children in dataflow order so that within one cycle every
/// child observes its inputs as driven this cycle, mirroring a
/// single-clock RTL design evaluated before the edge.
pub trait Clocked {
    /// Advances the component by one clock cycle.
    fn tick(&mut self);

    /// Returns the component to its power-on state.
    fn reset(&mut self);
}

impl<T: Clocked + ?Sized> Clocked for Box<T> {
    fn tick(&mut self) {
        (**self).tick();
    }

    fn reset(&mut self) {
        (**self).reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toggle(bool);
    impl Clocked for Toggle {
        fn tick(&mut self) {
            self.0 = !self.0;
        }
        fn reset(&mut self) {
            self.0 = false;
        }
    }

    #[test]
    fn boxed_component_ticks() {
        let mut b: Box<dyn Clocked> = Box::new(Toggle(false));
        b.tick();
        b.reset();
    }
}
