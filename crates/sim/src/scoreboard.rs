use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Mismatch report from a [`Scoreboard`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScoreboardError {
    /// An observed transaction differed from the expected one.
    Mismatch {
        /// Index of the transaction (0-based, in observation order).
        index: u64,
        /// Debug rendering of the expected transaction.
        expected: String,
        /// Debug rendering of the observed transaction.
        observed: String,
    },
    /// A transaction arrived with nothing queued to compare against.
    Unexpected {
        /// Index of the transaction.
        index: u64,
        /// Debug rendering of the observation.
        observed: String,
    },
    /// The run ended with expectations still queued.
    Outstanding {
        /// How many expected transactions never arrived.
        remaining: usize,
    },
}

impl fmt::Display for ScoreboardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScoreboardError::Mismatch {
                index,
                expected,
                observed,
            } => write!(
                f,
                "transaction {index}: expected {expected}, observed {observed}"
            ),
            ScoreboardError::Unexpected { index, observed } => {
                write!(f, "transaction {index}: unexpected {observed}")
            }
            ScoreboardError::Outstanding { remaining } => {
                write!(f, "{remaining} expected transactions never arrived")
            }
        }
    }
}

impl Error for ScoreboardError {}

/// An in-order transaction scoreboard: queue expectations from a
/// reference model, feed observations from the device under test, and
/// get a precise first-divergence report — the standard verification
/// pattern for comparing the cycle-accurate cores against golden
/// models.
///
/// ```
/// use tempus_sim::Scoreboard;
///
/// let mut sb = Scoreboard::new();
/// sb.expect(10);
/// sb.expect(20);
/// sb.observe(10).unwrap();
/// assert!(sb.observe(99).is_err()); // diverged at transaction 1
/// ```
#[derive(Debug, Clone, Default)]
pub struct Scoreboard<T> {
    expected: VecDeque<T>,
    observed_count: u64,
    matched: u64,
}

impl<T: PartialEq + fmt::Debug> Scoreboard<T> {
    /// Creates an empty scoreboard.
    #[must_use]
    pub fn new() -> Self {
        Scoreboard {
            expected: VecDeque::new(),
            observed_count: 0,
            matched: 0,
        }
    }

    /// Queues one expected transaction.
    pub fn expect(&mut self, transaction: T) {
        self.expected.push_back(transaction);
    }

    /// Queues many expected transactions.
    pub fn expect_all(&mut self, transactions: impl IntoIterator<Item = T>) {
        self.expected.extend(transactions);
    }

    /// Checks an observed transaction against the next expectation.
    ///
    /// # Errors
    ///
    /// Returns [`ScoreboardError::Mismatch`] on divergence or
    /// [`ScoreboardError::Unexpected`] when nothing was queued.
    pub fn observe(&mut self, transaction: T) -> Result<(), ScoreboardError> {
        let index = self.observed_count;
        self.observed_count += 1;
        match self.expected.pop_front() {
            Some(expected) if expected == transaction => {
                self.matched += 1;
                Ok(())
            }
            Some(expected) => Err(ScoreboardError::Mismatch {
                index,
                expected: format!("{expected:?}"),
                observed: format!("{transaction:?}"),
            }),
            None => Err(ScoreboardError::Unexpected {
                index,
                observed: format!("{transaction:?}"),
            }),
        }
    }

    /// Transactions matched so far.
    #[must_use]
    pub fn matched(&self) -> u64 {
        self.matched
    }

    /// Expectations still outstanding.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.expected.len()
    }

    /// Ends the run: succeeds only if every expectation was consumed.
    ///
    /// # Errors
    ///
    /// Returns [`ScoreboardError::Outstanding`] when expectations
    /// remain.
    pub fn finish(self) -> Result<u64, ScoreboardError> {
        if self.expected.is_empty() {
            Ok(self.matched)
        } else {
            Err(ScoreboardError::Outstanding {
                remaining: self.expected.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_matching() {
        let mut sb = Scoreboard::new();
        sb.expect_all([1, 2, 3]);
        sb.observe(1).unwrap();
        sb.observe(2).unwrap();
        sb.observe(3).unwrap();
        assert_eq!(sb.finish().unwrap(), 3);
    }

    #[test]
    fn mismatch_reports_first_divergence() {
        let mut sb = Scoreboard::new();
        sb.expect_all([10, 20]);
        sb.observe(10).unwrap();
        let err = sb.observe(21).unwrap_err();
        assert_eq!(
            err,
            ScoreboardError::Mismatch {
                index: 1,
                expected: "20".into(),
                observed: "21".into(),
            }
        );
        assert!(err.to_string().contains("transaction 1"));
    }

    #[test]
    fn unexpected_transaction_detected() {
        let mut sb: Scoreboard<u8> = Scoreboard::new();
        assert!(matches!(
            sb.observe(5),
            Err(ScoreboardError::Unexpected { index: 0, .. })
        ));
    }

    #[test]
    fn finish_requires_drained_expectations() {
        let mut sb = Scoreboard::new();
        sb.expect(1);
        assert_eq!(sb.outstanding(), 1);
        assert_eq!(
            sb.finish().unwrap_err(),
            ScoreboardError::Outstanding { remaining: 1 }
        );
    }
}
