//! Convolution sequence controller (CSC).
//!
//! The CSC decomposes a convolution into *weight-stationary stripes*:
//! for each kernel group (k kernels), channel group (n channels) and
//! kernel spatial tap (r, s), it first loads one 1×1×n weight sliver
//! into each PE cell, then streams one atomic operation per output
//! position, broadcasting the matching 1×1×n feature sliver to all k
//! cells (§II-C, §III). CACC accumulates the resulting partial sums
//! across stripes.

use crate::config::NvdlaConfig;
use crate::conv::ConvParams;
use crate::cube::{DataCube, KernelSet};
use crate::NvdlaError;

/// Identifies a stripe: which kernels, channels and kernel tap it
/// covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeInfo {
    /// Kernel group index (`kernels k*g .. k*(g+1)` map onto the cells).
    pub kernel_group: usize,
    /// Channel group index (`channels n*g .. n*(g+1)` map onto the lanes).
    pub channel_group: usize,
    /// Kernel row tap.
    pub r: usize,
    /// Kernel column tap.
    pub s: usize,
}

/// Weight-load command: one 1×1×n sliver per PE cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightLoad {
    /// Stripe this weight set serves.
    pub stripe: StripeInfo,
    /// Per-cell weight slivers (`k` cells × `n` weights); cells mapped
    /// past the last kernel receive all-zero slivers and stay gated.
    pub cell_weights: Vec<Vec<i32>>,
}

/// One atomic operation: a feature sliver broadcast to all cells,
/// producing `k` partial sums for output position `(out_x, out_y)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicOp {
    /// Output x.
    pub out_x: usize,
    /// Output y.
    pub out_y: usize,
    /// The 1×1×n feature sliver.
    pub feature: Vec<i32>,
}

/// Commands emitted by the sequencer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CscCommand {
    /// Cache new weights in the PE cells (stripe boundary).
    LoadWeights(WeightLoad),
    /// Stream one atomic operation through the array.
    Atomic(AtomicOp),
}

/// Reusable output buffers for allocation-free sequencing: the
/// k per-cell weight slivers and the broadcast feature sliver are
/// written in place instead of freshly allocated per command.
#[derive(Debug, Clone)]
pub struct CscScratch {
    /// Per-cell weight slivers (`k` cells × `n` weights), valid after
    /// a [`CscStep::LoadWeights`].
    pub cell_weights: Vec<Vec<i32>>,
    /// The 1×1×n feature sliver, valid after a [`CscStep::Atomic`].
    pub feature: Vec<i32>,
}

impl CscScratch {
    /// Creates scratch sized for a `k`×`n` array.
    #[must_use]
    pub fn new(k: usize, n: usize) -> Self {
        CscScratch {
            cell_weights: vec![vec![0; n]; k],
            feature: vec![0; n],
        }
    }
}

/// A command header from the allocation-free stream; the payload lives
/// in the caller's [`CscScratch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CscStep {
    /// New weights written into `scratch.cell_weights`.
    LoadWeights(StripeInfo),
    /// One atomic op; the feature sliver is in `scratch.feature`.
    Atomic {
        /// Output x.
        out_x: usize,
        /// Output y.
        out_y: usize,
    },
}

/// The sequencer: an iterator over [`CscCommand`]s realising the whole
/// convolution.
#[derive(Debug, Clone)]
pub struct CscSequencer {
    features: DataCube,
    kernels: KernelSet,
    params: ConvParams,
    k: usize,
    n: usize,
    out_w: usize,
    out_h: usize,
    kernel_groups: usize,
    channel_groups: usize,
    // Iteration state.
    kg: usize,
    cg: usize,
    r: usize,
    s: usize,
    ox: usize,
    oy: usize,
    need_weights: bool,
    done: bool,
}

impl CscSequencer {
    /// Creates a sequencer for one convolution under `config`.
    ///
    /// # Errors
    ///
    /// Returns shape errors from parameter validation or channel
    /// mismatch.
    pub fn new(
        features: &DataCube,
        kernels: &KernelSet,
        params: &ConvParams,
        config: &NvdlaConfig,
    ) -> Result<Self, NvdlaError> {
        if features.c() != kernels.c() {
            return Err(NvdlaError::ChannelMismatch {
                feature_c: features.c(),
                kernel_c: kernels.c(),
            });
        }
        let (out_w, out_h) =
            params.output_dims(features.w(), features.h(), kernels.r(), kernels.s())?;
        Ok(CscSequencer {
            k: config.atomic_k,
            n: config.atomic_c,
            out_w,
            out_h,
            kernel_groups: kernels.k().div_ceil(config.atomic_k),
            channel_groups: kernels.c().div_ceil(config.atomic_c),
            features: features.clone(),
            kernels: kernels.clone(),
            params: *params,
            kg: 0,
            cg: 0,
            r: 0,
            s: 0,
            ox: 0,
            oy: 0,
            need_weights: true,
            done: false,
        })
    }

    /// Output dimensions `(out_w, out_h)`.
    #[must_use]
    pub fn output_dims(&self) -> (usize, usize) {
        (self.out_w, self.out_h)
    }

    /// Total number of stripes the sequencer will emit.
    #[must_use]
    pub fn stripe_count(&self) -> u64 {
        (self.kernel_groups * self.channel_groups * self.kernels.r() * self.kernels.s()) as u64
    }

    /// Total number of atomic operations the sequencer will emit.
    #[must_use]
    pub fn atomic_op_count(&self) -> u64 {
        self.stripe_count() * (self.out_w * self.out_h) as u64
    }

    fn current_stripe(&self) -> StripeInfo {
        StripeInfo {
            kernel_group: self.kg,
            channel_group: self.cg,
            r: self.r,
            s: self.s,
        }
    }

    fn weight_load(&self) -> WeightLoad {
        let cell_weights = (0..self.k)
            .map(|cell| {
                let kernel = self.kg * self.k + cell;
                if kernel < self.kernels.k() {
                    self.kernels
                        .weight_sliver(kernel, self.r, self.s, self.cg * self.n, self.n)
                } else {
                    vec![0; self.n]
                }
            })
            .collect();
        WeightLoad {
            stripe: self.current_stripe(),
            cell_weights,
        }
    }

    fn atomic_op(&self) -> AtomicOp {
        let ix = (self.ox * self.params.stride_x + self.s * self.params.dilation_x) as isize
            - self.params.pad_x as isize;
        let iy = (self.oy * self.params.stride_y + self.r * self.params.dilation_y) as isize
            - self.params.pad_y as isize;
        AtomicOp {
            out_x: self.ox,
            out_y: self.oy,
            feature: self
                .features
                .channel_sliver(ix, iy, self.cg * self.n, self.n),
        }
    }

    /// Scratch buffers sized for this sequencer's array shape.
    #[must_use]
    pub fn scratch(&self) -> CscScratch {
        CscScratch::new(self.k, self.n)
    }

    /// Advances one command, writing its payload into `scratch`
    /// instead of allocating — the hot-path twin of the [`Iterator`]
    /// impl, emitting the same commands in the same order.
    ///
    /// # Panics
    ///
    /// Panics when `scratch` was sized for a different array shape.
    pub fn next_into(&mut self, scratch: &mut CscScratch) -> Option<CscStep> {
        if self.done {
            return None;
        }
        assert!(
            scratch.cell_weights.len() == self.k && scratch.feature.len() == self.n,
            "scratch sized for a different array shape"
        );
        if self.need_weights {
            self.need_weights = false;
            for (cell, sliver) in scratch.cell_weights.iter_mut().enumerate() {
                let kernel = self.kg * self.k + cell;
                if kernel < self.kernels.k() {
                    self.kernels.weight_sliver_into(
                        kernel,
                        self.r,
                        self.s,
                        self.cg * self.n,
                        sliver,
                    );
                } else {
                    sliver.fill(0);
                }
            }
            return Some(CscStep::LoadWeights(self.current_stripe()));
        }
        let ix = (self.ox * self.params.stride_x + self.s * self.params.dilation_x) as isize
            - self.params.pad_x as isize;
        let iy = (self.oy * self.params.stride_y + self.r * self.params.dilation_y) as isize
            - self.params.pad_y as isize;
        self.features
            .channel_sliver_into(ix, iy, self.cg * self.n, &mut scratch.feature);
        let (out_x, out_y) = (self.ox, self.oy);
        self.advance_position();
        Some(CscStep::Atomic { out_x, out_y })
    }

    fn advance_position(&mut self) {
        self.ox += 1;
        if self.ox == self.out_w {
            self.ox = 0;
            self.oy += 1;
            if self.oy == self.out_h {
                self.oy = 0;
                self.advance_stripe();
            }
        }
    }

    fn advance_stripe(&mut self) {
        self.need_weights = true;
        self.s += 1;
        if self.s == self.kernels.s() {
            self.s = 0;
            self.r += 1;
            if self.r == self.kernels.r() {
                self.r = 0;
                self.cg += 1;
                if self.cg == self.channel_groups {
                    self.cg = 0;
                    self.kg += 1;
                    if self.kg == self.kernel_groups {
                        self.done = true;
                    }
                }
            }
        }
    }
}

impl Iterator for CscSequencer {
    type Item = CscCommand;

    fn next(&mut self) -> Option<CscCommand> {
        if self.done {
            return None;
        }
        if self.need_weights {
            self.need_weights = false;
            return Some(CscCommand::LoadWeights(self.weight_load()));
        }
        let op = self.atomic_op();
        self.advance_position();
        Some(CscCommand::Atomic(op))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(k: usize, c: usize) -> (DataCube, KernelSet, ConvParams, NvdlaConfig) {
        let f = DataCube::from_fn(4, 4, c, |x, y, ch| (x + y + ch) as i32 % 5);
        let kn = KernelSet::from_fn(k, 3, 3, c, |k, r, s, ch| ((k + r + s + ch) % 3) as i32);
        (
            f,
            kn,
            ConvParams::valid(),
            NvdlaConfig::nv_small().with_array(8, 8),
        )
    }

    #[test]
    fn command_counts_match_predictions() {
        let (f, k, p, cfg) = setup(8, 8);
        let seq = CscSequencer::new(&f, &k, &p, &cfg).unwrap();
        let stripes = seq.stripe_count();
        let atomics = seq.atomic_op_count();
        let mut loads = 0u64;
        let mut ops = 0u64;
        for cmd in seq {
            match cmd {
                CscCommand::LoadWeights(_) => loads += 1,
                CscCommand::Atomic(_) => ops += 1,
            }
        }
        assert_eq!(loads, stripes);
        assert_eq!(ops, atomics);
        // 1 kernel group x 1 channel group x 3x3 taps = 9 stripes,
        // each streaming 2x2 outputs.
        assert_eq!(loads, 9);
        assert_eq!(ops, 36);
    }

    #[test]
    fn grouping_rounds_up() {
        let (f, k, p, _) = setup(10, 12);
        let cfg = NvdlaConfig::nv_small().with_array(8, 8);
        let seq = CscSequencer::new(&f, &k, &p, &cfg).unwrap();
        // ceil(10/8) = 2 kernel groups, ceil(12/8) = 2 channel groups.
        assert_eq!(seq.stripe_count(), 2 * 2 * 9);
    }

    #[test]
    fn weight_slivers_pad_missing_kernels() {
        let (f, k, p, _) = setup(5, 8);
        let cfg = NvdlaConfig::nv_small().with_array(8, 8);
        let mut seq = CscSequencer::new(&f, &k, &p, &cfg).unwrap();
        if let Some(CscCommand::LoadWeights(load)) = seq.next() {
            assert_eq!(load.cell_weights.len(), 8);
            // Cells 5..8 have no kernel: all-zero slivers.
            for cell in 5..8 {
                assert!(load.cell_weights[cell].iter().all(|&w| w == 0));
            }
        } else {
            panic!("first command must load weights");
        }
    }

    #[test]
    fn first_atomic_covers_origin() {
        let (f, k, p, cfg) = setup(8, 8);
        let mut seq = CscSequencer::new(&f, &k, &p, &cfg).unwrap();
        seq.next(); // weights
        if let Some(CscCommand::Atomic(op)) = seq.next() {
            assert_eq!((op.out_x, op.out_y), (0, 0));
            assert_eq!(op.feature.len(), 8);
            assert_eq!(op.feature, f.channel_sliver(0, 0, 0, 8));
        } else {
            panic!("second command must be an atomic op");
        }
    }

    #[test]
    fn next_into_mirrors_the_iterator_exactly() {
        let (f, k, p, cfg) = setup(10, 12);
        let iter_seq = CscSequencer::new(&f, &k, &p, &cfg).unwrap();
        let mut step_seq = iter_seq.clone();
        let mut scratch = step_seq.scratch();
        let mut steps = 0u64;
        for cmd in iter_seq {
            let step = step_seq.next_into(&mut scratch).expect("same length");
            steps += 1;
            match (cmd, step) {
                (CscCommand::LoadWeights(load), CscStep::LoadWeights(stripe)) => {
                    assert_eq!(load.stripe, stripe);
                    assert_eq!(load.cell_weights, scratch.cell_weights);
                }
                (CscCommand::Atomic(op), CscStep::Atomic { out_x, out_y }) => {
                    assert_eq!((op.out_x, op.out_y), (out_x, out_y));
                    assert_eq!(op.feature, scratch.feature);
                }
                (cmd, step) => panic!("stream divergence: {cmd:?} vs {step:?}"),
            }
        }
        assert!(step_seq.next_into(&mut scratch).is_none());
        assert!(steps > 0);
    }

    #[test]
    fn channel_mismatch_rejected() {
        let f = DataCube::zeros(4, 4, 3);
        let k = KernelSet::zeros(2, 3, 3, 5);
        let cfg = NvdlaConfig::nv_small();
        assert!(CscSequencer::new(&f, &k, &ConvParams::valid(), &cfg).is_err());
    }
}
