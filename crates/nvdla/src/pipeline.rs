//! The convolution-core socket: the [`ConvCore`] trait both NVDLA's CC
//! and Tempus Core implement, plus the baseline binary driver.
//!
//! The trait is the "drop-in replacement" contract of §III: same
//! operands in, same output cube out, same CSC decomposition — only
//! cycle counts and energy differ.

use tempus_arith::IntPrecision;

use crate::cacc::Cacc;
use crate::cbuf::ConvBuffer;
use crate::cmac::BinaryCmac;
use crate::config::NvdlaConfig;
use crate::conv::{check_operands, ConvParams};
use crate::csc::{CscCommand, CscSequencer};
use crate::cube::{DataCube, KernelSet};
use crate::NvdlaError;

/// Execution statistics from one convolution run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunStats {
    /// Total datapath cycles (weight loads + compute + drain).
    pub cycles: u64,
    /// Atomic operations executed.
    pub atomic_ops: u64,
    /// Weight-stationary stripes sequenced.
    pub stripes: u64,
    /// Multiply-accumulate operations actually performed (excludes
    /// gated cells).
    pub macs: u64,
    /// Cell-cycles spent clock-gated (idle cells / silent PEs).
    pub gated_cell_cycles: u64,
    /// Fraction of lane-cycles doing useful MACs.
    pub utilization: f64,
    /// Convolution-buffer reads issued.
    pub cbuf_reads: u64,
}

/// Result of one convolution run: output plus statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvRun {
    /// Raw accumulator output cube (out_w × out_h × K, `i32`).
    pub output: DataCube,
    /// Execution statistics.
    pub stats: RunStats,
}

/// The convolution-core contract: NVDLA's CC and Tempus Core are
/// interchangeable behind it (§III: "designed as a drop-in replacement
/// for the convolution core in NVDLA").
pub trait ConvCore {
    /// Human-readable core name.
    fn name(&self) -> &'static str;

    /// Hardware configuration the core was built with.
    fn config(&self) -> &NvdlaConfig;

    /// Runs one convolution, returning the exact output cube and cycle
    /// statistics.
    ///
    /// # Errors
    ///
    /// Returns shape/precision/capacity errors from the substrate.
    fn convolve(
        &mut self,
        features: &DataCube,
        kernels: &KernelSet,
        params: &ConvParams,
    ) -> Result<ConvRun, NvdlaError>;
}

/// The baseline binary convolution core: CSC + CMAC + CACC.
#[derive(Debug, Clone)]
pub struct NvdlaConvCore {
    config: NvdlaConfig,
}

impl NvdlaConvCore {
    /// Creates the baseline core for `config`.
    #[must_use]
    pub fn new(config: NvdlaConfig) -> Self {
        NvdlaConvCore { config }
    }

    /// Operating precision.
    #[must_use]
    pub fn precision(&self) -> IntPrecision {
        self.config.precision
    }
}

impl ConvCore for NvdlaConvCore {
    fn name(&self) -> &'static str {
        "nvdla-cc"
    }

    fn config(&self) -> &NvdlaConfig {
        &self.config
    }

    fn convolve(
        &mut self,
        features: &DataCube,
        kernels: &KernelSet,
        params: &ConvParams,
    ) -> Result<ConvRun, NvdlaError> {
        check_operands(features, kernels, self.config.precision)?;
        let mut cbuf = ConvBuffer::new(self.config);
        cbuf.load(features, kernels, self.config.precision)?;

        let seq = CscSequencer::new(features, kernels, params, &self.config)?;
        let (out_w, out_h) = seq.output_dims();
        let mut cmac = BinaryCmac::new(
            self.config.atomic_k,
            self.config.atomic_c,
            self.config.precision,
            self.config.cmac_pipeline_depth,
        );
        let mut cacc = Cacc::new(out_w, out_h, kernels.k(), self.config.cacc_bits);

        let mut stats = RunStats::default();
        let mut kernel_base = 0usize;
        let mut pending_kernel_base = 0usize;
        // Kernel base changes only at stripe boundaries; bundles in
        // flight belong to the previous stripe. Track per-bundle bases
        // through the pipe by draining at kernel-group changes.
        let mut current_kg = 0usize;
        for cmd in seq {
            match cmd {
                CscCommand::LoadWeights(load) => {
                    // Flush in-flight bundles before weights change.
                    for bundle in cmac.drain() {
                        cacc.accumulate(&bundle, kernel_base);
                    }
                    if load.stripe.kernel_group != current_kg {
                        current_kg = load.stripe.kernel_group;
                    }
                    pending_kernel_base = load.stripe.kernel_group * self.config.atomic_k;
                    kernel_base = pending_kernel_base;
                    cmac.load_weights(&load.cell_weights);
                    stats.stripes += 1;
                    stats.cycles += 1; // shadow-bank swap cycle
                }
                CscCommand::Atomic(op) => {
                    cbuf.record_read();
                    let active: u64 = op.feature.len().min(self.config.atomic_c) as u64;
                    let _ = active;
                    if let Some(bundle) = cmac.step(Some(&op)) {
                        cacc.accumulate(&bundle, kernel_base);
                    }
                    stats.atomic_ops += 1;
                    stats.cycles += 1;
                }
            }
        }
        for bundle in cmac.drain() {
            cacc.accumulate(&bundle, pending_kernel_base);
        }
        stats.cycles += u64::from(self.config.cmac_pipeline_depth);

        let active_cells: u64 = cmac.cell_activity().iter().map(|a| a.active_cycles()).sum();
        let gated_cells: u64 = cmac.cell_activity().iter().map(|a| a.gated_cycles()).sum();
        stats.gated_cell_cycles = gated_cells;
        stats.macs = active_cells * self.config.atomic_c as u64;
        let lane_cycles = stats.cycles * self.config.lanes() as u64;
        stats.utilization = if lane_cycles == 0 {
            0.0
        } else {
            stats.macs as f64 / lane_cycles as f64
        };
        stats.cbuf_reads = cbuf.reads();

        Ok(ConvRun {
            output: cacc.read_out()?,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::direct_conv;

    fn run_case(
        fw: usize,
        fh: usize,
        c: usize,
        k: usize,
        ksize: usize,
        params: ConvParams,
        config: NvdlaConfig,
    ) {
        let features = DataCube::from_fn(fw, fh, c, |x, y, ch| {
            ((x * 31 + y * 17 + ch * 7) % 255) as i32 - 127
        });
        let kernels = KernelSet::from_fn(k, ksize, ksize, c, |k, r, s, ch| {
            ((k * 13 + r * 5 + s * 3 + ch * 11) % 255) as i32 - 127
        });
        let golden = direct_conv(&features, &kernels, &params).unwrap();
        let mut core = NvdlaConvCore::new(config);
        let run = core.convolve(&features, &kernels, &params).unwrap();
        assert_eq!(run.output, golden);
    }

    #[test]
    fn matches_golden_nv_small() {
        run_case(8, 8, 8, 8, 3, ConvParams::valid(), NvdlaConfig::nv_small());
    }

    #[test]
    fn matches_golden_with_grouping() {
        // Channels and kernels not divisible by the atomic sizes.
        run_case(
            6,
            6,
            11,
            13,
            3,
            ConvParams::unit_stride_same(3),
            NvdlaConfig::nv_small(),
        );
    }

    #[test]
    fn matches_golden_strided_16x16() {
        run_case(
            9,
            9,
            16,
            16,
            3,
            ConvParams::strided(2, 1),
            NvdlaConfig::paper_16x16(),
        );
    }

    #[test]
    fn matches_golden_1x1_kernels() {
        run_case(5, 5, 24, 7, 1, ConvParams::valid(), NvdlaConfig::nv_small());
    }

    #[test]
    fn cycle_count_matches_dataflow_model() {
        let features = DataCube::zeros(4, 4, 8);
        let kernels = KernelSet::from_fn(8, 3, 3, 8, |_, _, _, _| 1);
        let params = ConvParams::valid();
        let mut core = NvdlaConvCore::new(NvdlaConfig::nv_small());
        let run = core.convolve(&features, &kernels, &params).unwrap();
        // 9 stripes (3x3 taps) x (1 load cycle + 4 atomic ops) + drain.
        assert_eq!(run.stats.stripes, 9);
        assert_eq!(run.stats.atomic_ops, 36);
        assert_eq!(run.stats.cycles, 9 + 36 + 3);
    }

    #[test]
    fn utilization_reflects_gated_cells() {
        // Only 2 kernels on an 8-cell array: 6 cells gated.
        let features = DataCube::from_fn(4, 4, 8, |x, _, _| x as i32);
        let kernels = KernelSet::from_fn(2, 1, 1, 8, |_, _, _, _| 1);
        let mut core = NvdlaConvCore::new(NvdlaConfig::nv_small());
        let run = core
            .convolve(&features, &kernels, &ConvParams::valid())
            .unwrap();
        assert!(run.stats.utilization < 0.3);
        assert!(run.stats.gated_cell_cycles > 0);
    }

    #[test]
    fn precision_violation_rejected() {
        let features = DataCube::from_fn(2, 2, 8, |_, _, _| 10);
        let kernels = KernelSet::zeros(1, 1, 1, 8);
        let mut core =
            NvdlaConvCore::new(NvdlaConfig::nv_small().with_precision(IntPrecision::Int4));
        assert!(matches!(
            core.convolve(&features, &kernels, &ConvParams::valid()),
            Err(NvdlaError::Arith(_))
        ));
    }
}
