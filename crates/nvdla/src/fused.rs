//! Fused layer execution: conv → SDP → pool streamed per output row,
//! with no intermediate [`DataCube`] round-trips.
//!
//! The materialized network path
//! ([`crate::network::run_network`]) builds a full conv output cube,
//! then a full SDP output cube, then the pooled cube. This module
//! runs the same three stages as a row pipeline: each conv output row
//! lands in a bounded ring buffer, SDP requantizes it in place, and
//! pooling consumes rows out of the ring as soon as its window is
//! complete — so the per-layer scratch is `out_w × k × pool_window`
//! elements (one row when unpooled), independent of the layer's
//! height.
//!
//! Bit-identity to the materialized stages is the contract: the
//! per-element arithmetic of [`crate::sdp::apply`] and
//! [`crate::pdp::apply`] is replicated exactly (arithmetic shift,
//! ReLU/saturation counters, max-ignores-padding,
//! count-include-pad average with ties-away rounding), and the tests
//! pin outputs and [`SdpStats`] against the unfused pipeline.

use crate::conv::{direct_conv_row, ConvParams};
use crate::cube::{DataCube, KernelSet};
use crate::network::NetworkLayer;
use crate::pdp::{PoolKind, PoolParams};
use crate::sdp::{SdpConfig, SdpStats};
use crate::NvdlaError;

/// Peak streaming scratch of one fused layer in elements: the conv
/// row ring the pipeline retains (`pool_window` rows when pooled, one
/// row otherwise). This is the closed form the observed high-water
/// mark equals exactly, and the figure scratch-budget admission
/// prices.
#[must_use]
pub fn fused_layer_scratch(conv_out_w: usize, k: usize, pool: Option<&PoolParams>) -> u64 {
    (conv_out_w * k) as u64 * pool.map_or(1, |p| p.window) as u64
}

/// Result of one fused layer run.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedLayerRun {
    /// The layer output — bit-identical to conv → SDP → pool through
    /// the materialized cubes.
    pub output: DataCube,
    /// SDP statistics — bit-identical to [`crate::sdp::apply`].
    pub sdp: SdpStats,
    /// Conv rows streamed through the ring.
    pub rows_streamed: u64,
    /// Ring high-water mark in elements; equals
    /// [`fused_layer_scratch`].
    pub peak_scratch_elems: u64,
}

/// One element of [`crate::sdp::apply`], counters included.
fn sdp_element(v: i32, c: usize, config: &SdpConfig, stats: &mut SdpStats) -> i32 {
    stats.elements += 1;
    let mut val = (i64::from(v) + i64::from(config.bias[c])) * i64::from(config.multiplier[c]);
    val >>= config.shift;
    if config.relu && val < 0 {
        val = 0;
        stats.rectified += 1;
    }
    let sat = config.out_precision.saturate(val);
    if i64::from(sat) != val {
        stats.saturated += 1;
    }
    sat
}

/// The row pipeline shared by the fully fused path (conv rows
/// computed on demand) and the post-conv path (conv rows copied from
/// a cycle-accurate core's output): `conv_row(y, dst)` fills one
/// channel-minor conv output row, SDP requantizes it in place inside
/// the ring, and pooling drains completed windows.
fn stream_post_conv(
    mut conv_row: impl FnMut(usize, &mut [i32]),
    conv_w: usize,
    conv_h: usize,
    k: usize,
    sdp: &SdpConfig,
    pool: Option<&PoolParams>,
) -> Result<FusedLayerRun, NvdlaError> {
    if sdp.bias.len() != k || sdp.multiplier.len() != k {
        return Err(NvdlaError::InvalidShape(format!(
            "sdp channel parameters ({} bias, {} mult) do not match cube channels ({k})",
            sdp.bias.len(),
            sdp.multiplier.len(),
        )));
    }
    let row_elems = conv_w * k;
    let mut stats = SdpStats::default();

    let Some(params) = pool else {
        // Unpooled: a single reused row of scratch, flushed straight
        // into the output storage.
        let mut row = vec![0i32; row_elems];
        let mut data = Vec::with_capacity(row_elems * conv_h);
        for y in 0..conv_h {
            conv_row(y, &mut row);
            for (i, v) in row.iter_mut().enumerate() {
                *v = sdp_element(*v, i % k, sdp, &mut stats);
            }
            data.extend_from_slice(&row);
        }
        stats.cycles = stats.elements;
        return Ok(FusedLayerRun {
            output: DataCube::from_vec(conv_w, conv_h, k, data)?,
            sdp: stats,
            rows_streamed: conv_h as u64,
            peak_scratch_elems: fused_layer_scratch(conv_w, k, None),
        });
    };

    // Pooled: validate exactly as pdp::apply does, then keep a
    // `window`-row ring of requantized conv rows and emit each pool
    // row the moment its last in-bounds input row is resident.
    if params.window == 0 || params.stride == 0 {
        return Err(NvdlaError::InvalidShape(
            "pool window and stride must be >= 1".into(),
        ));
    }
    let padded_w = conv_w + 2 * params.pad;
    let padded_h = conv_h + 2 * params.pad;
    if params.window > padded_w || params.window > padded_h {
        return Err(NvdlaError::EmptyOutput);
    }
    let out_w = (padded_w - params.window) / params.stride + 1;
    let out_h = (padded_h - params.window) / params.stride + 1;

    let mut ring = vec![0i32; row_elems * params.window];
    let mut data = Vec::with_capacity(out_w * out_h * k);
    // The conv row on which pool row `oy` becomes emittable: its last
    // in-bounds input row (clamped so fully padded windows emit on
    // row 0). Nondecreasing in `oy`, so a single cursor suffices.
    let emit_row = |oy: usize| -> usize {
        let y0 = (oy * params.stride) as isize - params.pad as isize;
        let last = y0 + params.window as isize - 1;
        last.clamp(0, conv_h as isize - 1) as usize
    };
    let mut next_oy = 0usize;
    for y in 0..conv_h {
        let slot = &mut ring[(y % params.window) * row_elems..][..row_elems];
        conv_row(y, slot);
        for (i, v) in slot.iter_mut().enumerate() {
            *v = sdp_element(*v, i % k, sdp, &mut stats);
        }
        while next_oy < out_h && emit_row(next_oy) == y {
            let y0 = (next_oy * params.stride) as isize - params.pad as isize;
            for ox in 0..out_w {
                let x0 = (ox * params.stride) as isize - params.pad as isize;
                for c in 0..k {
                    let value = match params.kind {
                        PoolKind::Max => {
                            let mut best: Option<i32> = None;
                            for dy in 0..params.window {
                                for dx in 0..params.window {
                                    let (x, yy) = (x0 + dx as isize, y0 + dy as isize);
                                    if x >= 0
                                        && yy >= 0
                                        && (x as usize) < conv_w
                                        && (yy as usize) < conv_h
                                    {
                                        let row =
                                            &ring[(yy as usize % params.window) * row_elems..];
                                        let v = row[x as usize * k + c];
                                        best = Some(best.map_or(v, |b: i32| b.max(v)));
                                    }
                                }
                            }
                            best.unwrap_or(0)
                        }
                        PoolKind::Average => {
                            let mut sum = 0i64;
                            for dy in 0..params.window {
                                for dx in 0..params.window {
                                    let (x, yy) = (x0 + dx as isize, y0 + dy as isize);
                                    if x >= 0
                                        && yy >= 0
                                        && (x as usize) < conv_w
                                        && (yy as usize) < conv_h
                                    {
                                        let row =
                                            &ring[(yy as usize % params.window) * row_elems..];
                                        sum += i64::from(row[x as usize * k + c]);
                                    }
                                }
                            }
                            let div = (params.window * params.window) as i64;
                            // Round to nearest, ties away from zero —
                            // identical to pdp::apply.
                            let half = div / 2;
                            (if sum >= 0 {
                                (sum + half) / div
                            } else {
                                (sum - half) / div
                            }) as i32
                        }
                    };
                    data.push(value);
                }
            }
            next_oy += 1;
        }
    }
    stats.cycles = stats.elements;
    Ok(FusedLayerRun {
        output: DataCube::from_vec(out_w, out_h, k, data)?,
        sdp: stats,
        rows_streamed: conv_h as u64,
        peak_scratch_elems: fused_layer_scratch(conv_w, k, Some(params)),
    })
}

/// Fully fused functional layer: conv rows computed on demand via
/// [`direct_conv_row`] — the conv output cube never exists — then SDP
/// and pooling streamed out of the bounded ring. Bit-identical to
/// `direct_conv` → `sdp::apply` → `pdp::apply`.
///
/// # Errors
///
/// The same shape errors, in the same order, as the materialized
/// pipeline.
pub fn run_layer_fused(
    input: &DataCube,
    layer: &NetworkLayer,
) -> Result<FusedLayerRun, NvdlaError> {
    if input.c() != layer.kernels.c() {
        return Err(NvdlaError::ChannelMismatch {
            feature_c: input.c(),
            kernel_c: layer.kernels.c(),
        });
    }
    let (out_w, out_h) =
        layer
            .conv
            .output_dims(input.w(), input.h(), layer.kernels.r(), layer.kernels.s())?;
    let (kernels, params): (&KernelSet, &ConvParams) = (&layer.kernels, &layer.conv);
    stream_post_conv(
        |y, dst| direct_conv_row(input, kernels, params, y, out_w, dst),
        out_w,
        out_h,
        kernels.k(),
        &layer.sdp,
        layer.pool.as_ref(),
    )
}

/// Fuses the post-conv stages over an already computed conv output
/// (the cycle-accurate cores produce one): SDP and pooling stream per
/// row out of the bounded ring, skipping the intermediate SDP cube.
/// Bit-identical to `sdp::apply` → `pdp::apply`.
///
/// # Errors
///
/// The same shape errors as the materialized stages.
pub fn fuse_post_conv(
    conv: &DataCube,
    sdp: &SdpConfig,
    pool: Option<&PoolParams>,
) -> Result<FusedLayerRun, NvdlaError> {
    let row_elems = conv.w() * conv.c();
    let data = conv.as_slice();
    stream_post_conv(
        |y, dst| dst.copy_from_slice(&data[y * row_elems..(y + 1) * row_elems]),
        conv.w(),
        conv.h(),
        conv.c(),
        sdp,
        pool,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::direct_conv;
    use crate::{pdp, sdp};
    use tempus_arith::IntPrecision;

    fn layer(pool: Option<PoolParams>) -> (DataCube, NetworkLayer) {
        let input = DataCube::from_fn(7, 6, 3, |x, y, c| {
            ((x as i32 * 31 + y as i32 * 17 + c as i32 * 7) % 255) - 127
        });
        let kernels = KernelSet::from_fn(5, 3, 3, 3, |k, r, s, c| {
            ((k as i32 * 13 + r as i32 * 5 + s as i32 * 3 + c as i32 * 11) % 255) - 127
        });
        let mut layer = NetworkLayer::conv_relu(
            "fused",
            kernels,
            ConvParams::unit_stride_same(3),
            6,
            IntPrecision::Int8,
        );
        layer.pool = pool;
        (input, layer)
    }

    fn materialized(input: &DataCube, layer: &NetworkLayer) -> (DataCube, SdpStats) {
        let conv = direct_conv(input, &layer.kernels, &layer.conv).unwrap();
        let (requant, stats) = sdp::apply(&conv, &layer.sdp).unwrap();
        let out = match &layer.pool {
            Some(pool) => pdp::apply(&requant, pool).unwrap(),
            None => requant,
        };
        (out, stats)
    }

    #[test]
    fn fused_layer_matches_materialized_pipeline() {
        for pool in [
            None,
            Some(PoolParams::max(2)),
            Some(PoolParams::max(3)),
            Some(PoolParams::global_average(2)),
            Some(PoolParams {
                kind: PoolKind::Max,
                window: 2,
                stride: 2,
                pad: 1,
            }),
            Some(PoolParams {
                kind: PoolKind::Average,
                window: 3,
                stride: 2,
                pad: 1,
            }),
        ] {
            let (input, layer) = layer(pool);
            let (want, want_stats) = materialized(&input, &layer);
            let fused = run_layer_fused(&input, &layer).unwrap();
            assert_eq!(fused.output, want, "pool={pool:?}");
            assert_eq!(fused.sdp, want_stats, "pool={pool:?}");
            assert_eq!(
                fused.peak_scratch_elems,
                fused_layer_scratch(7, 5, pool.as_ref())
            );
            assert_eq!(fused.rows_streamed, 6);
        }
    }

    #[test]
    fn post_conv_fusion_matches_unfused_stages() {
        let (input, layer) = layer(Some(PoolParams::max(2)));
        let conv = direct_conv(&input, &layer.kernels, &layer.conv).unwrap();
        let (requant, want_stats) = sdp::apply(&conv, &layer.sdp).unwrap();
        let want = pdp::apply(&requant, &PoolParams::max(2)).unwrap();
        let fused = fuse_post_conv(&conv, &layer.sdp, layer.pool.as_ref()).unwrap();
        assert_eq!(fused.output, want);
        assert_eq!(fused.sdp, want_stats);
    }

    #[test]
    fn scratch_is_height_invariant() {
        // Two layers differing only in input height share a scratch
        // figure: the ring scales with width × channels × window, not
        // with the streamed extent.
        let short = fused_layer_scratch(16, 8, Some(&PoolParams::max(2)));
        let tall = fused_layer_scratch(16, 8, Some(&PoolParams::max(2)));
        assert_eq!(short, tall);
        assert_eq!(short, 16 * 8 * 2);
    }

    #[test]
    fn shape_errors_match_materialized_order() {
        let (input, mut layer) = layer(None);
        layer.sdp.bias.pop();
        assert!(matches!(
            run_layer_fused(&input, &layer),
            Err(NvdlaError::InvalidShape(_))
        ));
        let (input, mut layer) = layer_with_bad_channels();
        layer.pool = None;
        assert!(matches!(
            run_layer_fused(&input, &layer),
            Err(NvdlaError::ChannelMismatch { .. })
        ));
    }

    fn layer_with_bad_channels() -> (DataCube, NetworkLayer) {
        let (_, layer) = layer(None);
        (DataCube::zeros(7, 6, 4), layer)
    }
}
