//! Cycle-accurate binary CMAC: the k×n MAC array Tempus Core replaces.
//!
//! Per cycle the CMAC accepts one atomic op (a broadcast 1×1×n feature
//! sliver), multiplies it against every cell's cached weight sliver,
//! reduces per cell through the adder tree and emits k partial sums
//! after its pipeline latency (§II-C). Cells whose weight sliver is
//! all-zero (unused kernels) are clock-gated.

use std::collections::VecDeque;

use tempus_arith::{adder_tree, IntPrecision};
use tempus_sim::ActivityCounter;

use crate::csc::AtomicOp;

/// A bundle of k partial sums leaving the array, tagged with its
/// output position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PsumBundle {
    /// Output x.
    pub out_x: usize,
    /// Output y.
    pub out_y: usize,
    /// One partial sum per PE cell.
    pub sums: Vec<i64>,
}

/// The cycle-accurate binary MAC array.
#[derive(Debug, Clone)]
pub struct BinaryCmac {
    k: usize,
    n: usize,
    precision: IntPrecision,
    pipeline_depth: u32,
    weights: Vec<Vec<i32>>,
    cell_gated: Vec<bool>,
    pipeline: VecDeque<Option<PsumBundle>>,
    cycles: u64,
    ops_accepted: u64,
    cell_activity: Vec<ActivityCounter>,
}

impl BinaryCmac {
    /// Creates an array of `k` cells × `n` multipliers at `precision`
    /// with the given pipeline depth (≥1).
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the pipeline depth is zero.
    #[must_use]
    pub fn new(k: usize, n: usize, precision: IntPrecision, pipeline_depth: u32) -> Self {
        assert!(k > 0 && n > 0, "array dimensions must be nonzero");
        assert!(pipeline_depth >= 1, "pipeline depth must be >= 1");
        BinaryCmac {
            k,
            n,
            precision,
            pipeline_depth,
            weights: vec![vec![0; n]; k],
            cell_gated: vec![true; k],
            pipeline: VecDeque::from(vec![None; pipeline_depth as usize - 1]),
            cycles: 0,
            ops_accepted: 0,
            cell_activity: vec![ActivityCounter::new(); k],
        }
    }

    /// Number of PE cells.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Multipliers per cell.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Caches new weight slivers (one stripe). Cells with an all-zero
    /// sliver are gated until the next load.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not exactly k slivers of n weights, or a
    /// weight violates the precision — the CSC validates upstream, so
    /// this indicates a driver bug.
    pub fn load_weights(&mut self, cell_weights: &[Vec<i32>]) {
        assert_eq!(cell_weights.len(), self.k, "expected one sliver per cell");
        for (cell, sliver) in cell_weights.iter().enumerate() {
            assert_eq!(sliver.len(), self.n, "sliver width mismatch");
            for &w in sliver {
                self.precision.check(w).expect("weight out of range");
            }
            self.cell_gated[cell] = sliver.iter().all(|&w| w == 0);
            self.weights[cell].copy_from_slice(sliver);
        }
    }

    /// Advances one clock cycle, optionally accepting an atomic op.
    /// Returns the bundle leaving the pipeline this cycle, if any.
    ///
    /// # Panics
    ///
    /// Panics if the feature sliver width mismatches or violates the
    /// precision (driver bug; CSC validates upstream).
    pub fn step(&mut self, input: Option<&AtomicOp>) -> Option<PsumBundle> {
        self.cycles += 1;
        let entering = input.map(|op| {
            assert_eq!(op.feature.len(), self.n, "feature sliver width mismatch");
            for &a in &op.feature {
                self.precision.check(a).expect("activation out of range");
            }
            self.ops_accepted += 1;
            let sums = (0..self.k)
                .map(|cell| {
                    if self.cell_gated[cell] {
                        self.cell_activity[cell].record_gated();
                        0
                    } else {
                        self.cell_activity[cell].record_active();
                        let terms: Vec<i64> = op
                            .feature
                            .iter()
                            .zip(&self.weights[cell])
                            .map(|(&a, &w)| i64::from(a) * i64::from(w))
                            .collect();
                        adder_tree::reduce(&terms).expect("cell reduction overflow")
                    }
                })
                .collect();
            PsumBundle {
                out_x: op.out_x,
                out_y: op.out_y,
                sums,
            }
        });
        self.pipeline.push_back(entering);
        self.pipeline.pop_front().flatten()
    }

    /// Drains the pipeline, returning any remaining bundles in order.
    pub fn drain(&mut self) -> Vec<PsumBundle> {
        let mut out = Vec::new();
        for _ in 0..self.pipeline_depth {
            if let Some(b) = self.step(None) {
                out.push(b);
            }
        }
        out
    }

    /// Cycles ticked so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Atomic ops accepted so far.
    #[must_use]
    pub fn ops_accepted(&self) -> u64 {
        self.ops_accepted
    }

    /// Per-cell activity counters (clock gating statistics).
    #[must_use]
    pub fn cell_activity(&self) -> &[ActivityCounter] {
        &self.cell_activity
    }

    /// Resets pipeline and statistics (weights are kept).
    pub fn reset(&mut self) {
        self.pipeline = VecDeque::from(vec![None; self.pipeline_depth as usize - 1]);
        self.cycles = 0;
        self.ops_accepted = 0;
        self.cell_activity = vec![ActivityCounter::new(); self.k];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempus_arith::dot;

    fn op(feature: Vec<i32>) -> AtomicOp {
        AtomicOp {
            out_x: 3,
            out_y: 5,
            feature,
        }
    }

    #[test]
    fn produces_exact_dot_products_after_latency() {
        let mut cmac = BinaryCmac::new(2, 4, IntPrecision::Int8, 3);
        let w0 = vec![1, -2, 3, -4];
        let w1 = vec![-5, 6, -7, 8];
        cmac.load_weights(&[w0.clone(), w1.clone()]);
        let feat = vec![9, 10, -11, 12];
        // Cycle 1: accept; cycles 2,3: bubble; output on cycle 3.
        assert!(cmac.step(Some(&op(feat.clone()))).is_none());
        assert!(cmac.step(None).is_none());
        let out = cmac.step(None).expect("pipeline latency is 3");
        assert_eq!(out.out_x, 3);
        assert_eq!(out.out_y, 5);
        assert_eq!(
            out.sums[0],
            dot::binary(&feat, &w0, IntPrecision::Int8).unwrap()
        );
        assert_eq!(
            out.sums[1],
            dot::binary(&feat, &w1, IntPrecision::Int8).unwrap()
        );
    }

    #[test]
    fn sustained_throughput_is_one_bundle_per_cycle() {
        let mut cmac = BinaryCmac::new(1, 2, IntPrecision::Int8, 2);
        cmac.load_weights(&[vec![1, 1]]);
        let mut outputs = 0;
        for i in 0..10 {
            let o = op(vec![i, i]);
            if cmac.step(Some(&o)).is_some() {
                outputs += 1;
            }
        }
        outputs += cmac.drain().len();
        assert_eq!(outputs, 10);
        assert_eq!(cmac.ops_accepted(), 10);
    }

    #[test]
    fn zero_weight_cells_are_gated() {
        let mut cmac = BinaryCmac::new(2, 2, IntPrecision::Int8, 1);
        cmac.load_weights(&[vec![1, 2], vec![0, 0]]);
        let out = cmac.step(Some(&op(vec![3, 4]))).unwrap();
        assert_eq!(out.sums[1], 0);
        assert_eq!(cmac.cell_activity()[0].active_cycles(), 1);
        assert_eq!(cmac.cell_activity()[1].gated_cycles(), 1);
    }

    #[test]
    fn drain_flushes_in_flight_bundles() {
        let mut cmac = BinaryCmac::new(1, 1, IntPrecision::Int8, 4);
        cmac.load_weights(&[vec![2]]);
        cmac.step(Some(&op(vec![5])));
        cmac.step(Some(&op(vec![7])));
        let drained = cmac.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].sums[0], 10);
        assert_eq!(drained[1].sums[0], 14);
    }

    #[test]
    #[should_panic(expected = "sliver width mismatch")]
    fn wrong_sliver_width_panics() {
        let mut cmac = BinaryCmac::new(1, 4, IntPrecision::Int8, 1);
        cmac.load_weights(&[vec![1, 2]]);
    }

    #[test]
    fn reset_preserves_weights() {
        let mut cmac = BinaryCmac::new(1, 1, IntPrecision::Int8, 1);
        cmac.load_weights(&[vec![3]]);
        cmac.step(Some(&op(vec![2])));
        cmac.reset();
        assert_eq!(cmac.cycles(), 0);
        let out = cmac.step(Some(&op(vec![2]))).unwrap();
        assert_eq!(out.sums[0], 6, "weights must survive reset");
    }
}
