//! Convolution accumulator (CACC).
//!
//! CACC owns the partial-sum assembly: each incoming bundle of k
//! partial sums is added into per-(position, kernel) accumulators of
//! configurable width, saturating on overflow as the RTL does. Once
//! every stripe has been folded in, the assembly is read out as the
//! layer's output cube.

use tempus_arith::binary::saturating_accumulate;

use crate::cmac::PsumBundle;
use crate::cube::DataCube;
use crate::NvdlaError;

/// The accumulation buffer for one convolution's output.
#[derive(Debug, Clone)]
pub struct Cacc {
    out_w: usize,
    out_h: usize,
    kernels: usize,
    acc_bits: u32,
    acc: Vec<i64>,
    saturations: u64,
    bundles: u64,
}

impl Cacc {
    /// Creates an accumulator for an `out_w`×`out_h`×`kernels` output
    /// with `acc_bits`-wide two's complement accumulators.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `acc_bits` outside `8..=64`.
    #[must_use]
    pub fn new(out_w: usize, out_h: usize, kernels: usize, acc_bits: u32) -> Self {
        assert!(
            out_w > 0 && out_h > 0 && kernels > 0,
            "output dimensions must be nonzero"
        );
        assert!((8..=64).contains(&acc_bits), "acc_bits must be 8..=64");
        Cacc {
            out_w,
            out_h,
            kernels,
            acc_bits,
            acc: vec![0; out_w * out_h * kernels],
            saturations: 0,
            bundles: 0,
        }
    }

    /// Folds one partial-sum bundle in. `kernel_base` is the first
    /// kernel index the bundle's cells map to (kernel group × k);
    /// sums mapping past the kernel count are discarded (gated cells).
    ///
    /// # Panics
    ///
    /// Panics if the output position is out of range (driver bug).
    pub fn accumulate(&mut self, bundle: &PsumBundle, kernel_base: usize) {
        assert!(
            bundle.out_x < self.out_w && bundle.out_y < self.out_h,
            "output position out of range"
        );
        self.bundles += 1;
        for (cell, &sum) in bundle.sums.iter().enumerate() {
            let kernel = kernel_base + cell;
            if kernel >= self.kernels {
                continue;
            }
            let idx = (bundle.out_y * self.out_w + bundle.out_x) * self.kernels + kernel;
            let before = self.acc[idx];
            let after = saturating_accumulate(before, sum, self.acc_bits);
            if after != before.wrapping_add(sum) {
                self.saturations += 1;
            }
            self.acc[idx] = after;
        }
    }

    /// Reads the assembled output as a cube of `i32`.
    ///
    /// # Errors
    ///
    /// Returns [`NvdlaError::InvalidShape`] if any accumulator exceeds
    /// `i32` (callers picking adequate `acc_bits` never see this).
    pub fn read_out(&self) -> Result<DataCube, NvdlaError> {
        let mut data = Vec::with_capacity(self.acc.len());
        for &v in &self.acc {
            data.push(i32::try_from(v).map_err(|_| {
                NvdlaError::InvalidShape("accumulator value exceeds i32 output".into())
            })?);
        }
        DataCube::from_vec(self.out_w, self.out_h, self.kernels, data)
    }

    /// Saturation events observed (0 in correctly sized runs).
    #[must_use]
    pub fn saturations(&self) -> u64 {
        self.saturations
    }

    /// Bundles folded in.
    #[must_use]
    pub fn bundles(&self) -> u64 {
        self.bundles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bundle(x: usize, y: usize, sums: Vec<i64>) -> PsumBundle {
        PsumBundle {
            out_x: x,
            out_y: y,
            sums,
        }
    }

    #[test]
    fn accumulates_across_bundles() {
        let mut cacc = Cacc::new(2, 2, 3, 34);
        cacc.accumulate(&bundle(0, 0, vec![10, 20, 30]), 0);
        cacc.accumulate(&bundle(0, 0, vec![1, 2, 3]), 0);
        let out = cacc.read_out().unwrap();
        assert_eq!(out.get(0, 0, 0), 11);
        assert_eq!(out.get(0, 0, 1), 22);
        assert_eq!(out.get(0, 0, 2), 33);
        assert_eq!(cacc.bundles(), 2);
    }

    #[test]
    fn kernel_base_offsets_cells() {
        let mut cacc = Cacc::new(1, 1, 5, 34);
        // Kernel group 1 with k=2 cells maps to kernels 2 and 3.
        cacc.accumulate(&bundle(0, 0, vec![7, 9]), 2);
        let out = cacc.read_out().unwrap();
        assert_eq!(out.get(0, 0, 2), 7);
        assert_eq!(out.get(0, 0, 3), 9);
        assert_eq!(out.get(0, 0, 0), 0);
    }

    #[test]
    fn sums_past_kernel_count_discarded() {
        let mut cacc = Cacc::new(1, 1, 3, 34);
        cacc.accumulate(&bundle(0, 0, vec![1, 2, 3, 999]), 0);
        let out = cacc.read_out().unwrap();
        assert_eq!(out.get(0, 0, 2), 3);
    }

    #[test]
    fn saturation_counted_and_clamped() {
        let mut cacc = Cacc::new(1, 1, 1, 8);
        cacc.accumulate(&bundle(0, 0, vec![100]), 0);
        cacc.accumulate(&bundle(0, 0, vec![100]), 0);
        assert_eq!(cacc.saturations(), 1);
        let out = cacc.read_out().unwrap();
        assert_eq!(out.get(0, 0, 0), 127);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn position_bounds_checked() {
        let mut cacc = Cacc::new(2, 2, 1, 34);
        cacc.accumulate(&bundle(2, 0, vec![1]), 0);
    }
}
