//! SDP: the post-processing engine performing bias addition,
//! per-channel scaling (requantization) and ReLU, saturating back to
//! the working precision (part of NVDLA's "post-processing unit",
//! §II-C).

use tempus_arith::IntPrecision;

use crate::cube::DataCube;
use crate::NvdlaError;

/// Per-channel requantization: `out = clamp(((x + bias) * mult) >> shift)`
/// with optional ReLU, mirroring integer-only inference pipelines.
#[derive(Debug, Clone)]
pub struct SdpConfig {
    /// Per-output-channel bias added to the raw accumulator.
    pub bias: Vec<i32>,
    /// Per-output-channel multiplier.
    pub multiplier: Vec<i32>,
    /// Right-shift applied after multiplication (rounding toward
    /// negative infinity, as a hardware arithmetic shift does).
    pub shift: u32,
    /// Apply ReLU before saturation.
    pub relu: bool,
    /// Output precision to saturate into.
    pub out_precision: IntPrecision,
}

impl SdpConfig {
    /// Pass-through configuration (no bias, unit scale) that only
    /// saturates to `out_precision`.
    #[must_use]
    pub fn passthrough(channels: usize, out_precision: IntPrecision) -> Self {
        SdpConfig {
            bias: vec![0; channels],
            multiplier: vec![1; channels],
            shift: 0,
            relu: false,
            out_precision,
        }
    }

    /// Pass-through plus ReLU.
    #[must_use]
    pub fn relu(channels: usize, out_precision: IntPrecision) -> Self {
        SdpConfig {
            relu: true,
            ..SdpConfig::passthrough(channels, out_precision)
        }
    }

    /// Order-stable FNV-1a digest over the full requantization
    /// configuration (per-channel vectors included) — cache-key
    /// material for the serving layer.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        crate::cube::fnv1a(
            [
                self.bias.len() as u64,
                u64::from(self.shift),
                u64::from(self.relu),
                u64::from(self.out_precision.bits()),
            ]
            .into_iter()
            .chain(self.bias.iter().map(|&v| v as u32 as u64))
            .chain(self.multiplier.iter().map(|&v| v as u32 as u64)),
        )
    }
}

/// Statistics from one SDP pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SdpStats {
    /// Elements processed.
    pub elements: u64,
    /// Elements clipped by saturation.
    pub saturated: u64,
    /// Elements zeroed by ReLU.
    pub rectified: u64,
    /// Cycles consumed (one element per lane per cycle; the model
    /// assumes a single lane, so elements == cycles).
    pub cycles: u64,
}

/// Applies `config` to a raw accumulator cube (channel dimension =
/// output channels).
///
/// # Errors
///
/// Returns [`NvdlaError::InvalidShape`] when the per-channel vectors
/// do not match the cube's channel count.
pub fn apply(cube: &DataCube, config: &SdpConfig) -> Result<(DataCube, SdpStats), NvdlaError> {
    if config.bias.len() != cube.c() || config.multiplier.len() != cube.c() {
        return Err(NvdlaError::InvalidShape(format!(
            "sdp channel parameters ({} bias, {} mult) do not match cube channels ({})",
            config.bias.len(),
            config.multiplier.len(),
            cube.c()
        )));
    }
    let mut out = DataCube::zeros(cube.w(), cube.h(), cube.c());
    let mut stats = SdpStats::default();
    for (x, y, c, v) in cube.iter() {
        stats.elements += 1;
        let mut val = (i64::from(v) + i64::from(config.bias[c])) * i64::from(config.multiplier[c]);
        val >>= config.shift;
        if config.relu && val < 0 {
            val = 0;
            stats.rectified += 1;
        }
        let sat = config.out_precision.saturate(val);
        if i64::from(sat) != val {
            stats.saturated += 1;
        }
        out.set(x, y, c, sat);
    }
    stats.cycles = stats.elements;
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_saturates_only() {
        let cube = DataCube::from_fn(2, 1, 2, |x, _, c| (x as i32 * 1000 - 500) * (c as i32 + 1));
        let (out, stats) = apply(&cube, &SdpConfig::passthrough(2, IntPrecision::Int8)).unwrap();
        assert_eq!(out.get(0, 0, 0), -128);
        assert_eq!(out.get(1, 0, 0), 127);
        assert_eq!(stats.saturated, 4);
        assert_eq!(stats.elements, 4);
    }

    #[test]
    fn relu_zeroes_negatives() {
        let cube = DataCube::from_fn(2, 1, 1, |x, _, _| if x == 0 { -5 } else { 5 });
        let (out, stats) = apply(&cube, &SdpConfig::relu(1, IntPrecision::Int8)).unwrap();
        assert_eq!(out.get(0, 0, 0), 0);
        assert_eq!(out.get(1, 0, 0), 5);
        assert_eq!(stats.rectified, 1);
    }

    #[test]
    fn bias_scale_shift_requantize() {
        let cube = DataCube::from_fn(1, 1, 1, |_, _, _| 100);
        let cfg = SdpConfig {
            bias: vec![28],
            multiplier: vec![3],
            shift: 2,
            relu: false,
            out_precision: IntPrecision::Int8,
        };
        // (100 + 28) * 3 >> 2 = 96.
        let (out, _) = apply(&cube, &cfg).unwrap();
        assert_eq!(out.get(0, 0, 0), 96);
    }

    #[test]
    fn arithmetic_shift_rounds_toward_neg_infinity() {
        let cube = DataCube::from_fn(1, 1, 1, |_, _, _| -3);
        let cfg = SdpConfig {
            bias: vec![0],
            multiplier: vec![1],
            shift: 1,
            relu: false,
            out_precision: IntPrecision::Int8,
        };
        let (out, _) = apply(&cube, &cfg).unwrap();
        assert_eq!(out.get(0, 0, 0), -2, "-3 >> 1 = -2 in hardware");
    }

    #[test]
    fn channel_mismatch_rejected() {
        let cube = DataCube::zeros(1, 1, 3);
        assert!(apply(&cube, &SdpConfig::passthrough(2, IntPrecision::Int8)).is_err());
    }
}
