//! NVDLA hardware configurations.
//!
//! NVDLA ships as a configurable IP; the paper uses the `nv_small`
//! profile (§II-C) for its embedded focus and evaluates PE arrays up to
//! 16×16. A configuration fixes the atomic sizes (`atomic_c` =
//! multipliers per PE cell = n, `atomic_k` = PE cells = k), the
//! convolution buffer geometry and the operating precision.

use tempus_arith::IntPrecision;

/// A convolution-pipeline hardware configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvdlaConfig {
    /// Multipliers per PE cell (atomic-C): channels consumed per atomic op.
    pub atomic_c: usize,
    /// PE cells (atomic-K): kernels served per atomic op.
    pub atomic_k: usize,
    /// Convolution buffer banks.
    pub cbuf_banks: usize,
    /// Bytes per convolution buffer bank.
    pub cbuf_bank_bytes: usize,
    /// Operating precision of the MAC datapath.
    pub precision: IntPrecision,
    /// CMAC pipeline depth in cycles (multiply, reduce, retime).
    pub cmac_pipeline_depth: u32,
    /// Accumulator width in bits inside CACC.
    pub cacc_bits: u32,
}

impl NvdlaConfig {
    /// The `nv_small` profile: 8×8 MACs, 32 banks × 4 KiB CBUF, INT8.
    #[must_use]
    pub fn nv_small() -> Self {
        NvdlaConfig {
            atomic_c: 8,
            atomic_k: 8,
            cbuf_banks: 32,
            cbuf_bank_bytes: 4 * 1024,
            precision: IntPrecision::Int8,
            cmac_pipeline_depth: 3,
            cacc_bits: 34,
        }
    }

    /// The paper's evaluation configuration: a 16×16 PE array.
    #[must_use]
    pub fn paper_16x16() -> Self {
        NvdlaConfig {
            atomic_c: 16,
            atomic_k: 16,
            ..NvdlaConfig::nv_small()
        }
    }

    /// The `nv_large`-style profile: 64 channels × 16 kernels.
    #[must_use]
    pub fn nv_large() -> Self {
        NvdlaConfig {
            atomic_c: 64,
            atomic_k: 16,
            cbuf_banks: 32,
            cbuf_bank_bytes: 16 * 1024,
            precision: IntPrecision::Int8,
            cmac_pipeline_depth: 3,
            cacc_bits: 48,
        }
    }

    /// Overrides the operating precision (builder style).
    #[must_use]
    pub fn with_precision(mut self, precision: IntPrecision) -> Self {
        self.precision = precision;
        self
    }

    /// Overrides the array shape (builder style).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn with_array(mut self, k: usize, n: usize) -> Self {
        assert!(k > 0 && n > 0, "array dimensions must be nonzero");
        self.atomic_k = k;
        self.atomic_c = n;
        self
    }

    /// Total convolution buffer capacity in bytes.
    #[must_use]
    pub fn cbuf_bytes(&self) -> usize {
        self.cbuf_banks * self.cbuf_bank_bytes
    }

    /// MAC lanes in the array.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.atomic_c * self.atomic_k
    }
}

impl Default for NvdlaConfig {
    fn default() -> Self {
        NvdlaConfig::nv_small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nv_small_profile() {
        let c = NvdlaConfig::nv_small();
        assert_eq!(c.atomic_c, 8);
        assert_eq!(c.atomic_k, 8);
        assert_eq!(c.cbuf_bytes(), 128 * 1024);
        assert_eq!(c.lanes(), 64);
    }

    #[test]
    fn paper_configuration_is_16x16() {
        let c = NvdlaConfig::paper_16x16();
        assert_eq!(c.lanes(), 256);
        assert_eq!(c.precision, IntPrecision::Int8);
    }

    #[test]
    fn builders_override() {
        let c = NvdlaConfig::nv_small()
            .with_precision(IntPrecision::Int4)
            .with_array(16, 4);
        assert_eq!(c.precision, IntPrecision::Int4);
        assert_eq!(c.atomic_k, 16);
        assert_eq!(c.atomic_c, 4);
    }

    #[test]
    fn nv_large_is_bigger() {
        assert!(NvdlaConfig::nv_large().lanes() > NvdlaConfig::nv_small().lanes());
        assert!(NvdlaConfig::nv_large().cbuf_bytes() > NvdlaConfig::nv_small().cbuf_bytes());
    }
}
