//! Data cubes: NVDLA's W×H×C feature tensors and K×R×S×C kernel sets.

use std::fmt;

use tempus_arith::{ArithError, IntPrecision};

use crate::NvdlaError;

/// A W×H×C tensor of `i32` elements, channel-minor (NVDLA feeds
/// 1×1×n channel slivers to the MAC array, so `c` is the fastest
/// dimension in memory).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataCube {
    w: usize,
    h: usize,
    c: usize,
    data: Vec<i32>,
}

impl DataCube {
    /// Creates a zero-filled cube.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn zeros(w: usize, h: usize, c: usize) -> Self {
        assert!(w > 0 && h > 0 && c > 0, "cube dimensions must be nonzero");
        DataCube {
            w,
            h,
            c,
            data: vec![0; w * h * c],
        }
    }

    /// Builds a cube element-wise from `f(x, y, c)`.
    #[must_use]
    pub fn from_fn(
        w: usize,
        h: usize,
        c: usize,
        mut f: impl FnMut(usize, usize, usize) -> i32,
    ) -> Self {
        let mut cube = DataCube::zeros(w, h, c);
        for y in 0..h {
            for x in 0..w {
                for ch in 0..c {
                    let v = f(x, y, ch);
                    cube.set(x, y, ch, v);
                }
            }
        }
        cube
    }

    /// Builds a cube from a channel-minor vector.
    ///
    /// # Errors
    ///
    /// Returns [`NvdlaError::InvalidShape`] when `data.len() != w*h*c`.
    pub fn from_vec(w: usize, h: usize, c: usize, data: Vec<i32>) -> Result<Self, NvdlaError> {
        if data.len() != w * h * c {
            return Err(NvdlaError::InvalidShape(format!(
                "data length {} does not match {w}x{h}x{c}",
                data.len()
            )));
        }
        Ok(DataCube { w, h, c, data })
    }

    /// Width.
    #[must_use]
    pub fn w(&self) -> usize {
        self.w
    }

    /// Height.
    #[must_use]
    pub fn h(&self) -> usize {
        self.h
    }

    /// Channels.
    #[must_use]
    pub fn c(&self) -> usize {
        self.c
    }

    /// Total element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the cube has no elements (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Order-stable FNV-1a digest over dimensions and contents.
    ///
    /// Two cubes share a digest iff they are equal (modulo the usual
    /// 64-bit collision caveat) — the runtime uses this to compare
    /// outputs across backends and key caches without cloning cubes.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        fnv1a(
            [self.w as u64, self.h as u64, self.c as u64]
                .into_iter()
                .chain(self.data.iter().map(|&v| v as u32 as u64)),
        )
    }

    #[inline]
    fn index(&self, x: usize, y: usize, c: usize) -> usize {
        debug_assert!(x < self.w && y < self.h && c < self.c);
        (y * self.w + x) * self.c + c
    }

    /// Element at `(x, y, c)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[must_use]
    pub fn get(&self, x: usize, y: usize, c: usize) -> i32 {
        self.data[self.index(x, y, c)]
    }

    /// Element at `(x, y, c)` with zero padding outside the cube —
    /// convolution's boundary behaviour.
    #[must_use]
    pub fn get_padded(&self, x: isize, y: isize, c: usize) -> i32 {
        if x < 0 || y < 0 || x >= self.w as isize || y >= self.h as isize {
            0
        } else {
            self.get(x as usize, y as usize, c)
        }
    }

    /// Sets the element at `(x, y, c)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    pub fn set(&mut self, x: usize, y: usize, c: usize, v: i32) {
        let idx = self.index(x, y, c);
        self.data[idx] = v;
    }

    /// A 1×1×n channel sliver at `(x, y)` starting at channel
    /// `c0`, zero-padded beyond both the spatial and channel extents —
    /// exactly what the CSC broadcasts per atomic op (§III).
    #[must_use]
    pub fn channel_sliver(&self, x: isize, y: isize, c0: usize, n: usize) -> Vec<i32> {
        let mut out = vec![0; n];
        self.channel_sliver_into(x, y, c0, &mut out);
        out
    }

    /// Fills `out` with the 1×1×`out.len()` channel sliver at
    /// `(x, y)` starting at channel `c0` — the allocation-free variant
    /// of [`channel_sliver`](DataCube::channel_sliver) the sequencing
    /// hot path reuses one scratch buffer for.
    pub fn channel_sliver_into(&self, x: isize, y: isize, c0: usize, out: &mut [i32]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = if c0 + i < self.c {
                self.get_padded(x, y, c0 + i)
            } else {
                0
            };
        }
    }

    /// A copy of the channel range `[c_lo, c_hi)` as its own cube —
    /// the channel-group shard of a feature map the multi-array
    /// planner hands to one PE array.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty or out of bounds.
    #[must_use]
    pub fn slice_channels(&self, c_lo: usize, c_hi: usize) -> DataCube {
        assert!(c_lo < c_hi && c_hi <= self.c, "invalid channel range");
        DataCube::from_fn(self.w, self.h, c_hi - c_lo, |x, y, ch| {
            self.get(x, y, c_lo + ch)
        })
    }

    /// Raw storage, channel-minor.
    #[must_use]
    pub fn as_slice(&self) -> &[i32] {
        &self.data
    }

    /// Iterates over `(x, y, c, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize, i32)> + '_ {
        let (w, c) = (self.w, self.c);
        self.data.iter().enumerate().map(move |(i, &v)| {
            let ch = i % c;
            let x = (i / c) % w;
            let y = i / (c * w);
            (x, y, ch, v)
        })
    }

    /// Validates every element against `precision`.
    ///
    /// # Errors
    ///
    /// Returns the first out-of-range element as an
    /// [`ArithError::OutOfRange`].
    pub fn check_precision(&self, precision: IntPrecision) -> Result<(), ArithError> {
        for &v in &self.data {
            precision.check(v)?;
        }
        Ok(())
    }

    /// Storage footprint in bytes at `precision` (ceil to whole bytes
    /// per element, as NVDLA packs INT4 two-per-byte only in some
    /// modes; we model byte-aligned storage).
    #[must_use]
    pub fn bytes(&self, precision: IntPrecision) -> usize {
        let bits = self.len() * precision.bits() as usize;
        bits.div_ceil(8)
    }
}

impl fmt::Display for DataCube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DataCube {}x{}x{}", self.w, self.h, self.c)
    }
}

/// A set of K convolution kernels, each R×S×C (NVDLA terms: R = kernel
/// height, S = kernel width).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSet {
    k: usize,
    r: usize,
    s: usize,
    c: usize,
    /// Kernel-major, then (r, s) spatial, then channel-minor.
    data: Vec<i32>,
}

impl KernelSet {
    /// Creates a zero-filled kernel set.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn zeros(k: usize, r: usize, s: usize, c: usize) -> Self {
        assert!(
            k > 0 && r > 0 && s > 0 && c > 0,
            "kernel dimensions must be nonzero"
        );
        KernelSet {
            k,
            r,
            s,
            c,
            data: vec![0; k * r * s * c],
        }
    }

    /// Builds a kernel set element-wise from `f(k, r, s, c)`.
    #[must_use]
    pub fn from_fn(
        k: usize,
        r: usize,
        s: usize,
        c: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> i32,
    ) -> Self {
        let mut set = KernelSet::zeros(k, r, s, c);
        for ki in 0..k {
            for ri in 0..r {
                for si in 0..s {
                    for ci in 0..c {
                        let v = f(ki, ri, si, ci);
                        set.set(ki, ri, si, ci, v);
                    }
                }
            }
        }
        set
    }

    /// Number of kernels (output channels).
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Kernel height.
    #[must_use]
    pub fn r(&self) -> usize {
        self.r
    }

    /// Kernel width.
    #[must_use]
    pub fn s(&self) -> usize {
        self.s
    }

    /// Kernel channels.
    #[must_use]
    pub fn c(&self) -> usize {
        self.c
    }

    #[inline]
    fn index(&self, k: usize, r: usize, s: usize, c: usize) -> usize {
        debug_assert!(k < self.k && r < self.r && s < self.s && c < self.c);
        ((k * self.r + r) * self.s + s) * self.c + c
    }

    /// Weight at `(k, r, s, c)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[must_use]
    pub fn get(&self, k: usize, r: usize, s: usize, c: usize) -> i32 {
        self.data[self.index(k, r, s, c)]
    }

    /// Sets the weight at `(k, r, s, c)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    pub fn set(&mut self, k: usize, r: usize, s: usize, c: usize, v: i32) {
        let idx = self.index(k, r, s, c);
        self.data[idx] = v;
    }

    /// A 1×1×n weight sliver for kernel `k` at `(r, s)` starting at
    /// channel `c0`, zero-padded beyond the channel extent — the weight
    /// cube each PE cell caches (§III).
    #[must_use]
    pub fn weight_sliver(&self, k: usize, r: usize, s: usize, c0: usize, n: usize) -> Vec<i32> {
        let mut out = vec![0; n];
        self.weight_sliver_into(k, r, s, c0, &mut out);
        out
    }

    /// Fills `out` with the 1×1×`out.len()` weight sliver for kernel
    /// `k` at `(r, s)` starting at channel `c0` — the allocation-free
    /// variant of [`weight_sliver`](KernelSet::weight_sliver).
    pub fn weight_sliver_into(&self, k: usize, r: usize, s: usize, c0: usize, out: &mut [i32]) {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = if c0 + i < self.c {
                self.get(k, r, s, c0 + i)
            } else {
                0
            };
        }
    }

    /// A copy of the kernel range `[k_lo, k_hi)` as its own set — the
    /// kernel-group shard the multi-array planner hands to one PE
    /// array.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty or out of bounds.
    #[must_use]
    pub fn slice_kernels(&self, k_lo: usize, k_hi: usize) -> KernelSet {
        assert!(k_lo < k_hi && k_hi <= self.k, "invalid kernel range");
        KernelSet::from_fn(k_hi - k_lo, self.r, self.s, self.c, |k, r, s, c| {
            self.get(k_lo + k, r, s, c)
        })
    }

    /// A copy of the channel range `[c_lo, c_hi)` of every kernel —
    /// the channel-group shard matching
    /// [`DataCube::slice_channels`].
    ///
    /// # Panics
    ///
    /// Panics when the range is empty or out of bounds.
    #[must_use]
    pub fn slice_channels(&self, c_lo: usize, c_hi: usize) -> KernelSet {
        assert!(c_lo < c_hi && c_hi <= self.c, "invalid channel range");
        KernelSet::from_fn(self.k, self.r, self.s, c_hi - c_lo, |k, r, s, c| {
            self.get(k, r, s, c_lo + c)
        })
    }

    /// Raw storage.
    #[must_use]
    pub fn as_slice(&self) -> &[i32] {
        &self.data
    }

    /// Validates every weight against `precision`.
    ///
    /// # Errors
    ///
    /// Returns the first out-of-range weight as an
    /// [`ArithError::OutOfRange`].
    pub fn check_precision(&self, precision: IntPrecision) -> Result<(), ArithError> {
        for &v in &self.data {
            precision.check(v)?;
        }
        Ok(())
    }

    /// Storage footprint in bytes at `precision`.
    #[must_use]
    pub fn bytes(&self, precision: IntPrecision) -> usize {
        (self.data.len() * precision.bits() as usize).div_ceil(8)
    }

    /// Total weight count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Order-stable FNV-1a digest over dimensions and weights — the
    /// runtime keys its per-worker latency memos on this.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        fnv1a(
            [self.k as u64, self.r as u64, self.s as u64, self.c as u64]
                .into_iter()
                .chain(self.data.iter().map(|&v| v as u32 as u64)),
        )
    }
}

/// FNV-1a over a word stream, byte by byte — the one digest
/// implementation the workspace shares, so cross-backend output
/// digests stay comparable.
pub fn fnv1a(words: impl Iterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

impl fmt::Display for KernelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KernelSet k={} {}x{}x{}", self.k, self.r, self.s, self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_round_trip() {
        let cube = DataCube::from_fn(3, 2, 4, |x, y, c| (x + 10 * y + 100 * c) as i32);
        assert_eq!(cube.get(2, 1, 3), 312);
        assert_eq!(cube.len(), 24);
        assert_eq!(cube.to_string(), "DataCube 3x2x4");
    }

    #[test]
    fn channel_minor_layout() {
        let cube = DataCube::from_fn(2, 2, 2, |x, y, c| (x + 10 * y + 100 * c) as i32);
        // (x=0,y=0,c=0), (x=0,y=0,c=1), (x=1,y=0,c=0), ...
        assert_eq!(&cube.as_slice()[..4], &[0, 100, 1, 101]);
    }

    #[test]
    fn padded_reads_are_zero_outside() {
        let cube = DataCube::from_fn(2, 2, 1, |_, _, _| 7);
        assert_eq!(cube.get_padded(-1, 0, 0), 0);
        assert_eq!(cube.get_padded(0, 2, 0), 0);
        assert_eq!(cube.get_padded(1, 1, 0), 7);
    }

    #[test]
    fn sliver_pads_channels() {
        let cube = DataCube::from_fn(2, 2, 3, |_, _, c| c as i32 + 1);
        assert_eq!(cube.channel_sliver(0, 0, 0, 5), vec![1, 2, 3, 0, 0]);
        assert_eq!(cube.channel_sliver(-1, 0, 0, 3), vec![0, 0, 0]);
        assert_eq!(cube.channel_sliver(1, 1, 2, 2), vec![3, 0]);
    }

    #[test]
    fn iter_visits_every_element_once() {
        let cube = DataCube::from_fn(3, 4, 5, |x, y, c| (x * 20 + y * 5 + c) as i32);
        let mut seen = [false; 60];
        for (x, y, c, v) in cube.iter() {
            assert_eq!(cube.get(x, y, c), v);
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn precision_check() {
        use tempus_arith::IntPrecision;
        let cube = DataCube::from_fn(2, 2, 1, |x, _, _| x as i32 * 100);
        assert!(cube.check_precision(IntPrecision::Int8).is_ok());
        assert!(cube.check_precision(IntPrecision::Int4).is_err());
    }

    #[test]
    fn bytes_account_for_precision() {
        use tempus_arith::IntPrecision;
        let cube = DataCube::zeros(4, 4, 4);
        assert_eq!(cube.bytes(IntPrecision::Int8), 64);
        assert_eq!(cube.bytes(IntPrecision::Int4), 32);
        assert_eq!(cube.bytes(IntPrecision::Int2), 16);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DataCube::from_vec(2, 2, 2, vec![0; 8]).is_ok());
        assert!(DataCube::from_vec(2, 2, 2, vec![0; 7]).is_err());
    }

    #[test]
    fn kernel_slivers() {
        let k = KernelSet::from_fn(2, 1, 1, 3, |k, _, _, c| (10 * k + c) as i32);
        assert_eq!(k.weight_sliver(1, 0, 0, 0, 4), vec![10, 11, 12, 0]);
        assert_eq!(k.get(0, 0, 0, 2), 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dims_rejected() {
        let _ = DataCube::zeros(0, 1, 1);
    }

    #[test]
    fn slices_copy_the_right_ranges() {
        let cube = DataCube::from_fn(3, 2, 6, |x, y, c| (x * 100 + y * 10 + c) as i32);
        let s = cube.slice_channels(2, 5);
        assert_eq!((s.w(), s.h(), s.c()), (3, 2, 3));
        assert_eq!(s.get(1, 1, 0), cube.get(1, 1, 2));
        assert_eq!(s.get(2, 0, 2), cube.get(2, 0, 4));

        let k = KernelSet::from_fn(5, 2, 2, 4, |k, r, s, c| {
            (k * 1000 + r * 100 + s * 10 + c) as i32
        });
        let kk = k.slice_kernels(1, 4);
        assert_eq!((kk.k(), kk.r(), kk.s(), kk.c()), (3, 2, 2, 4));
        assert_eq!(kk.get(0, 1, 0, 3), k.get(1, 1, 0, 3));
        let kc = k.slice_channels(1, 3);
        assert_eq!((kc.k(), kc.c()), (5, 2));
        assert_eq!(kc.get(4, 1, 1, 1), k.get(4, 1, 1, 2));
    }

    #[test]
    #[should_panic(expected = "invalid channel range")]
    fn empty_slice_rejected() {
        let cube = DataCube::zeros(2, 2, 4);
        let _ = cube.slice_channels(2, 2);
    }

    #[test]
    fn content_hash_distinguishes_values_and_shapes() {
        let a = DataCube::from_fn(3, 2, 4, |x, y, c| (x + y + c) as i32);
        let b = DataCube::from_fn(3, 2, 4, |x, y, c| (x + y + c) as i32);
        assert_eq!(a.content_hash(), b.content_hash());
        let mut c = b.clone();
        c.set(0, 0, 0, 99);
        assert_ne!(a.content_hash(), c.content_hash());
        // Same flat data, different shape, must not collide.
        let flat = DataCube::from_vec(6, 1, 4, a.as_slice().to_vec()).unwrap();
        assert_ne!(a.content_hash(), flat.content_hash());

        let k1 = KernelSet::from_fn(2, 1, 1, 3, |k, _, _, c| (k + c) as i32);
        let mut k2 = k1.clone();
        assert_eq!(k1.content_hash(), k2.content_hash());
        k2.set(1, 0, 0, 2, -5);
        assert_ne!(k1.content_hash(), k2.content_hash());
    }
}
