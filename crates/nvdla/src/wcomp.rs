//! Sparse weight compression for the convolution buffer.
//!
//! NVDLA ships a weight compression format (a per-weight zero bitmap
//! plus packed nonzero values) so sparse kernels occupy less CBUF
//! space and DMA bandwidth. The paper leans on weight sparsity twice —
//! Table I motivates unary computing with it, and §V-C's silent PEs
//! exploit it — so the substrate models the storage side too: this
//! module implements bitmap compression with exact round-trip
//! semantics and reports the achieved ratio.

use tempus_arith::IntPrecision;

use crate::cube::KernelSet;
use crate::NvdlaError;

/// A bitmap-compressed kernel set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedWeights {
    k: usize,
    r: usize,
    s: usize,
    c: usize,
    precision: IntPrecision,
    /// One bit per weight: 1 = nonzero (stored), 0 = zero (elided).
    bitmap: Vec<u8>,
    /// Packed nonzero values in kernel-major order.
    nonzero: Vec<i32>,
}

impl CompressedWeights {
    /// Compresses `kernels` at `precision`.
    ///
    /// # Errors
    ///
    /// Returns [`NvdlaError::Arith`] when a weight violates the
    /// precision.
    pub fn compress(kernels: &KernelSet, precision: IntPrecision) -> Result<Self, NvdlaError> {
        kernels.check_precision(precision)?;
        let weights = kernels.as_slice();
        let mut bitmap = vec![0u8; weights.len().div_ceil(8)];
        let mut nonzero = Vec::new();
        for (i, &w) in weights.iter().enumerate() {
            if w != 0 {
                bitmap[i / 8] |= 1 << (i % 8);
                nonzero.push(w);
            }
        }
        Ok(CompressedWeights {
            k: kernels.k(),
            r: kernels.r(),
            s: kernels.s(),
            c: kernels.c(),
            precision,
            bitmap,
            nonzero,
        })
    }

    /// Decompresses back to the exact original kernel set.
    #[must_use]
    pub fn decompress(&self) -> KernelSet {
        let mut out = KernelSet::zeros(self.k, self.r, self.s, self.c);
        let mut cursor = 0usize;
        let total = self.k * self.r * self.s * self.c;
        for i in 0..total {
            if self.bitmap[i / 8] & (1 << (i % 8)) != 0 {
                let w = self.nonzero[cursor];
                cursor += 1;
                let c = i % self.c;
                let s = (i / self.c) % self.s;
                let r = (i / (self.c * self.s)) % self.r;
                let k = i / (self.c * self.s * self.r);
                out.set(k, r, s, c, w);
            }
        }
        out
    }

    /// Stored nonzero count.
    #[must_use]
    pub fn nonzero_count(&self) -> usize {
        self.nonzero.len()
    }

    /// Compressed footprint in bytes: bitmap plus packed values at the
    /// precision's width.
    #[must_use]
    pub fn compressed_bytes(&self) -> usize {
        let value_bits = self.nonzero.len() * self.precision.bits() as usize;
        self.bitmap.len() + value_bits.div_ceil(8)
    }

    /// Uncompressed footprint in bytes.
    #[must_use]
    pub fn uncompressed_bytes(&self) -> usize {
        let total = self.k * self.r * self.s * self.c;
        (total * self.precision.bits() as usize).div_ceil(8)
    }

    /// Compression ratio (uncompressed / compressed); > 1 means the
    /// format pays off. At Table I sparsities (~2%) the bitmap
    /// overhead dominates for INT8, which is exactly why the paper's
    /// *compute-side* exploitation (silent PEs) matters more than the
    /// storage side at these sparsity levels.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.uncompressed_bytes() as f64 / self.compressed_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse_kernels(zero_every: usize) -> KernelSet {
        KernelSet::from_fn(4, 3, 3, 8, |k, r, s, c| {
            let i = ((k * 3 + r) * 3 + s) * 8 + c;
            if i % zero_every == 0 {
                0
            } else {
                (i % 200) as i32 - 100
            }
        })
    }

    #[test]
    fn round_trip_is_exact() {
        let kernels = sparse_kernels(3);
        let comp = CompressedWeights::compress(&kernels, IntPrecision::Int8).unwrap();
        assert_eq!(comp.decompress(), kernels);
    }

    #[test]
    fn all_zero_kernels_compress_to_bitmap_only() {
        let kernels = KernelSet::zeros(2, 3, 3, 4);
        let comp = CompressedWeights::compress(&kernels, IntPrecision::Int8).unwrap();
        assert_eq!(comp.nonzero_count(), 0);
        assert_eq!(comp.compressed_bytes(), (2 * 3 * 3 * 4usize).div_ceil(8));
        assert!(comp.ratio() > 7.0);
        assert_eq!(comp.decompress(), kernels);
    }

    #[test]
    fn dense_kernels_pay_the_bitmap_overhead() {
        let kernels = KernelSet::from_fn(2, 3, 3, 4, |_, _, _, _| 5);
        let comp = CompressedWeights::compress(&kernels, IntPrecision::Int8).unwrap();
        assert!(comp.ratio() < 1.0, "ratio {}", comp.ratio());
    }

    #[test]
    fn table_i_sparsity_barely_compresses_int8() {
        // ~2% sparsity: storage savings are negligible, motivating the
        // compute-side exploitation instead.
        let kernels = KernelSet::from_fn(8, 3, 3, 32, |k, r, s, c| {
            let i = ((k * 3 + r) * 3 + s) * 32 + c;
            if i % 50 == 0 {
                0
            } else {
                (i % 250) as i32 - 125
            }
        });
        let comp = CompressedWeights::compress(&kernels, IntPrecision::Int8).unwrap();
        assert!(comp.ratio() < 1.0, "ratio {}", comp.ratio());
        assert!(comp.ratio() > 0.85, "ratio {}", comp.ratio());
    }

    #[test]
    fn int4_halves_value_storage() {
        let kernels =
            KernelSet::from_fn(4, 3, 3, 8, |k, r, s, c| ((k + r + s + c) % 15) as i32 - 7);
        let c8 = CompressedWeights::compress(&kernels, IntPrecision::Int8).unwrap();
        let c4 = CompressedWeights::compress(&kernels, IntPrecision::Int4).unwrap();
        assert!(c4.compressed_bytes() < c8.compressed_bytes());
        assert_eq!(c4.decompress(), kernels);
    }

    #[test]
    fn precision_violation_rejected() {
        let kernels = KernelSet::from_fn(1, 1, 1, 2, |_, _, _, c| c as i32 * 100);
        assert!(CompressedWeights::compress(&kernels, IntPrecision::Int4).is_err());
    }
}
