//! Multi-layer network execution on a convolution core.
//!
//! The paper's integration argument (§I contribution 2) is that Tempus
//! Core preserves NVDLA's software view: a network that ran on the
//! binary CC runs unchanged on Tempus Core. This module provides that
//! software view — a layer list (convolution + SDP requantization +
//! optional PDP pooling) executed against any [`ConvCore`], with
//! per-layer statistics.

use tempus_arith::IntPrecision;

use crate::conv::ConvParams;
use crate::cube::{DataCube, KernelSet};
use crate::pdp::{self, PoolParams};
use crate::pipeline::ConvCore;
use crate::sdp::{self, SdpConfig};
use crate::NvdlaError;

/// One network layer: convolution, requantization, optional pooling.
#[derive(Debug, Clone)]
pub struct NetworkLayer {
    /// Layer name for reporting.
    pub name: String,
    /// Convolution kernels.
    pub kernels: KernelSet,
    /// Convolution parameters.
    pub conv: ConvParams,
    /// Post-processing (bias/scale/ReLU/saturation).
    pub sdp: SdpConfig,
    /// Optional pooling after requantization.
    pub pool: Option<PoolParams>,
}

impl NetworkLayer {
    /// A convolution + ReLU + INT8 requantization layer with a given
    /// right-shift (the common CNN block).
    #[must_use]
    pub fn conv_relu(
        name: impl Into<String>,
        kernels: KernelSet,
        conv: ConvParams,
        shift: u32,
        precision: IntPrecision,
    ) -> Self {
        let channels = kernels.k();
        NetworkLayer {
            name: name.into(),
            kernels,
            conv,
            sdp: SdpConfig {
                shift,
                ..SdpConfig::relu(channels, precision)
            },
            pool: None,
        }
    }

    /// Adds pooling (builder style).
    #[must_use]
    pub fn with_pool(mut self, pool: PoolParams) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Order-stable FNV-1a digest over everything that determines the
    /// layer's output: kernels, convolution parameters, SDP
    /// requantization and optional pooling. The layer *name* is
    /// deliberately excluded — two identically configured layers must
    /// share a digest regardless of labelling, so the serving layer's
    /// content-addressed cache can memoize across requests.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        crate::cube::fnv1a(
            [
                self.kernels.content_hash(),
                self.conv.content_hash(),
                self.sdp.content_hash(),
                self.pool.map_or(0, |p| p.content_hash().max(1)),
            ]
            .into_iter(),
        )
    }
}

/// Per-layer execution record.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTrace {
    /// Layer name.
    pub name: String,
    /// Convolution-core cycles.
    pub cycles: u64,
    /// Datapath utilization during the layer.
    pub utilization: f64,
    /// Elements rectified by ReLU.
    pub rectified: u64,
    /// Elements clipped by output saturation.
    pub saturated: u64,
    /// Output shape after this layer `(w, h, c)`.
    pub output_shape: (usize, usize, usize),
}

/// Result of a network run.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkRun {
    /// Final output cube.
    pub output: DataCube,
    /// Per-layer traces in execution order.
    pub layers: Vec<LayerTrace>,
}

impl NetworkRun {
    /// Total convolution cycles across layers.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Wall-clock time at the paper's 250 MHz clock, in microseconds.
    #[must_use]
    pub fn total_time_us(&self) -> f64 {
        self.total_cycles() as f64 * 4.0e-3
    }
}

/// Executes `layers` in sequence on `core`, threading each layer's
/// requantized output into the next layer's input.
///
/// # Errors
///
/// Propagates shape/precision/capacity errors from the substrate; the
/// partially executed prefix is discarded.
pub fn run_network(
    core: &mut dyn ConvCore,
    input: &DataCube,
    layers: &[NetworkLayer],
) -> Result<NetworkRun, NvdlaError> {
    let mut x = input.clone();
    let mut traces = Vec::with_capacity(layers.len());
    for layer in layers {
        let run = core.convolve(&x, &layer.kernels, &layer.conv)?;
        let (requant, sdp_stats) = sdp::apply(&run.output, &layer.sdp)?;
        let out = match &layer.pool {
            Some(pool) => pdp::apply(&requant, pool)?,
            None => requant,
        };
        traces.push(LayerTrace {
            name: layer.name.clone(),
            cycles: run.stats.cycles,
            utilization: run.stats.utilization,
            rectified: sdp_stats.rectified,
            saturated: sdp_stats.saturated,
            output_shape: (out.w(), out.h(), out.c()),
        });
        x = out;
    }
    Ok(NetworkRun {
        output: x,
        layers: traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NvdlaConfig;
    use crate::pipeline::NvdlaConvCore;

    fn tiny_network() -> Vec<NetworkLayer> {
        let k1 = KernelSet::from_fn(8, 3, 3, 4, |k, r, s, c| ((k + r + s + c) % 9) as i32 - 4);
        let k2 = KernelSet::from_fn(4, 1, 1, 8, |k, _, _, c| ((k * 3 + c) % 9) as i32 - 4);
        vec![
            NetworkLayer::conv_relu(
                "conv1",
                k1,
                ConvParams::unit_stride_same(3),
                4,
                IntPrecision::Int8,
            )
            .with_pool(PoolParams::max(2)),
            NetworkLayer::conv_relu("conv2", k2, ConvParams::valid(), 4, IntPrecision::Int8),
        ]
    }

    #[test]
    fn network_runs_and_traces() {
        let input = DataCube::from_fn(8, 8, 4, |x, y, c| ((x * 5 + y * 3 + c) % 100) as i32 - 50);
        let mut core = NvdlaConvCore::new(NvdlaConfig::nv_small());
        let run = run_network(&mut core, &input, &tiny_network()).unwrap();
        assert_eq!(run.layers.len(), 2);
        assert_eq!(run.layers[0].output_shape, (4, 4, 8));
        assert_eq!(run.layers[1].output_shape, (4, 4, 4));
        assert_eq!(run.output.c(), 4);
        assert!(run.total_cycles() > 0);
        assert!(run.total_time_us() > 0.0);
    }

    #[test]
    fn shape_errors_propagate() {
        // Second layer expects 8 channels; feed a 3-channel input so
        // the first conv itself mismatches.
        let input = DataCube::zeros(8, 8, 3);
        let mut core = NvdlaConvCore::new(NvdlaConfig::nv_small());
        assert!(matches!(
            run_network(&mut core, &input, &tiny_network()),
            Err(NvdlaError::ChannelMismatch { .. })
        ));
    }

    #[test]
    fn relu_counts_appear_in_trace() {
        let input = DataCube::from_fn(6, 6, 4, |x, _, _| x as i32 - 3);
        let mut core = NvdlaConvCore::new(NvdlaConfig::nv_small());
        let run = run_network(&mut core, &input, &tiny_network()).unwrap();
        assert!(run.layers.iter().any(|l| l.rectified > 0));
    }
}
