//! Convolution buffer (CB) model.
//!
//! The CB "stores input activations and filter weights" (§II-C). The
//! model tracks bank allocation between the weight and feature regions,
//! enforces capacity, and counts accesses so utilization statistics can
//! be reported alongside the datapath results.

use tempus_arith::IntPrecision;

use crate::config::NvdlaConfig;
use crate::cube::{DataCube, KernelSet};
use crate::NvdlaError;

/// The banked convolution buffer, loaded with one layer's working set.
#[derive(Debug, Clone)]
pub struct ConvBuffer {
    config: NvdlaConfig,
    weight_bytes: usize,
    feature_bytes: usize,
    reads: u64,
}

impl ConvBuffer {
    /// Creates an empty buffer for `config`.
    #[must_use]
    pub fn new(config: NvdlaConfig) -> Self {
        ConvBuffer {
            config,
            weight_bytes: 0,
            feature_bytes: 0,
            reads: 0,
        }
    }

    /// Loads a layer's features and weights, checking capacity at the
    /// configured precision.
    ///
    /// # Errors
    ///
    /// Returns [`NvdlaError::BufferOverflow`] when the combined working
    /// set exceeds the buffer.
    pub fn load(
        &mut self,
        features: &DataCube,
        kernels: &KernelSet,
        precision: IntPrecision,
    ) -> Result<(), NvdlaError> {
        let wb = kernels.bytes(precision);
        let fb = features.bytes(precision);
        let capacity = self.config.cbuf_bytes();
        if wb + fb > capacity {
            return Err(NvdlaError::BufferOverflow {
                requested: wb + fb,
                capacity,
            });
        }
        self.weight_bytes = wb;
        self.feature_bytes = fb;
        Ok(())
    }

    /// Records one read transaction (a 1×1×n sliver fetch).
    pub fn record_read(&mut self) {
        self.reads += 1;
    }

    /// Bytes currently allocated to weights.
    #[must_use]
    pub fn weight_bytes(&self) -> usize {
        self.weight_bytes
    }

    /// Bytes currently allocated to features.
    #[must_use]
    pub fn feature_bytes(&self) -> usize {
        self.feature_bytes
    }

    /// Total reads recorded.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Occupancy as a fraction of capacity.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        (self.weight_bytes + self.feature_bytes) as f64 / self.config.cbuf_bytes() as f64
    }

    /// Banks needed for the current weight region (rounded up).
    #[must_use]
    pub fn weight_banks(&self) -> usize {
        self.weight_bytes.div_ceil(self.config.cbuf_bank_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_within_capacity() {
        let mut cb = ConvBuffer::new(NvdlaConfig::nv_small());
        let f = DataCube::zeros(32, 32, 16);
        let k = KernelSet::zeros(8, 3, 3, 16);
        cb.load(&f, &k, IntPrecision::Int8).unwrap();
        assert_eq!(cb.feature_bytes(), 32 * 32 * 16);
        assert_eq!(cb.weight_bytes(), 8 * 9 * 16);
        assert!(cb.occupancy() > 0.0 && cb.occupancy() < 1.0);
        assert_eq!(cb.weight_banks(), 1);
    }

    #[test]
    fn overflow_detected() {
        let mut cb = ConvBuffer::new(NvdlaConfig::nv_small());
        let f = DataCube::zeros(256, 256, 8); // 512 KiB > 128 KiB
        let k = KernelSet::zeros(1, 1, 1, 8);
        assert!(matches!(
            cb.load(&f, &k, IntPrecision::Int8),
            Err(NvdlaError::BufferOverflow { .. })
        ));
    }

    #[test]
    fn int4_halves_footprint() {
        let mut cb = ConvBuffer::new(NvdlaConfig::nv_small());
        let f = DataCube::zeros(64, 64, 16);
        let k = KernelSet::zeros(8, 3, 3, 16);
        cb.load(&f, &k, IntPrecision::Int4).unwrap();
        assert_eq!(cb.feature_bytes(), 64 * 64 * 16 / 2);
    }

    #[test]
    fn reads_accumulate() {
        let mut cb = ConvBuffer::new(NvdlaConfig::nv_small());
        cb.record_read();
        cb.record_read();
        assert_eq!(cb.reads(), 2);
    }
}
