//! Convolution parameters and golden references.
//!
//! Two independent references guard the cycle-accurate cores: plain
//! direct convolution and im2col + GEMM lowering. Their agreement with
//! each other and with both hardware models is enforced by tests.

use tempus_arith::IntPrecision;

use crate::cube::{DataCube, KernelSet};
use crate::NvdlaError;

/// Convolution hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvParams {
    /// Horizontal stride (≥1).
    pub stride_x: usize,
    /// Vertical stride (≥1).
    pub stride_y: usize,
    /// Zero padding on the left/right edges.
    pub pad_x: usize,
    /// Zero padding on the top/bottom edges.
    pub pad_y: usize,
    /// Horizontal dilation (≥1; 1 = dense kernel).
    pub dilation_x: usize,
    /// Vertical dilation (≥1).
    pub dilation_y: usize,
}

impl ConvParams {
    /// Unit-stride, no padding, no dilation.
    #[must_use]
    pub fn valid() -> Self {
        ConvParams {
            stride_x: 1,
            stride_y: 1,
            pad_x: 0,
            pad_y: 0,
            dilation_x: 1,
            dilation_y: 1,
        }
    }

    /// Unit-stride "same" convolution for an odd `kernel` size: output
    /// dims equal input dims.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is even.
    #[must_use]
    pub fn unit_stride_same(kernel: usize) -> Self {
        assert!(kernel % 2 == 1, "same-padding needs an odd kernel");
        ConvParams {
            pad_x: kernel / 2,
            pad_y: kernel / 2,
            ..ConvParams::valid()
        }
    }

    /// Strided convolution with explicit padding.
    #[must_use]
    pub fn strided(stride: usize, pad: usize) -> Self {
        ConvParams {
            stride_x: stride,
            stride_y: stride,
            pad_x: pad,
            pad_y: pad,
            dilation_x: 1,
            dilation_y: 1,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NvdlaError::InvalidShape`] for zero strides/dilations.
    pub fn validate(&self) -> Result<(), NvdlaError> {
        if self.stride_x == 0 || self.stride_y == 0 {
            return Err(NvdlaError::InvalidShape("stride must be >= 1".into()));
        }
        if self.dilation_x == 0 || self.dilation_y == 0 {
            return Err(NvdlaError::InvalidShape("dilation must be >= 1".into()));
        }
        Ok(())
    }

    /// Order-stable FNV-1a digest over every hyper-parameter — the
    /// serving layer folds this into content-addressed cache keys, so
    /// two jobs share a key only when their convolutions are
    /// configured identically.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        crate::cube::fnv1a(
            [
                self.stride_x,
                self.stride_y,
                self.pad_x,
                self.pad_y,
                self.dilation_x,
                self.dilation_y,
            ]
            .into_iter()
            .map(|v| v as u64),
        )
    }

    /// Output dimensions `(out_w, out_h)` for an input of `w`×`h`
    /// convolved with an `r`×`s` kernel.
    ///
    /// # Errors
    ///
    /// Returns [`NvdlaError::EmptyOutput`] when the kernel (with
    /// dilation) exceeds the padded input.
    pub fn output_dims(
        &self,
        w: usize,
        h: usize,
        r: usize,
        s: usize,
    ) -> Result<(usize, usize), NvdlaError> {
        self.validate()?;
        let eff_s = (s - 1) * self.dilation_x + 1;
        let eff_r = (r - 1) * self.dilation_y + 1;
        let padded_w = w + 2 * self.pad_x;
        let padded_h = h + 2 * self.pad_y;
        if eff_s > padded_w || eff_r > padded_h {
            return Err(NvdlaError::EmptyOutput);
        }
        Ok((
            (padded_w - eff_s) / self.stride_x + 1,
            (padded_h - eff_r) / self.stride_y + 1,
        ))
    }
}

impl Default for ConvParams {
    fn default() -> Self {
        ConvParams::valid()
    }
}

fn check_channels(features: &DataCube, kernels: &KernelSet) -> Result<(), NvdlaError> {
    if features.c() != kernels.c() {
        return Err(NvdlaError::ChannelMismatch {
            feature_c: features.c(),
            kernel_c: kernels.c(),
        });
    }
    Ok(())
}

/// Golden direct convolution: output cube of `i32` partial sums
/// (out_w × out_h × K). Accumulation is exact in `i64` internally and
/// must fit `i32` for the supported precisions and sizes.
///
/// # Errors
///
/// Returns [`NvdlaError::ChannelMismatch`] or [`NvdlaError::EmptyOutput`]
/// for inconsistent shapes.
///
/// # Panics
///
/// Panics if an accumulated output exceeds `i32` — unreachable for the
/// paper's precisions (INT8 and below) at any practical layer size, and
/// for INT16 up to ~8k-term dot products.
pub fn direct_conv(
    features: &DataCube,
    kernels: &KernelSet,
    params: &ConvParams,
) -> Result<DataCube, NvdlaError> {
    check_channels(features, kernels)?;
    let (out_w, out_h) =
        params.output_dims(features.w(), features.h(), kernels.r(), kernels.s())?;
    let mut out = DataCube::zeros(out_w, out_h, kernels.k());
    for oy in 0..out_h {
        for ox in 0..out_w {
            for k in 0..kernels.k() {
                let mut acc = 0i64;
                for r in 0..kernels.r() {
                    for s in 0..kernels.s() {
                        let iy = (oy * params.stride_y + r * params.dilation_y) as isize
                            - params.pad_y as isize;
                        let ix = (ox * params.stride_x + s * params.dilation_x) as isize
                            - params.pad_x as isize;
                        for c in 0..features.c() {
                            acc += i64::from(features.get_padded(ix, iy, c))
                                * i64::from(kernels.get(k, r, s, c));
                        }
                    }
                }
                out.set(
                    ox,
                    oy,
                    k,
                    i32::try_from(acc).expect("accumulator exceeds i32 output"),
                );
            }
        }
    }
    Ok(out)
}

/// Computes one output row `oy` of [`direct_conv`] into `row`, laid
/// out exactly like one y-row of the output cube (`row[x * k + kk]`,
/// channel-minor). The fused streaming pipeline
/// ([`crate::fused`]) calls this per row so a whole-layer run never
/// materializes the conv cube. Accumulation order and overflow
/// behaviour are identical to [`direct_conv`], so the values are
/// bit-identical.
///
/// The caller validates shapes once up front ([`ConvParams::output_dims`]
/// and channel agreement); this hot path only asserts the buffer size.
///
/// # Panics
///
/// Panics when `row` is not `out_w × k` elements long, or if an
/// accumulated output exceeds `i32` (same condition as
/// [`direct_conv`]).
pub fn direct_conv_row(
    features: &DataCube,
    kernels: &KernelSet,
    params: &ConvParams,
    oy: usize,
    out_w: usize,
    row: &mut [i32],
) {
    let k_dim = kernels.k();
    assert_eq!(row.len(), out_w * k_dim, "conv row buffer size mismatch");
    for ox in 0..out_w {
        for k in 0..k_dim {
            let mut acc = 0i64;
            for r in 0..kernels.r() {
                for s in 0..kernels.s() {
                    let iy = (oy * params.stride_y + r * params.dilation_y) as isize
                        - params.pad_y as isize;
                    let ix = (ox * params.stride_x + s * params.dilation_x) as isize
                        - params.pad_x as isize;
                    for c in 0..features.c() {
                        acc += i64::from(features.get_padded(ix, iy, c))
                            * i64::from(kernels.get(k, r, s, c));
                    }
                }
            }
            row[ox * k_dim + k] = i32::try_from(acc).expect("accumulator exceeds i32 output");
        }
    }
}

/// im2col + GEMM reference: lowers the convolution to a matrix product
/// `O[k][p] = Σ_q W[k][q] · F[q][p]` and reshapes back. Used as an
/// independent second witness against [`direct_conv`].
///
/// # Errors
///
/// Same conditions as [`direct_conv`].
///
/// # Panics
///
/// Same overflow condition as [`direct_conv`].
pub fn im2col_conv(
    features: &DataCube,
    kernels: &KernelSet,
    params: &ConvParams,
) -> Result<DataCube, NvdlaError> {
    check_channels(features, kernels)?;
    let (out_w, out_h) =
        params.output_dims(features.w(), features.h(), kernels.r(), kernels.s())?;
    let patch = kernels.r() * kernels.s() * kernels.c();
    let positions = out_w * out_h;
    // Lower the input: columns are output positions, rows patch elems.
    let mut cols = vec![0i32; patch * positions];
    for oy in 0..out_h {
        for ox in 0..out_w {
            let p = oy * out_w + ox;
            let mut q = 0;
            for r in 0..kernels.r() {
                for s in 0..kernels.s() {
                    let iy = (oy * params.stride_y + r * params.dilation_y) as isize
                        - params.pad_y as isize;
                    let ix = (ox * params.stride_x + s * params.dilation_x) as isize
                        - params.pad_x as isize;
                    for c in 0..features.c() {
                        cols[q * positions + p] = features.get_padded(ix, iy, c);
                        q += 1;
                    }
                }
            }
        }
    }
    // GEMM: K × patch times patch × positions.
    let mut out = DataCube::zeros(out_w, out_h, kernels.k());
    for k in 0..kernels.k() {
        for p in 0..positions {
            let mut acc = 0i64;
            let mut q = 0;
            for r in 0..kernels.r() {
                for s in 0..kernels.s() {
                    for c in 0..kernels.c() {
                        acc +=
                            i64::from(kernels.get(k, r, s, c)) * i64::from(cols[q * positions + p]);
                        q += 1;
                    }
                }
            }
            out.set(
                p % out_w,
                p / out_w,
                k,
                i32::try_from(acc).expect("accumulator exceeds i32 output"),
            );
        }
    }
    Ok(out)
}

/// Validates operand cubes against a precision in one call.
///
/// # Errors
///
/// Returns the first out-of-range element.
pub fn check_operands(
    features: &DataCube,
    kernels: &KernelSet,
    precision: IntPrecision,
) -> Result<(), NvdlaError> {
    features.check_precision(precision)?;
    kernels.check_precision(precision)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_case() -> (DataCube, KernelSet) {
        let f = DataCube::from_fn(5, 5, 3, |x, y, c| {
            ((x * 7 + y * 3 + c * 11) % 13) as i32 - 6
        });
        let k = KernelSet::from_fn(4, 3, 3, 3, |k, r, s, c| {
            ((k * 5 + r * 2 + s * 9 + c * 4) % 15) as i32 - 7
        });
        (f, k)
    }

    #[test]
    fn output_dims_basic() {
        let p = ConvParams::valid();
        assert_eq!(p.output_dims(5, 5, 3, 3).unwrap(), (3, 3));
        let p = ConvParams::unit_stride_same(3);
        assert_eq!(p.output_dims(5, 5, 3, 3).unwrap(), (5, 5));
        let p = ConvParams::strided(2, 1);
        assert_eq!(p.output_dims(6, 6, 3, 3).unwrap(), (3, 3));
    }

    #[test]
    fn output_dims_rejects_oversized_kernels() {
        let p = ConvParams::valid();
        assert_eq!(p.output_dims(2, 2, 3, 3), Err(NvdlaError::EmptyOutput));
    }

    #[test]
    fn dilation_grows_effective_kernel() {
        let p = ConvParams {
            dilation_x: 2,
            dilation_y: 2,
            ..ConvParams::valid()
        };
        // Effective 5x5 kernel on 7x7 input -> 3x3 output.
        assert_eq!(p.output_dims(7, 7, 3, 3).unwrap(), (3, 3));
    }

    #[test]
    fn direct_equals_im2col() {
        let (f, k) = small_case();
        for params in [
            ConvParams::valid(),
            ConvParams::unit_stride_same(3),
            ConvParams::strided(2, 1),
            ConvParams {
                dilation_x: 2,
                dilation_y: 2,
                pad_x: 2,
                pad_y: 2,
                ..ConvParams::valid()
            },
        ] {
            let a = direct_conv(&f, &k, &params).unwrap();
            let b = im2col_conv(&f, &k, &params).unwrap();
            assert_eq!(a, b, "params {params:?}");
        }
    }

    #[test]
    fn conv_rows_reassemble_direct_conv() {
        let (f, k) = small_case();
        for params in [
            ConvParams::valid(),
            ConvParams::unit_stride_same(3),
            ConvParams::strided(2, 1),
        ] {
            let whole = direct_conv(&f, &k, &params).unwrap();
            let (out_w, out_h) = params.output_dims(f.w(), f.h(), k.r(), k.s()).unwrap();
            let mut row = vec![0i32; out_w * k.k()];
            for oy in 0..out_h {
                direct_conv_row(&f, &k, &params, oy, out_w, &mut row);
                for ox in 0..out_w {
                    for kk in 0..k.k() {
                        assert_eq!(row[ox * k.k() + kk], whole.get(ox, oy, kk));
                    }
                }
            }
        }
    }

    #[test]
    fn identity_kernel_copies_input_channel() {
        let f = DataCube::from_fn(4, 4, 2, |x, y, c| (x + y * 4 + c * 16) as i32);
        // 1x1 kernel selecting channel 1.
        let mut k = KernelSet::zeros(1, 1, 1, 2);
        k.set(0, 0, 0, 1, 1);
        let out = direct_conv(&f, &k, &ConvParams::valid()).unwrap();
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(out.get(x, y, 0), f.get(x, y, 1));
            }
        }
    }

    #[test]
    fn channel_mismatch_detected() {
        let f = DataCube::zeros(4, 4, 3);
        let k = KernelSet::zeros(2, 3, 3, 4);
        assert!(matches!(
            direct_conv(&f, &k, &ConvParams::valid()),
            Err(NvdlaError::ChannelMismatch { .. })
        ));
    }

    #[test]
    fn zero_stride_rejected() {
        let p = ConvParams {
            stride_x: 0,
            ..ConvParams::valid()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn padding_contributes_zeros() {
        // All-ones 3x3 kernel over all-ones 3x3 input with same padding:
        // corner output sees only 4 valid taps.
        let f = DataCube::from_fn(3, 3, 1, |_, _, _| 1);
        let k = KernelSet::from_fn(1, 3, 3, 1, |_, _, _, _| 1);
        let out = direct_conv(&f, &k, &ConvParams::unit_stride_same(3)).unwrap();
        assert_eq!(out.get(0, 0, 0), 4);
        assert_eq!(out.get(1, 1, 0), 9);
        assert_eq!(out.get(2, 0, 0), 4);
        assert_eq!(out.get(1, 0, 0), 6);
    }
}
