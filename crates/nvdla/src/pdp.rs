//! PDP: the pooling engine (part of NVDLA's post-processing unit,
//! §II-C). Supports max and average pooling with stride and padding.

use crate::cube::DataCube;
use crate::NvdlaError;

/// Pooling operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Maximum over the window (padding cells are ignored).
    Max,
    /// Average over the window (divisor = full window size, matching
    /// count-include-pad semantics common in quantized deployments).
    Average,
}

/// Pooling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolParams {
    /// Operator.
    pub kind: PoolKind,
    /// Window width/height.
    pub window: usize,
    /// Stride.
    pub stride: usize,
    /// Symmetric zero padding.
    pub pad: usize,
}

impl PoolParams {
    /// Non-overlapping max pooling with a `window`×`window` kernel.
    #[must_use]
    pub fn max(window: usize) -> Self {
        PoolParams {
            kind: PoolKind::Max,
            window,
            stride: window,
            pad: 0,
        }
    }

    /// Global average pooling over an `edge`×`edge` map.
    #[must_use]
    pub fn global_average(edge: usize) -> Self {
        PoolParams {
            kind: PoolKind::Average,
            window: edge,
            stride: edge,
            pad: 0,
        }
    }

    /// Order-stable FNV-1a digest over the pooling configuration —
    /// cache-key material for the serving layer.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        crate::cube::fnv1a(
            [
                match self.kind {
                    PoolKind::Max => 1u64,
                    PoolKind::Average => 2,
                },
                self.window as u64,
                self.stride as u64,
                self.pad as u64,
            ]
            .into_iter(),
        )
    }
}

/// Applies pooling to each channel plane independently.
///
/// # Errors
///
/// Returns [`NvdlaError::InvalidShape`] for zero window/stride and
/// [`NvdlaError::EmptyOutput`] when the window exceeds the padded
/// input.
pub fn apply(cube: &DataCube, params: &PoolParams) -> Result<DataCube, NvdlaError> {
    if params.window == 0 || params.stride == 0 {
        return Err(NvdlaError::InvalidShape(
            "pool window and stride must be >= 1".into(),
        ));
    }
    let padded_w = cube.w() + 2 * params.pad;
    let padded_h = cube.h() + 2 * params.pad;
    if params.window > padded_w || params.window > padded_h {
        return Err(NvdlaError::EmptyOutput);
    }
    let out_w = (padded_w - params.window) / params.stride + 1;
    let out_h = (padded_h - params.window) / params.stride + 1;
    let mut out = DataCube::zeros(out_w, out_h, cube.c());
    for oy in 0..out_h {
        for ox in 0..out_w {
            for c in 0..cube.c() {
                let x0 = (ox * params.stride) as isize - params.pad as isize;
                let y0 = (oy * params.stride) as isize - params.pad as isize;
                let value = match params.kind {
                    PoolKind::Max => {
                        let mut best: Option<i32> = None;
                        for dy in 0..params.window {
                            for dx in 0..params.window {
                                let (x, y) = (x0 + dx as isize, y0 + dy as isize);
                                if x >= 0
                                    && y >= 0
                                    && (x as usize) < cube.w()
                                    && (y as usize) < cube.h()
                                {
                                    let v = cube.get(x as usize, y as usize, c);
                                    best = Some(best.map_or(v, |b: i32| b.max(v)));
                                }
                            }
                        }
                        best.unwrap_or(0)
                    }
                    PoolKind::Average => {
                        let mut sum = 0i64;
                        for dy in 0..params.window {
                            for dx in 0..params.window {
                                sum += i64::from(cube.get_padded(
                                    x0 + dx as isize,
                                    y0 + dy as isize,
                                    c,
                                ));
                            }
                        }
                        let div = (params.window * params.window) as i64;
                        // Round to nearest, ties away from zero.
                        let half = div / 2;
                        (if sum >= 0 {
                            (sum + half) / div
                        } else {
                            (sum - half) / div
                        }) as i32
                    }
                };
                out.set(ox, oy, c, value);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_2x2() {
        let cube = DataCube::from_fn(4, 4, 1, |x, y, _| (y * 4 + x) as i32);
        let out = apply(&cube, &PoolParams::max(2)).unwrap();
        assert_eq!(out.w(), 2);
        assert_eq!(out.h(), 2);
        assert_eq!(out.get(0, 0, 0), 5);
        assert_eq!(out.get(1, 1, 0), 15);
    }

    #[test]
    fn max_pool_ignores_padding() {
        let cube = DataCube::from_fn(2, 2, 1, |_, _, _| -7);
        let params = PoolParams {
            kind: PoolKind::Max,
            window: 2,
            stride: 2,
            pad: 1,
        };
        let out = apply(&cube, &params).unwrap();
        // Corner window sees only the single real element, not zeros.
        assert_eq!(out.get(0, 0, 0), -7);
    }

    #[test]
    fn average_pool_rounds_to_nearest() {
        let cube = DataCube::from_fn(2, 2, 1, |x, y, _| (x + y) as i32); // 0,1,1,2
        let out = apply(&cube, &PoolParams::global_average(2)).unwrap();
        assert_eq!(out.get(0, 0, 0), 1);
        let neg = DataCube::from_fn(2, 2, 1, |_, _, _| -1);
        let out = apply(&neg, &PoolParams::global_average(2)).unwrap();
        assert_eq!(out.get(0, 0, 0), -1);
    }

    #[test]
    fn channels_pool_independently() {
        let cube = DataCube::from_fn(2, 2, 2, |x, y, c| ((x + y) as i32) * (c as i32 + 1));
        let out = apply(&cube, &PoolParams::max(2)).unwrap();
        assert_eq!(out.get(0, 0, 0), 2);
        assert_eq!(out.get(0, 0, 1), 4);
    }

    #[test]
    fn oversized_window_rejected() {
        let cube = DataCube::zeros(2, 2, 1);
        assert_eq!(
            apply(&cube, &PoolParams::max(3)),
            Err(NvdlaError::EmptyOutput)
        );
    }
}
