//! Grouped and depthwise convolution support.
//!
//! The zoo's workloads lean heavily on grouped convolutions (ResNeXt's
//! cardinality-32 blocks, MobileNet's depthwise layers), and NVDLA's
//! software stack lowers them onto the dense convolution core one
//! channel group at a time. This module implements that lowering for
//! any [`ConvCore`]: split the feature channels and kernels per group,
//! run the dense sub-convolutions, and concatenate the outputs along
//! the kernel axis.

use crate::conv::ConvParams;
use crate::cube::{DataCube, KernelSet};
use crate::pipeline::{ConvCore, ConvRun, RunStats};
use crate::NvdlaError;

/// Validates group structure: `groups` must divide both the feature
/// channels and the kernel count, and the kernels' channel extent must
/// equal the per-group slice.
fn check_groups(features: &DataCube, kernels: &KernelSet, groups: usize) -> Result<(), NvdlaError> {
    if groups == 0 {
        return Err(NvdlaError::InvalidShape("groups must be >= 1".into()));
    }
    if !features.c().is_multiple_of(groups) {
        return Err(NvdlaError::InvalidShape(format!(
            "{} feature channels not divisible by {} groups",
            features.c(),
            groups
        )));
    }
    if !kernels.k().is_multiple_of(groups) {
        return Err(NvdlaError::InvalidShape(format!(
            "{} kernels not divisible by {} groups",
            kernels.k(),
            groups
        )));
    }
    let per_group_c = features.c() / groups;
    if kernels.c() != per_group_c {
        return Err(NvdlaError::ChannelMismatch {
            feature_c: per_group_c,
            kernel_c: kernels.c(),
        });
    }
    Ok(())
}

/// Extracts the feature channel slice for one group.
fn feature_group(features: &DataCube, group: usize, per_group: usize) -> DataCube {
    DataCube::from_fn(features.w(), features.h(), per_group, |x, y, c| {
        features.get(x, y, group * per_group + c)
    })
}

/// Extracts the kernel slice for one group.
fn kernel_group(kernels: &KernelSet, group: usize, per_group_k: usize) -> KernelSet {
    KernelSet::from_fn(
        per_group_k,
        kernels.r(),
        kernels.s(),
        kernels.c(),
        |k, r, s, c| kernels.get(group * per_group_k + k, r, s, c),
    )
}

/// Runs a grouped convolution on `core`: `kernels.c()` must equal
/// `features.c() / groups`, as in every framework's grouped-conv
/// weight layout. `groups == features.c()` with 1-channel kernels is
/// depthwise convolution.
///
/// Cycle counts accumulate across the per-group passes (the groups
/// run back-to-back on the same engine, as NVDLA schedules them).
///
/// # Errors
///
/// Returns shape errors for inconsistent group structure and
/// propagates substrate errors from the sub-convolutions.
pub fn convolve_grouped(
    core: &mut dyn ConvCore,
    features: &DataCube,
    kernels: &KernelSet,
    params: &ConvParams,
    groups: usize,
) -> Result<ConvRun, NvdlaError> {
    check_groups(features, kernels, groups)?;
    if groups == 1 {
        return core.convolve(features, kernels, params);
    }
    let per_group_c = features.c() / groups;
    let per_group_k = kernels.k() / groups;
    let mut output: Option<DataCube> = None;
    let mut stats = RunStats::default();
    let mut utilization_weighted = 0.0;
    for g in 0..groups {
        let fg = feature_group(features, g, per_group_c);
        let kg = kernel_group(kernels, g, per_group_k);
        let run = core.convolve(&fg, &kg, params)?;
        stats.cycles += run.stats.cycles;
        stats.atomic_ops += run.stats.atomic_ops;
        stats.stripes += run.stats.stripes;
        stats.macs += run.stats.macs;
        stats.gated_cell_cycles += run.stats.gated_cell_cycles;
        stats.cbuf_reads += run.stats.cbuf_reads;
        utilization_weighted += run.stats.utilization * run.stats.cycles as f64;
        output = Some(match output {
            None => {
                // First group: allocate the full output and copy in.
                let mut out = DataCube::zeros(run.output.w(), run.output.h(), kernels.k());
                copy_group(&mut out, &run.output, 0, per_group_k);
                out
            }
            Some(mut out) => {
                copy_group(&mut out, &run.output, g, per_group_k);
                out
            }
        });
    }
    stats.utilization = if stats.cycles == 0 {
        0.0
    } else {
        utilization_weighted / stats.cycles as f64
    };
    Ok(ConvRun {
        output: output.expect("groups >= 1 produced output"),
        stats,
    })
}

fn copy_group(out: &mut DataCube, group_out: &DataCube, group: usize, per_group_k: usize) {
    for (x, y, c, v) in group_out.iter() {
        out.set(x, y, group * per_group_k + c, v);
    }
}

/// Golden grouped convolution, built from the dense golden reference
/// per group — the independent witness for [`convolve_grouped`].
///
/// # Errors
///
/// Same conditions as [`convolve_grouped`].
pub fn direct_conv_grouped(
    features: &DataCube,
    kernels: &KernelSet,
    params: &ConvParams,
    groups: usize,
) -> Result<DataCube, NvdlaError> {
    check_groups(features, kernels, groups)?;
    let per_group_c = features.c() / groups;
    let per_group_k = kernels.k() / groups;
    let mut output: Option<DataCube> = None;
    for g in 0..groups {
        let fg = feature_group(features, g, per_group_c);
        let kg = kernel_group(kernels, g, per_group_k);
        let sub = crate::conv::direct_conv(&fg, &kg, params)?;
        let mut out = output.unwrap_or_else(|| DataCube::zeros(sub.w(), sub.h(), kernels.k()));
        copy_group(&mut out, &sub, g, per_group_k);
        output = Some(out);
    }
    Ok(output.expect("groups >= 1"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NvdlaConfig;
    use crate::pipeline::NvdlaConvCore;

    fn case(c: usize, k: usize, kc: usize) -> (DataCube, KernelSet) {
        let f = DataCube::from_fn(6, 6, c, |x, y, ch| {
            ((x * 7 + y * 3 + ch * 5) % 200) as i32 - 100
        });
        let kn = KernelSet::from_fn(k, 3, 3, kc, |ki, r, s, ch| {
            ((ki * 11 + r * 2 + s * 9 + ch * 4) % 200) as i32 - 100
        });
        (f, kn)
    }

    #[test]
    fn groups_of_one_match_dense_conv() {
        let (f, k) = case(8, 8, 8);
        let params = ConvParams::valid();
        let dense = crate::conv::direct_conv(&f, &k, &params).unwrap();
        let grouped = direct_conv_grouped(&f, &k, &params, 1).unwrap();
        assert_eq!(dense, grouped);
    }

    #[test]
    fn core_matches_golden_for_cardinality_4() {
        let (f, k) = case(16, 8, 4); // 4 groups of 4 channels, 2 kernels each
        let params = ConvParams::unit_stride_same(3);
        let golden = direct_conv_grouped(&f, &k, &params, 4).unwrap();
        let mut core = NvdlaConvCore::new(NvdlaConfig::nv_small());
        let run = convolve_grouped(&mut core, &f, &k, &params, 4).unwrap();
        assert_eq!(run.output, golden);
        assert!(run.stats.cycles > 0);
    }

    #[test]
    fn depthwise_convolution() {
        // groups == channels, 1-channel kernels: MobileNet's dw layer.
        let (f, k) = case(8, 8, 1);
        let params = ConvParams::unit_stride_same(3);
        let golden = direct_conv_grouped(&f, &k, &params, 8).unwrap();
        let mut core = NvdlaConvCore::new(NvdlaConfig::nv_small());
        let run = convolve_grouped(&mut core, &f, &k, &params, 8).unwrap();
        assert_eq!(run.output, golden);
        // Depthwise output channel g depends only on input channel g.
        let mut probe = f.clone();
        probe.set(0, 0, 3, 99); // perturb channel 3 only
        let perturbed = direct_conv_grouped(&probe, &k, &params, 8).unwrap();
        for ch in 0..8 {
            let changed = (0..golden.w())
                .any(|x| (0..golden.h()).any(|y| perturbed.get(x, y, ch) != golden.get(x, y, ch)));
            assert_eq!(changed, ch == 3, "channel {ch}");
        }
    }

    #[test]
    fn bad_group_structure_rejected() {
        let (f, k) = case(8, 8, 8);
        let params = ConvParams::valid();
        let mut core = NvdlaConvCore::new(NvdlaConfig::nv_small());
        // 3 does not divide 8 channels.
        assert!(convolve_grouped(&mut core, &f, &k, &params, 3).is_err());
        // kernels.c() != features.c()/groups.
        assert!(convolve_grouped(&mut core, &f, &k, &params, 2).is_err());
        assert!(convolve_grouped(&mut core, &f, &k, &params, 0).is_err());
    }

    #[test]
    fn stats_accumulate_across_groups() {
        let (f, k) = case(16, 8, 8);
        let params = ConvParams::valid();
        let mut core = NvdlaConvCore::new(NvdlaConfig::nv_small());
        let dense_like = convolve_grouped(&mut core, &f, &k, &params, 2).unwrap();
        let (f1, k1) = case(16, 8, 8);
        let mut core1 = NvdlaConvCore::new(NvdlaConfig::nv_small());
        let one_group = core1
            .convolve(&feature_group(&f1, 0, 8), &kernel_group(&k1, 0, 4), &params)
            .unwrap();
        assert_eq!(dense_like.stats.cycles, 2 * one_group.stats.cycles);
    }
}
