//! Cycle-accurate NVDLA convolution-pipeline substrate.
//!
//! NVDLA's convolution pipeline (§II-C of the paper, Fig. 3) comprises
//! the convolution buffer (CB), the convolution core (CC = CSC + CMAC +
//! CACC) and post-processing engines. The paper drops Tempus Core in as
//! a CC replacement; this crate provides everything around that socket,
//! plus the binary baseline itself:
//!
//! * [`cube`] — W×H×C data cubes and K×R×S×C kernel sets;
//! * [`conv`] — convolution parameters and *golden* direct /
//!   im2col+GEMM references;
//! * [`config`] — NVDLA hardware configurations (`nv_small`, the
//!   paper's 16×16, `nv_large`);
//! * [`cbuf`] — the banked convolution buffer model;
//! * [`csc`] — the convolution sequence controller, which decomposes a
//!   convolution into weight-stationary stripes of atomic operations;
//! * [`cmac`] — the cycle-accurate binary k×n MAC array (the baseline
//!   Tempus Core replaces);
//! * [`cacc`] — the convolution accumulator with saturation;
//! * [`sdp`] / [`pdp`] — bias/scale/ReLU requantization and pooling;
//! * [`wcomp`] — NVDLA's sparse weight compression for the CBUF;
//! * [`network`] — multi-layer execution on any core, with per-layer
//!   traces (the unchanged-software-stack argument of §I);
//! * [`fused`] — streamed conv → SDP → pool execution per output row
//!   through a bounded ring, bit-identical to the materialized
//!   stages with `O(row × pool_window)` peak scratch;
//! * [`grouped`] — grouped/depthwise convolution lowering onto the
//!   dense core, as NVDLA's software stack schedules it;
//! * [`pipeline`] — the [`ConvCore`] trait both cores implement, and
//!   the [`pipeline::NvdlaConvCore`] baseline driver.
//!
//! # Example
//!
//! ```
//! use tempus_nvdla::cube::{DataCube, KernelSet};
//! use tempus_nvdla::conv::{direct_conv, ConvParams};
//! use tempus_nvdla::pipeline::{ConvCore, NvdlaConvCore};
//! use tempus_nvdla::config::NvdlaConfig;
//!
//! # fn main() -> Result<(), tempus_nvdla::NvdlaError> {
//! let features = DataCube::from_fn(6, 6, 4, |x, y, c| ((x + 2 * y + c) % 5) as i32 - 2);
//! let kernels = KernelSet::from_fn(2, 3, 3, 4, |k, r, s, c| ((k + r + s + c) % 7) as i32 - 3);
//! let params = ConvParams::unit_stride_same(3);
//!
//! let golden = direct_conv(&features, &kernels, &params)?;
//! let mut core = NvdlaConvCore::new(NvdlaConfig::nv_small());
//! let run = core.convolve(&features, &kernels, &params)?;
//! assert_eq!(run.output, golden);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cacc;
pub mod cbuf;
pub mod cmac;
pub mod config;
pub mod conv;
pub mod csc;
pub mod cube;
mod error;
pub mod fused;
pub mod grouped;
pub mod network;
pub mod pdp;
pub mod pipeline;
pub mod sdp;
pub mod wcomp;

pub use error::NvdlaError;
pub use pipeline::{ConvCore, ConvRun, RunStats};
