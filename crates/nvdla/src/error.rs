use std::error::Error;
use std::fmt;

use tempus_arith::ArithError;

/// Errors surfaced by the NVDLA substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NvdlaError {
    /// Feature/kernel channel counts disagree.
    ChannelMismatch {
        /// Channels in the feature cube.
        feature_c: usize,
        /// Channels in the kernels.
        kernel_c: usize,
    },
    /// Convolution parameters produce an empty output.
    EmptyOutput,
    /// A value violates the configured precision.
    Arith(ArithError),
    /// The convolution buffer cannot hold the working set.
    BufferOverflow {
        /// Bytes requested.
        requested: usize,
        /// Bytes available.
        capacity: usize,
    },
    /// The simulation watchdog expired (handshake deadlock).
    Deadlock {
        /// Cycles executed before giving up.
        cycles: u64,
    },
    /// A shape parameter is zero or otherwise invalid.
    InvalidShape(String),
}

impl fmt::Display for NvdlaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvdlaError::ChannelMismatch {
                feature_c,
                kernel_c,
            } => write!(
                f,
                "feature cube has {feature_c} channels but kernels have {kernel_c}"
            ),
            NvdlaError::EmptyOutput => write!(f, "convolution parameters produce an empty output"),
            NvdlaError::Arith(e) => write!(f, "arithmetic error: {e}"),
            NvdlaError::BufferOverflow {
                requested,
                capacity,
            } => write!(
                f,
                "convolution buffer overflow: need {requested} bytes, have {capacity}"
            ),
            NvdlaError::Deadlock { cycles } => {
                write!(f, "pipeline deadlock detected after {cycles} cycles")
            }
            NvdlaError::InvalidShape(msg) => write!(f, "invalid shape: {msg}"),
        }
    }
}

impl Error for NvdlaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NvdlaError::Arith(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArithError> for NvdlaError {
    fn from(e: ArithError) -> Self {
        NvdlaError::Arith(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempus_arith::IntPrecision;

    #[test]
    fn display_messages() {
        let e = NvdlaError::ChannelMismatch {
            feature_c: 8,
            kernel_c: 16,
        };
        assert!(e.to_string().contains('8'));
        assert!(e.to_string().contains("16"));
    }

    #[test]
    fn arith_errors_convert_and_chain() {
        let inner = ArithError::OutOfRange {
            value: 300,
            precision: IntPrecision::Int8,
        };
        let e: NvdlaError = inner.into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NvdlaError>();
    }
}
