//! Property-based tests for the NVDLA substrate: golden references
//! must agree with each other, the cycle-accurate CMAC must agree with
//! both, and sequencer invariants must hold across random shapes.

use proptest::prelude::*;
use tempus_arith::IntPrecision;
use tempus_nvdla::config::NvdlaConfig;
use tempus_nvdla::conv::{direct_conv, im2col_conv, ConvParams};
use tempus_nvdla::csc::{CscCommand, CscSequencer};
use tempus_nvdla::cube::{DataCube, KernelSet};
use tempus_nvdla::pipeline::{ConvCore, NvdlaConvCore};

prop_compose! {
    fn conv_case()(
        w in 3usize..8,
        h in 3usize..8,
        c in 1usize..10,
        k in 1usize..10,
        ksize in prop_oneof![Just(1usize), Just(2usize), Just(3usize)],
        stride in 1usize..3,
        pad in 0usize..2,
        seed in any::<u32>(),
    ) -> (DataCube, KernelSet, ConvParams) {
        let features = DataCube::from_fn(w, h, c, |x, y, ch| {
            let v = x.wrapping_mul(31) ^ y.wrapping_mul(17) ^ ch.wrapping_mul(7) ^ seed as usize;
            (v % 255) as i32 - 127
        });
        let kernels = KernelSet::from_fn(k, ksize, ksize, c, |ki, r, s, ch| {
            let v = ki.wrapping_mul(13) ^ r.wrapping_mul(5) ^ s.wrapping_mul(3)
                ^ ch.wrapping_mul(11) ^ seed as usize;
            (v % 255) as i32 - 127
        });
        (features, kernels, ConvParams::strided(stride, pad))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn direct_equals_im2col((f, k, params) in conv_case()) {
        if params.output_dims(f.w(), f.h(), k.r(), k.s()).is_err() {
            return Ok(());
        }
        prop_assert_eq!(
            direct_conv(&f, &k, &params).unwrap(),
            im2col_conv(&f, &k, &params).unwrap()
        );
    }

    #[test]
    fn cmac_core_equals_golden((f, k, params) in conv_case()) {
        if params.output_dims(f.w(), f.h(), k.r(), k.s()).is_err() {
            return Ok(());
        }
        let golden = direct_conv(&f, &k, &params).unwrap();
        let mut core = NvdlaConvCore::new(NvdlaConfig::nv_small());
        let run = core.convolve(&f, &k, &params).unwrap();
        prop_assert_eq!(run.output, golden);
    }

    #[test]
    fn sequencer_counts_are_exact((f, k, params) in conv_case()) {
        let config = NvdlaConfig::nv_small();
        let Ok(seq) = CscSequencer::new(&f, &k, &params, &config) else {
            return Ok(());
        };
        let stripes = seq.stripe_count();
        let atomics = seq.atomic_op_count();
        let (mut loads, mut ops) = (0u64, 0u64);
        for cmd in seq {
            match cmd {
                CscCommand::LoadWeights(l) => {
                    loads += 1;
                    prop_assert_eq!(l.cell_weights.len(), config.atomic_k);
                    for sliver in &l.cell_weights {
                        prop_assert_eq!(sliver.len(), config.atomic_c);
                    }
                }
                CscCommand::Atomic(op) => {
                    ops += 1;
                    prop_assert_eq!(op.feature.len(), config.atomic_c);
                }
            }
        }
        prop_assert_eq!(loads, stripes);
        prop_assert_eq!(ops, atomics);
    }

    #[test]
    fn cycle_count_formula_holds((f, k, params) in conv_case()) {
        // Binary CC cycles = stripes (swap) + atomic ops + drain.
        if params.output_dims(f.w(), f.h(), k.r(), k.s()).is_err() {
            return Ok(());
        }
        let config = NvdlaConfig::nv_small();
        let seq = CscSequencer::new(&f, &k, &params, &config).unwrap();
        let expected = seq.stripe_count() + seq.atomic_op_count()
            + u64::from(config.cmac_pipeline_depth);
        let mut core = NvdlaConvCore::new(config);
        let run = core.convolve(&f, &k, &params).unwrap();
        prop_assert_eq!(run.stats.cycles, expected);
    }

    #[test]
    fn stats_are_internally_consistent((f, k, params) in conv_case()) {
        if params.output_dims(f.w(), f.h(), k.r(), k.s()).is_err() {
            return Ok(());
        }
        let mut core = NvdlaConvCore::new(NvdlaConfig::nv_small());
        let run = core.convolve(&f, &k, &params).unwrap();
        prop_assert!(run.stats.utilization >= 0.0 && run.stats.utilization <= 1.0);
        prop_assert_eq!(run.stats.cbuf_reads, run.stats.atomic_ops);
        prop_assert!(run.stats.macs <= run.stats.atomic_ops
            * (NvdlaConfig::nv_small().lanes() as u64));
    }

    #[test]
    fn output_dims_never_panic(
        w in 1usize..64, h in 1usize..64,
        r in 1usize..8, s in 1usize..8,
        stride in 1usize..4, pad in 0usize..4,
        dil in 1usize..3,
    ) {
        let params = ConvParams {
            stride_x: stride,
            stride_y: stride,
            pad_x: pad,
            pad_y: pad,
            dilation_x: dil,
            dilation_y: dil,
        };
        // Either a consistent Ok or a clean error — never a panic.
        if let Ok((ow, oh)) = params.output_dims(w, h, r, s) {
            prop_assert!(ow >= 1 && oh >= 1);
        }
    }
}

#[test]
fn int16_substrate_generalises() {
    // The substrate supports INT16 even though the paper stops at INT2.
    let p = IntPrecision::Int16;
    // Magnitudes bounded so 8-term dot products stay inside the i32
    // output cube (the substrate's accumulators are 34-48 bits, but
    // read-out is i32).
    let f = DataCube::from_fn(4, 4, 8, |x, y, c| {
        ((x * 1000 + y * 300 + c * 77) % 6000) as i32 - 3000
    });
    let k = KernelSet::from_fn(4, 1, 1, 8, |ki, _, _, c| {
        ((ki * 900 + c * 55) % 6000) as i32 - 3000
    });
    let params = ConvParams::valid();
    let golden = direct_conv(&f, &k, &params).unwrap();
    let mut core = NvdlaConvCore::new(NvdlaConfig::nv_small().with_precision(p));
    let run = core.convolve(&f, &k, &params).unwrap();
    assert_eq!(run.output, golden);
}
