//! Property-based tests for the post-processing engines (SDP, PDP):
//! shape laws, range guarantees and idempotence-style invariants.

use proptest::prelude::*;
use tempus_arith::IntPrecision;
use tempus_nvdla::cube::DataCube;
use tempus_nvdla::pdp::{self, PoolKind, PoolParams};
use tempus_nvdla::sdp::{self, SdpConfig};

prop_compose! {
    fn small_cube()(
        w in 1usize..10,
        h in 1usize..10,
        c in 1usize..6,
        seed in any::<u32>(),
    ) -> DataCube {
        DataCube::from_fn(w, h, c, move |x, y, ch| {
            let v = (x as u32).wrapping_mul(2_654_435_761)
                ^ (y as u32).wrapping_mul(40_503)
                ^ (ch as u32).wrapping_mul(97)
                ^ seed;
            (v % 2001) as i32 - 1000
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sdp_output_is_always_in_precision(cube in small_cube(), relu in any::<bool>(), shift in 0u32..8) {
        let cfg = SdpConfig {
            bias: vec![0; cube.c()],
            multiplier: vec![1; cube.c()],
            shift,
            relu,
            out_precision: IntPrecision::Int8,
        };
        let (out, stats) = sdp::apply(&cube, &cfg).unwrap();
        prop_assert!(out.check_precision(IntPrecision::Int8).is_ok());
        prop_assert_eq!(stats.elements as usize, cube.len());
        if relu {
            prop_assert!(out.as_slice().iter().all(|&v| v >= 0));
        }
    }

    #[test]
    fn sdp_passthrough_preserves_in_range_values(cube in small_cube()) {
        // Saturate the cube into INT8 first; a second passthrough must
        // then be the identity.
        let cfg = SdpConfig::passthrough(cube.c(), IntPrecision::Int8);
        let (once, _) = sdp::apply(&cube, &cfg).unwrap();
        let (twice, stats) = sdp::apply(&once, &cfg).unwrap();
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(stats.saturated, 0);
    }

    #[test]
    fn max_pool_output_bounded_by_input_max(cube in small_cube(), window in 1usize..4) {
        prop_assume!(window <= cube.w() && window <= cube.h());
        let params = PoolParams {
            kind: PoolKind::Max,
            window,
            stride: window,
            pad: 0,
        };
        let out = pdp::apply(&cube, &params).unwrap();
        let in_max = cube.as_slice().iter().copied().max().unwrap();
        let out_max = out.as_slice().iter().copied().max().unwrap();
        prop_assert_eq!(out_max <= in_max, true);
        // Every pooled value must exist somewhere in the input.
        for &v in out.as_slice() {
            prop_assert!(cube.as_slice().contains(&v));
        }
    }

    #[test]
    fn window_one_pooling_is_identity(cube in small_cube()) {
        let params = PoolParams {
            kind: PoolKind::Max,
            window: 1,
            stride: 1,
            pad: 0,
        };
        let out = pdp::apply(&cube, &params).unwrap();
        prop_assert_eq!(out, cube);
    }

    #[test]
    fn average_pool_bounded_by_extremes(cube in small_cube(), window in 1usize..4) {
        prop_assume!(window <= cube.w() && window <= cube.h());
        let params = PoolParams {
            kind: PoolKind::Average,
            window,
            stride: window,
            pad: 0,
        };
        let out = pdp::apply(&cube, &params).unwrap();
        let lo = *cube.as_slice().iter().min().unwrap();
        let hi = *cube.as_slice().iter().max().unwrap();
        for &v in out.as_slice() {
            prop_assert!(v >= lo - 1 && v <= hi + 1, "avg {v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn pool_output_dims_follow_formula(cube in small_cube(), window in 1usize..4, stride in 1usize..4) {
        prop_assume!(window <= cube.w() && window <= cube.h());
        let params = PoolParams {
            kind: PoolKind::Max,
            window,
            stride,
            pad: 0,
        };
        let out = pdp::apply(&cube, &params).unwrap();
        prop_assert_eq!(out.w(), (cube.w() - window) / stride + 1);
        prop_assert_eq!(out.h(), (cube.h() - window) / stride + 1);
        prop_assert_eq!(out.c(), cube.c());
    }
}
