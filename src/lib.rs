//! # Tempus Core reproduction — facade crate
//!
//! One-stop re-export of the whole workspace, reproducing
//! *"Tempus Core: Area-Power Efficient Temporal-Unary Convolution Core
//! for Low-Precision Edge DLAs"* (DATE 2025).
//!
//! See the repository `README.md` for the architecture overview,
//! `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results.
//!
//! ```
//! use tempus::arith::{tub, IntPrecision};
//!
//! # fn main() -> Result<(), tempus::arith::ArithError> {
//! assert_eq!(tub::multiply(9, -7, IntPrecision::Int8)?, -63);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use tempus_arith as arith;
pub use tempus_core as core;
pub use tempus_hwmodel as hwmodel;
pub use tempus_models as models;
pub use tempus_nvdla as nvdla;
pub use tempus_profile as profile;
pub use tempus_sim as sim;
