//! # Tempus Core reproduction — facade crate
//!
//! One-stop re-export of the whole workspace, reproducing
//! *"Tempus Core: Area-Power Efficient Temporal-Unary Convolution Core
//! for Low-Precision Edge DLAs"* (DATE 2025).
//!
//! See the repository `README.md` for the architecture overview and
//! quickstart; per-crate docs (`cargo doc --open`) carry the detailed
//! design notes.
//!
//! The workspace layers, bottom-up: [`arith`] (tub arithmetic),
//! [`sim`] (clocked simulation scaffolding), [`nvdla`] (the
//! convolution-pipeline substrate and binary baseline), [`core`] (the
//! Tempus Core engine and tubGEMM), [`hwmodel`] (calibrated area/power
//! models), [`models`] (the CNN zoo with synthetic quantized weights),
//! [`profile`] (workload statistics and energy), [`runtime`] (the
//! batched multi-threaded inference engine with pluggable
//! fast/cycle-accurate backends), [`fleet`] (the deterministic
//! multi-device scheduler with backfilling, deadline-aware admission
//! and elastic sizing) and [`serve`] (the async streaming ingestion
//! service with content-addressed result caching and per-class
//! latency SLOs). Cross-cutting: [`chaos`] (deterministic fault
//! injection) and [`telemetry`] (the dual-clock trace hub).
//!
//! ```
//! use tempus::arith::{tub, IntPrecision};
//!
//! # fn main() -> Result<(), tempus::arith::ArithError> {
//! assert_eq!(tub::multiply(9, -7, IntPrecision::Int8)?, -63);
//! # Ok(())
//! # }
//! ```
//!
//! Serving a batch through the runtime:
//!
//! ```
//! use tempus::nvdla::conv::ConvParams;
//! use tempus::nvdla::cube::{DataCube, KernelSet};
//! use tempus::runtime::{BackendKind, EngineConfig, InferenceEngine, Job};
//!
//! # fn main() -> Result<(), tempus::runtime::RuntimeError> {
//! let f = DataCube::from_fn(5, 5, 4, |x, y, c| ((x + y + c) % 9) as i32 - 4);
//! let k = KernelSet::from_fn(4, 3, 3, 4, |k, r, s, c| ((k + r + s + c) % 9) as i32 - 4);
//! let jobs = vec![Job::conv(0, "layer", f, k, ConvParams::valid())];
//! let engine = InferenceEngine::new(EngineConfig::new(BackendKind::FastFunctional))?;
//! let report = engine.run_batch(&jobs)?;
//! assert_eq!(report.aggregate.jobs, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use tempus_arith as arith;
pub use tempus_chaos as chaos;
pub use tempus_core as core;
pub use tempus_fleet as fleet;
pub use tempus_hwmodel as hwmodel;
pub use tempus_models as models;
pub use tempus_nvdla as nvdla;
pub use tempus_profile as profile;
pub use tempus_runtime as runtime;
pub use tempus_serve as serve;
pub use tempus_sim as sim;
pub use tempus_telemetry as telemetry;
