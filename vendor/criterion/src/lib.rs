//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro and type surface the workspace benches use —
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `Bencher::iter` —
//! with a simple adaptive wall-clock measurement loop instead of
//! criterion's full statistical machinery. Output is one line per
//! benchmark: median ns/iter over the sampled batches.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches may use `criterion::black_box`.
pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    /// Nanoseconds per iteration measured for the routine.
    ns_per_iter: f64,
    target: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records its time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch-size calibration: find a batch that takes
        // at least ~1 ms, then sample batches until the time budget is
        // spent.
        let mut batch = 1u64;
        let batch_floor = Duration::from_millis(1);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= batch_floor || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let mut samples = Vec::new();
        let budget = Instant::now();
        while budget.elapsed() < self.target && samples.len() < 50 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples.get(samples.len() / 2).copied().unwrap_or(f64::NAN);
    }
}

/// Benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            ns_per_iter: f64::NAN,
            target: self.measurement_time,
        };
        f(&mut bencher);
        println!("bench: {:<48} {:>14.1} ns/iter", id.id, bencher.ns_per_iter);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let scoped = BenchmarkId {
            id: format!("{}/{}", self.name, id.id),
        };
        self.parent.bench_function(scoped, f);
        self
    }

    /// Finishes the group (reporting is inline, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.bench_function("smoke", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.bench_function(BenchmarkId::new("fn", "param"), |b| {
            b.iter(|| black_box(1 + 1))
        });
        group.finish();
    }
}
