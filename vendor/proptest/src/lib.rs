//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses —
//! `proptest!`, `prop_compose!`, `prop_oneof!`, `any`, ranges,
//! `prop::collection::vec`, tuple strategies, `prop_assert*`,
//! `prop_assume!` and `ProptestConfig::with_cases` — as a
//! deterministic seeded random-sampling harness. No shrinking: a
//! failing case panics with its case index so it can be replayed (the
//! sequence is a pure function of the test's module path, name and
//! case index).

#![forbid(unsafe_code)]

/// Deterministic test-case generation machinery.
pub mod test_runner {
    use std::fmt;

    /// Configuration for one `proptest!` block.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Failure raised by `prop_assert*` macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with a message.
        #[must_use]
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Deterministic generator: SplitMix64 keyed on (test path, case).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Generator for case `case` of the test at `path`.
        #[must_use]
        pub fn for_case(path: &str, case: u32) -> Self {
            // FNV-1a over the path, mixed with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `usize` in `[lo, hi)`.
        ///
        /// # Panics
        ///
        /// Panics when the range is empty.
        pub fn below(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "cannot sample from empty range");
            lo + (self.next_u64() % (hi - lo) as u64) as usize
        }
    }
}

/// Strategies: composable value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            S::sample(self, rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            S::sample(self, rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "cannot sample from empty range");
                    let span = (hi - lo) as u128;
                    let v = u128::from(rng.next_u64()) % span;
                    (lo + v as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "cannot sample from empty range");
                    let span = (hi - lo) as u128 + 1;
                    let v = u128::from(rng.next_u64()) % span;
                    (lo + v as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    let span = f64::from(self.end) - f64::from(self.start);
                    (f64::from(self.start) + unit * span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "cannot sample from empty range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    let span = f64::from(*self.end()) - f64::from(*self.start());
                    (f64::from(*self.start()) + unit * span) as $t
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(0, self.options.len());
            self.options[pick].sample(rng)
        }
    }

    /// Builds a [`Union`] from boxed options.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    #[must_use]
    pub fn union<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }

    /// Boxes a strategy (helper for `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// Strategy computed by a closure (`prop_compose!` plumbing).
    pub struct FnStrategy<F>(F);

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Wraps a sampling closure as a strategy.
    pub fn from_fn<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
        FnStrategy(f)
    }
}

/// `any::<T>()` — full-range standard strategies per type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite full-range doubles, uniform in sign and exponent
            // coverage is unnecessary here: uniform [-1e9, 1e9).
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            (unit - 0.5) * 2e9
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-range strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.below(self.size.min, self.size.max + 1);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };

    /// Namespaced access mirroring proptest's `prop` module.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Runs each contained `#[test]` function over many sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                for case in 0..config.cases {
                    let mut prop_rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut prop_rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        ::std::panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            case,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Defines a named composite strategy function.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)
        ($($arg:pat in $strat:expr),* $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::from_fn(move |prop_rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), prop_rng);)*
                $body
            })
        }
    };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::union(::std::vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: {:?} != {:?}",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs == *rhs, $($fmt)+);
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, "assertion failed: {:?} == {:?}", lhs, rhs);
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn point()(x in -10i32..10, y in 0i32..=5) -> (i32, i32) {
            (x, y)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_in_bounds(a in 3usize..8, b in -100_000i64..100_000) {
            prop_assert!((3..8).contains(&a));
            prop_assert!((-100_000..100_000).contains(&b));
        }

        #[test]
        fn oneof_and_just(k in prop_oneof![Just(1usize), Just(3usize)]) {
            prop_assert!(k == 1 || k == 3);
        }

        #[test]
        fn vec_of_tuples(pairs in prop::collection::vec((any::<i64>(), any::<i64>()), 0..16)) {
            prop_assert!(pairs.len() < 16);
        }

        #[test]
        fn composed((x, y) in point()) {
            prop_assert!((-10..10).contains(&x));
            prop_assert!((0..=5).contains(&y));
            if x == y {
                return Ok(()); // early skip must compile
            }
            prop_assert_ne!(x, y);
        }

        #[test]
        fn assume_skips(v in 0u32..10) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        let s = 0usize..1000;
        let mut a = crate::test_runner::TestRng::for_case("x", 7);
        let mut b = crate::test_runner::TestRng::for_case("x", 7);
        let va: Vec<usize> = (0..20).map(|_| s.sample(&mut a)).collect();
        let vb: Vec<usize> = (0..20).map(|_| s.sample(&mut b)).collect();
        assert_eq!(va, vb);
    }
}
