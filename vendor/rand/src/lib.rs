//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io,
//! so the small API surface the workspace actually uses is provided
//! locally: [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), the
//! [`Rng`] core trait, the [`RngExt`] convenience extension
//! (`random`, `random_range`) and [`SeedableRng::seed_from_u64`].
//!
//! Determinism contract: for a fixed seed the generated sequence is
//! stable across runs and platforms — the workspace's synthetic weight
//! generation and property tests rely on this.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait Rng {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator ("standard"
/// distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi - lo) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (lo + v as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u128 + 1;
                let v = u128::from(rng.next_u64()) % span;
                (lo + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every
/// [`Rng`]. Mirrors the method names of modern `rand` (`random`,
/// `random_range`).
pub trait RngExt: Rng {
    /// Draws a value of `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with
    /// SplitMix64 seeding. Fast, small-state and statistically strong
    /// enough for the Monte-Carlo calibration tests in this repo.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            self.s = [s0, s1, s2, s3.rotate_left(45)];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
            let w = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_600..5_400).contains(&heads), "heads {heads}");
    }
}
