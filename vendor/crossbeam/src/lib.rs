//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`thread::scope`] is provided — backed by `std::thread::scope`
//! (stabilised long after crossbeam popularised the pattern), wrapped
//! in crossbeam's `Result`-returning signature with closures that
//! receive the scope handle for nested spawns.

#![forbid(unsafe_code)]

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// The error payload of a panicked scope, matching crossbeam's.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope handle: spawn threads that may borrow from the caller's
    /// stack.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result, or the panic
        /// payload if it panicked.
        ///
        /// # Errors
        ///
        /// Returns the panic payload when the thread panicked.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope so it
        /// can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning borrowing threads.
    ///
    /// All spawned threads are joined when the scope ends. Returns
    /// `Ok` with the closure's value; the `Err` arm exists for
    /// crossbeam signature compatibility (std's scope re-panics on
    /// unjoined child panics instead).
    ///
    /// # Errors
    ///
    /// Never returns `Err` in this implementation.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let total = thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawns_work() {
        let n = thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 41).join().unwrap() + 1)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
